//! The table sketch query (TSQ).
//!
//! Paper Definition 2.3: a TSQ `T = (α, χ, τ, k)` has an optional list of type
//! annotations `α`, an optional list of example tuples `χ`, a boolean sorting
//! flag `τ`, and a limit integer `k ≥ 0` (`k = 0` meaning "no limit").
//! Example tuple cells may be *exact*, *empty* (match anything) or *range*
//! cells (Definition 2.3 / Table 2).

use duoquest_db::{DataType, Value};
use serde::{Deserialize, Serialize};

/// One cell of an example tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TsqCell {
    /// The user does not constrain this cell.
    Empty,
    /// The cell must equal this value (case-insensitive for text).
    Exact(Value),
    /// The cell must lie within this inclusive range (numeric).
    Range(Value, Value),
}

impl TsqCell {
    /// An exact text cell.
    pub fn text(s: impl Into<String>) -> Self {
        TsqCell::Exact(Value::text(s))
    }

    /// An exact numeric cell.
    pub fn number(n: impl Into<f64>) -> Self {
        TsqCell::Exact(Value::Number(n.into()))
    }

    /// A numeric range cell `[lo, hi]`.
    pub fn range(lo: impl Into<f64>, hi: impl Into<f64>) -> Self {
        TsqCell::Range(Value::Number(lo.into()), Value::Number(hi.into()))
    }

    /// Whether a concrete output value satisfies this cell.
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            TsqCell::Empty => true,
            TsqCell::Exact(v) => value.sql_eq(v),
            TsqCell::Range(lo, hi) => {
                use std::cmp::Ordering::*;
                matches!(value.sql_cmp(lo), Some(Greater | Equal))
                    && matches!(value.sql_cmp(hi), Some(Less | Equal))
            }
        }
    }

    /// The data type this cell constrains its column to, if any.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            TsqCell::Empty => None,
            TsqCell::Exact(v) => v.data_type(),
            TsqCell::Range(lo, _) => lo.data_type(),
        }
    }

    /// Whether the cell imposes any constraint.
    pub fn is_constrained(&self) -> bool {
        !matches!(self, TsqCell::Empty)
    }
}

/// A table sketch query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableSketchQuery {
    /// Optional type annotations `α` for the projected columns.
    pub types: Option<Vec<DataType>>,
    /// Example tuples `χ`; every tuple must have the same width as `types`
    /// when both are provided.
    pub tuples: Vec<Vec<TsqCell>>,
    /// Sorting flag `τ`: whether the desired query has ordered results.
    pub sorted: bool,
    /// Limit `k`: `0` means no limit, otherwise the query returns at most `k` rows.
    pub limit: usize,
}

impl TableSketchQuery {
    /// An entirely empty TSQ (provides no information).
    pub fn empty() -> Self {
        TableSketchQuery::default()
    }

    /// A TSQ with only type annotations (the "Minimal" detail level of §5.4.4).
    pub fn with_types(types: Vec<DataType>) -> Self {
        TableSketchQuery { types: Some(types), ..Default::default() }
    }

    /// Builder-style: add an example tuple.
    pub fn with_tuple(mut self, tuple: Vec<TsqCell>) -> Self {
        self.tuples.push(tuple);
        self
    }

    /// Builder-style: mark the desired query as sorted.
    pub fn sorted(mut self) -> Self {
        self.sorted = true;
        self
    }

    /// Builder-style: set the limit `k`.
    pub fn with_limit(mut self, k: usize) -> Self {
        self.limit = k;
        self
    }

    /// Number of projected columns implied by the TSQ, if any.
    pub fn width(&self) -> Option<usize> {
        if let Some(t) = &self.types {
            return Some(t.len());
        }
        self.tuples.first().map(Vec::len)
    }

    /// Whether the TSQ constrains anything at all.
    pub fn is_empty(&self) -> bool {
        self.types.is_none() && self.tuples.is_empty() && !self.sorted && self.limit == 0
    }

    /// The effective type annotation of column `i`, falling back to the type
    /// implied by the example cells when no explicit annotation exists.
    pub fn column_type(&self, i: usize) -> Option<DataType> {
        if let Some(types) = &self.types {
            return types.get(i).copied();
        }
        self.tuples.iter().find_map(|t| t.get(i).and_then(TsqCell::data_type))
    }

    /// Whether a full output row satisfies example tuple `tuple_idx`
    /// (Definition 2.3: every cell must match the cell of the same index).
    pub fn row_satisfies_tuple(&self, tuple_idx: usize, row: &[Value]) -> bool {
        let Some(tuple) = self.tuples.get(tuple_idx) else { return true };
        tuple.iter().zip(row.iter()).all(|(cell, value)| cell.matches(value))
    }

    /// The example TSQ of the paper's Table 2 (Kevin's movie query), useful in
    /// examples and tests.
    pub fn paper_example() -> Self {
        TableSketchQuery {
            types: Some(vec![DataType::Text, DataType::Text, DataType::Number]),
            tuples: vec![
                vec![TsqCell::text("Forrest Gump"), TsqCell::text("Tom Hanks"), TsqCell::Empty],
                vec![
                    TsqCell::text("Gravity"),
                    TsqCell::text("Sandra Bullock"),
                    TsqCell::range(2010, 2017),
                ],
            ],
            sorted: false,
            limit: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_matching() {
        assert!(TsqCell::Empty.matches(&Value::text("anything")));
        assert!(TsqCell::text("Tom Hanks").matches(&Value::text("tom hanks")));
        assert!(!TsqCell::text("Tom Hanks").matches(&Value::text("Brad Pitt")));
        assert!(TsqCell::range(2010, 2017).matches(&Value::int(2013)));
        assert!(!TsqCell::range(2010, 2017).matches(&Value::int(2018)));
        assert!(!TsqCell::range(2010, 2017).matches(&Value::text("2013")));
    }

    #[test]
    fn cell_types_and_constraints() {
        assert_eq!(TsqCell::text("x").data_type(), Some(DataType::Text));
        assert_eq!(TsqCell::number(3).data_type(), Some(DataType::Number));
        assert_eq!(TsqCell::Empty.data_type(), None);
        assert!(TsqCell::number(1).is_constrained());
        assert!(!TsqCell::Empty.is_constrained());
    }

    #[test]
    fn width_and_column_types() {
        let tsq = TableSketchQuery::paper_example();
        assert_eq!(tsq.width(), Some(3));
        assert_eq!(tsq.column_type(0), Some(DataType::Text));
        assert_eq!(tsq.column_type(2), Some(DataType::Number));
        assert!(!tsq.is_empty());
        assert!(!tsq.sorted);
        assert_eq!(tsq.limit, 0);
    }

    #[test]
    fn width_from_tuples_when_no_types() {
        let tsq =
            TableSketchQuery::empty().with_tuple(vec![TsqCell::text("a"), TsqCell::number(1)]);
        assert_eq!(tsq.width(), Some(2));
        assert_eq!(tsq.column_type(1), Some(DataType::Number));
        assert_eq!(tsq.column_type(0), Some(DataType::Text));
    }

    #[test]
    fn row_satisfaction() {
        let tsq = TableSketchQuery::paper_example();
        assert!(tsq.row_satisfies_tuple(
            0,
            &[Value::text("Forrest Gump"), Value::text("Tom Hanks"), Value::int(1994)]
        ));
        assert!(!tsq.row_satisfies_tuple(
            1,
            &[Value::text("Gravity"), Value::text("Sandra Bullock"), Value::int(2020)]
        ));
    }

    #[test]
    fn empty_tsq_detection() {
        assert!(TableSketchQuery::empty().is_empty());
        assert!(!TableSketchQuery::empty().sorted().is_empty());
        assert!(!TableSketchQuery::empty().with_limit(3).is_empty());
        assert_eq!(TableSketchQuery::empty().width(), None);
    }
}
