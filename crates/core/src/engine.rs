//! The Duoquest engine: the public entry point tying together guidance,
//! enumeration and verification.
//!
//! # Architecture: the parallel, cache-aware synthesis core
//!
//! Synthesis runs as a sequence of **rounds** over a confidence-ordered
//! frontier (see `crate::enumerate`):
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!                    │               SynthesisSession             │
//!                    │  Arc<Database> · Nlq · TSQ · model · cfg   │
//!                    └──────────────────┬─────────────────────────┘
//!                                       ▼
//!   frontier (BinaryHeap) ──pop beam──► phase 1: expand + score (serial)
//!                                       │  EnumNextStep per beam state
//!                                       ▼
//!                          phase 2: verify fan-out (worker pool)
//!                          │ join paths + ascending-cost cascade,
//!                          │ probes answered by Database's memo cache
//!                          ▼
//!                          phase 3: ordered merge (serial)
//!                          │ emit complete queries → stream/callback
//!                          └ push survivors → frontier
//! ```
//!
//! Three layers cooperate:
//!
//! * **db** — [`Database`] is `Send + Sync` and shared by reference (or
//!   `Arc`) across the worker pool; its probe/result memo cache
//!   (`duoquest_db::ProbeCache`) memoizes the verifier's repeated
//!   `SELECT … LIMIT 1` probes behind sharded locks, with hit/miss/byte
//!   counters surfaced per run in [`EnumerationStats`]. Cache misses run
//!   the streaming operator executor (see `docs/EXECUTOR.md`), whose
//!   limit pushdown stops scanning as soon as a probe's limit is
//!   satisfied — the per-run `rows_scanned`/`rows_short_circuited`
//!   counters in [`EnumerationStats`] make that win observable.
//! * **core** — the round engine pops the top-`beam_width` states, fans child
//!   expansion + verification across `workers` threads, and merges results
//!   back **in child order**, so — absent a wall-clock `time_budget` — the
//!   emitted candidate sequence is a pure function of the configuration
//!   (never of thread scheduling). With `beam_width = 1` the exploration
//!   order is exactly paper Algorithm 1.
//! * **consumers** — [`Duoquest::synthesize`] collects a ranked
//!   [`SynthesisResult`]; [`crate::session::SynthesisSession`] additionally
//!   offers a streaming channel ([`crate::session::CandidateStream`]) whose
//!   first candidate arrives while enumeration is still in flight.
//!
//! Candidates are deduplicated under canonical equivalence (keeping the
//! highest-confidence copy) and ranked by confidence with a deterministic
//! structural tie-break, so equal-confidence candidates order identically
//! across sequential and parallel runs.

use crate::config::DuoquestConfig;
use crate::enumerate::{run_rounds, EnumerationStats};
use crate::tsq::TableSketchQuery;
use duoquest_db::{Database, SelectSpec};
use duoquest_nlq::{GuidanceModel, Nlq};
use duoquest_sql::{queries_equivalent, render_sql};
use std::time::Duration;

/// One candidate query returned to the user.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The executable query.
    pub spec: SelectSpec,
    /// The confidence score (product of per-decision scores).
    pub confidence: f64,
    /// Position in emission order (0 = first query found).
    pub emit_index: usize,
    /// Wall-clock time at which the candidate was emitted.
    pub emitted_at: Duration,
}

/// The result of one synthesis call.
#[derive(Debug, Clone, Default)]
pub struct SynthesisResult {
    /// Candidates, ranked from highest to lowest confidence.
    pub candidates: Vec<Candidate>,
    /// Enumeration statistics.
    pub stats: EnumerationStats,
}

impl SynthesisResult {
    /// 1-based rank of the gold query among the ranked candidates, if present.
    pub fn rank_of(&self, gold: &SelectSpec) -> Option<usize> {
        self.candidates.iter().position(|c| queries_equivalent(&c.spec, gold)).map(|i| i + 1)
    }

    /// Whether the gold query appears within the top `k` ranked candidates.
    pub fn in_top_k(&self, gold: &SelectSpec, k: usize) -> bool {
        self.rank_of(gold).map(|r| r <= k).unwrap_or(false)
    }

    /// The time at which the gold query was first emitted, if it was found.
    pub fn time_to_find(&self, gold: &SelectSpec) -> Option<Duration> {
        self.candidates
            .iter()
            .filter(|c| queries_equivalent(&c.spec, gold))
            .map(|c| c.emitted_at)
            .min()
    }

    /// Render the ranked candidates as SQL strings.
    pub fn rendered(&self, db: &Database) -> Vec<String> {
        self.candidates.iter().map(|c| render_sql(&c.spec, db.schema())).collect()
    }
}

/// Shared collection pipeline behind [`Duoquest::synthesize_with`] and
/// [`crate::session::SynthesisSession`]: run the round engine, deduplicate
/// canonically equivalent candidates (keeping the higher-confidence copy),
/// then rank deterministically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_collect<F>(
    db: &Database,
    nlq: &Nlq,
    model: &dyn GuidanceModel,
    tsq: Option<&TableSketchQuery>,
    config: &DuoquestConfig,
    control: &crate::session::SessionControl,
    clock: &dyn crate::clock::Clock,
    trace: Option<std::sync::Arc<duoquest_obs::Trace>>,
    on_candidate: F,
) -> SynthesisResult
where
    F: FnMut(&Candidate) -> bool,
{
    collect_ranked(on_candidate, |cb| {
        run_rounds(db, nlq, model, tsq, config, control, clock, trace, cb)
    })
}

/// The dedup-and-rank state shared by the blocking collection pipeline
/// ([`collect_ranked`]) and scheduler-driven sessions
/// (`crate::scheduler`): deduplicate canonically equivalent candidates in
/// emission order, then rank by confidence with a deterministic tie-break.
#[derive(Default)]
pub(crate) struct CandidateCollector {
    candidates: Vec<Candidate>,
}

impl CandidateCollector {
    pub(crate) fn new() -> Self {
        CandidateCollector::default()
    }

    /// Record one engine emission, forwarding fresh candidates to the
    /// consumer callback. Returns the consumer's keep-going verdict
    /// (duplicates never stop the run).
    pub(crate) fn offer(
        &mut self,
        spec: SelectSpec,
        confidence: f64,
        emitted_at: Duration,
        on_candidate: &mut dyn FnMut(&Candidate) -> bool,
    ) -> bool {
        // De-duplicate canonically equivalent candidates, keeping the
        // higher-confidence copy.
        if let Some(existing) =
            self.candidates.iter_mut().find(|c| queries_equivalent(&c.spec, &spec))
        {
            if confidence > existing.confidence {
                existing.confidence = confidence;
            }
            return true;
        }
        let candidate =
            Candidate { spec, confidence, emit_index: self.candidates.len(), emitted_at };
        let keep_going = on_candidate(&candidate);
        self.candidates.push(candidate);
        keep_going
    }

    /// Rank and wrap up: by confidence, breaking exact ties by emission
    /// order (earlier-found first). Emission order is itself a pure function
    /// of the configuration — never of the worker count — so the ranking is
    /// deterministic and identical between sequential and parallel
    /// explorations.
    pub(crate) fn finish(mut self, stats: EnumerationStats) -> SynthesisResult {
        self.candidates.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.emit_index.cmp(&b.emit_index))
        });
        SynthesisResult { candidates: self.candidates, stats }
    }
}

/// The dedup-and-rank pipeline around any blocking engine driver (`run` is
/// the private-pool [`run_rounds`] or the shared-pool
/// `crate::scheduler::run_rounds_scheduled`); scheduler-driven sessions use
/// the underlying [`CandidateCollector`] directly.
pub(crate) fn collect_ranked<F>(
    mut on_candidate: F,
    run: impl FnOnce(&mut dyn FnMut(SelectSpec, f64, Duration) -> bool) -> EnumerationStats,
) -> SynthesisResult
where
    F: FnMut(&Candidate) -> bool,
{
    let mut collector = CandidateCollector::new();
    let stats = run(&mut |spec, confidence, emitted_at| {
        collector.offer(spec, confidence, emitted_at, &mut on_candidate)
    });
    collector.finish(stats)
}

/// The dual-specification synthesis engine.
#[derive(Debug, Clone, Default)]
pub struct Duoquest {
    config: DuoquestConfig,
}

impl Duoquest {
    /// Create an engine with an explicit configuration.
    pub fn new(config: DuoquestConfig) -> Self {
        Duoquest { config }
    }

    /// Create an engine with the default configuration.
    pub fn with_defaults() -> Self {
        Duoquest { config: DuoquestConfig::default() }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DuoquestConfig {
        &self.config
    }

    /// Synthesize candidate queries from the dual specification: an NLQ (with
    /// tagged literals) plus an optional TSQ. Returns the ranked candidates.
    pub fn synthesize(
        &self,
        db: &Database,
        nlq: &Nlq,
        tsq: Option<&TableSketchQuery>,
        model: &dyn GuidanceModel,
    ) -> SynthesisResult {
        self.synthesize_with(db, nlq, tsq, model, |_c| true)
    }

    /// Streaming variant: `on_candidate` observes candidates in emission order
    /// (highest-confidence first under guided search) and may return `false` to
    /// stop the enumeration early — the paper's front end does exactly this
    /// when the user clicks "Stop Task".
    pub fn synthesize_with<F>(
        &self,
        db: &Database,
        nlq: &Nlq,
        tsq: Option<&TableSketchQuery>,
        model: &dyn GuidanceModel,
        on_candidate: F,
    ) -> SynthesisResult
    where
        F: FnMut(&Candidate) -> bool,
    {
        let control = crate::session::SessionControl::new();
        run_collect(
            db,
            nlq,
            model,
            tsq,
            &self.config,
            &control,
            &crate::clock::SYSTEM_CLOCK,
            None,
            on_candidate,
        )
    }

    /// Build an owned [`crate::session::SynthesisSession`] carrying this
    /// engine's configuration — the entry point for streaming consumption and
    /// cross-thread sharing.
    pub fn session(
        &self,
        db: std::sync::Arc<Database>,
        nlq: Nlq,
        model: std::sync::Arc<dyn GuidanceModel>,
    ) -> crate::session::SynthesisSession {
        crate::session::SynthesisSession::new(db, nlq, model).with_config(self.config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsq::TsqCell;
    use crate::verify::test_fixtures::movie_db;
    use duoquest_db::{CmpOp, DataType};
    use duoquest_nlq::{Literal, NoisyOracleGuidance, OracleConfig};
    use duoquest_sql::QueryBuilder;

    fn gold(db: &Database) -> SelectSpec {
        QueryBuilder::new(db.schema())
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap()
    }

    fn nlq() -> Nlq {
        Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)])
    }

    #[test]
    fn dual_specification_ranks_gold_first() {
        let db = movie_db();
        let gold = gold(&db);
        let model = NoisyOracleGuidance::with_config(gold.clone(), 3, OracleConfig::perfect());
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![TsqCell::text("Forrest Gump")]);
        let engine = Duoquest::new(DuoquestConfig::fast());
        let result = engine.synthesize(&db, &nlq(), Some(&tsq), &model);
        assert_eq!(result.rank_of(&gold), Some(1));
        assert!(result.in_top_k(&gold, 1));
        assert!(result.time_to_find(&gold).is_some());
        assert!(!result.rendered(&db).is_empty());
    }

    #[test]
    fn streaming_early_stop() {
        let db = movie_db();
        let gold = gold(&db);
        let model = NoisyOracleGuidance::with_config(gold.clone(), 3, OracleConfig::perfect());
        let engine = Duoquest::new(DuoquestConfig::fast());
        let mut seen = 0;
        let result = engine.synthesize_with(&db, &nlq(), None, &model, |_c| {
            seen += 1;
            seen < 2
        });
        assert!(result.candidates.len() <= 2);
    }

    #[test]
    fn candidates_are_deduplicated_and_sorted() {
        let db = movie_db();
        let gold = gold(&db);
        let model = NoisyOracleGuidance::new(gold.clone(), 5);
        let engine = Duoquest::new(DuoquestConfig::fast());
        let result = engine.synthesize(&db, &nlq(), None, &model);
        for pair in result.candidates.windows(2) {
            assert!(pair[0].confidence >= pair[1].confidence);
        }
        for (i, a) in result.candidates.iter().enumerate() {
            for b in result.candidates.iter().skip(i + 1) {
                assert!(!queries_equivalent(&a.spec, &b.spec));
            }
        }
    }

    #[test]
    fn missing_gold_rank_is_none() {
        let db = movie_db();
        let gold = gold(&db);
        let other = QueryBuilder::new(db.schema()).select("actor.gender").build().unwrap();
        let model = NoisyOracleGuidance::with_config(gold, 3, OracleConfig::perfect());
        let engine = Duoquest::new(DuoquestConfig::fast());
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![TsqCell::text("Forrest Gump")]);
        let result = engine.synthesize(&db, &nlq(), Some(&tsq), &model);
        assert_eq!(result.rank_of(&other), None);
        assert!(!result.in_top_k(&other, 100));
    }

    #[test]
    fn ranking_is_deterministic_across_runs() {
        let db = movie_db();
        let gold = gold(&db);
        let model = NoisyOracleGuidance::new(gold, 13);
        let engine = Duoquest::new(DuoquestConfig::fast());
        let a = engine.synthesize(&db, &nlq(), None, &model);
        let b = engine.synthesize(&db, &nlq(), None, &model);
        let keys = |r: &SynthesisResult| {
            r.candidates.iter().map(|c| format!("{:?}", c.spec)).collect::<Vec<_>>()
        };
        assert_eq!(keys(&a), keys(&b));
    }
}
