//! Virtual time for deterministic simulation.
//!
//! Every wall-clock read in the synthesis stack — scheduler tick timing,
//! session deadlines, per-stage verification timings, the service layer's
//! submit-anchored deadlines and time-to-first-candidate metric — goes
//! through the [`Clock`] trait instead of calling [`Instant::now`] directly.
//! Production code uses [`SystemClock`] (a zero-cost wrapper over the real
//! monotonic clock); the deterministic simulation harness (`crates/dst`)
//! substitutes a [`SimClock`] whose time only moves when the test driver
//! calls [`SimClock::advance`] — so deadline cliffs, queued-request expiry
//! and tick housekeeping can be driven reproducibly, with no real sleeps.
//!
//! The design deliberately keeps [`Instant`] as the time *type*: a simulated
//! "now" is the clock's base instant plus an advanced offset, so deadlines
//! stored as `Option<Instant>` (e.g. in
//! [`SessionControl`](crate::SessionControl)) work unchanged under either
//! clock. The one behavioural difference is in the scheduler's idle wait:
//! under a simulated clock, workers never perform *timed* waits (real time
//! passing must not fire a simulated tick) — instead [`SimClock::advance`]
//! wakes them through registered wakers so due ticks run immediately in
//! simulated time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A waker callback fired when a simulated clock advances (see
/// [`Clock::register_waker`]).
pub type ClockWaker = Arc<dyn Fn() + Send + Sync>;

/// A source of monotonic time. Implemented by [`SystemClock`] (real time)
/// and [`SimClock`] (virtual time under manual control).
pub trait Clock: Send + Sync {
    /// The current instant according to this clock.
    fn now(&self) -> Instant;

    /// Whether this clock is simulated. Timed waits must not be used against
    /// a simulated clock (real time passing means nothing to it); waiters
    /// block untimed and rely on [`Clock::register_waker`] notifications.
    fn is_simulated(&self) -> bool {
        false
    }

    /// Register a callback to be fired whenever the clock's time jumps
    /// forward. A no-op for real clocks (time advances on its own; sleepers
    /// use timed waits). [`SimClock`] stores the waker and fires it from
    /// [`SimClock::advance`], which is how an idle scheduler pool learns
    /// that its next tick may have become due.
    fn register_waker(&self, waker: ClockWaker) {
        let _ = waker;
    }
}

/// The real monotonic clock: [`Clock::now`] is [`Instant::now`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// The system clock as a static, for borrow-scoped contexts that need a
/// `&dyn Clock` default without an allocation.
pub static SYSTEM_CLOCK: SystemClock = SystemClock;

/// A shareable, owned clock handle. `Arc<SimClock>` and `Arc<SystemClock>`
/// both coerce to this.
pub type SharedClock = Arc<dyn Clock>;

/// A fresh [`SharedClock`] over the real monotonic clock.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock)
}

/// A virtual clock under manual control: time is a microsecond offset from a
/// fixed base instant and only moves when [`SimClock::advance`] is called.
///
/// Cheap to share (`Arc<SimClock>` coerces to [`SharedClock`]); the test
/// driver keeps the concrete handle to advance time while the stack under
/// test sees only the trait.
///
/// ```
/// use duoquest_core::clock::{Clock, SimClock};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let clock = Arc::new(SimClock::new());
/// let t0 = clock.now();
/// clock.advance(Duration::from_secs(5));
/// assert_eq!(clock.now().duration_since(t0), Duration::from_secs(5));
/// ```
pub struct SimClock {
    base: Instant,
    offset_us: AtomicU64,
    wakers: Mutex<Vec<ClockWaker>>,
}

impl SimClock {
    /// A simulated clock at offset zero (its base is the real instant of
    /// construction, but real time never moves it afterwards).
    pub fn new() -> Self {
        SimClock {
            base: Instant::now(),
            offset_us: AtomicU64::new(0),
            wakers: Mutex::new(Vec::new()),
        }
    }

    /// Jump simulated time forward by `by` (truncated to microseconds — the
    /// granularity of the scheduler's tick clock) and fire every registered
    /// waker so idle waiters re-examine their due times.
    pub fn advance(&self, by: Duration) {
        self.offset_us.fetch_add(by.as_micros() as u64, Ordering::AcqRel);
        // Snapshot outside the lock: a waker may re-enter the clock (e.g. to
        // read `now`), and new registrations during the sweep are fine — they
        // observe the already-advanced time.
        let wakers: Vec<ClockWaker> =
            self.wakers.lock().expect("sim clock wakers poisoned").clone();
        for waker in wakers {
            waker();
        }
    }

    /// Total simulated time elapsed since construction.
    pub fn elapsed(&self) -> Duration {
        Duration::from_micros(self.offset_us.load(Ordering::Acquire))
    }

    /// The clock's base instant — virtual time zero. Anchoring a request
    /// trace here puts every recorded span offset directly on the simulated
    /// timeline (`offset == virtual microseconds since the run began`),
    /// which is what the simulation harness's trace oracles compare against.
    pub fn base(&self) -> Instant {
        self.base
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

impl Clock for SimClock {
    fn now(&self) -> Instant {
        self.base + Duration::from_micros(self.offset_us.load(Ordering::Acquire))
    }

    fn is_simulated(&self) -> bool {
        true
    }

    fn register_waker(&self, waker: ClockWaker) {
        self.wakers.lock().expect("sim clock wakers poisoned").push(waker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_only_moves_on_advance() {
        let clock = SimClock::new();
        let t0 = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(clock.now(), t0, "real time must not move a simulated clock");
        clock.advance(Duration::from_millis(7));
        assert_eq!(clock.now().duration_since(t0), Duration::from_millis(7));
        assert_eq!(clock.elapsed(), Duration::from_millis(7));
        assert_eq!(clock.now().duration_since(clock.base()), Duration::from_millis(7));
    }

    #[test]
    fn advance_fires_registered_wakers() {
        let clock = SimClock::new();
        let fired = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&fired);
        clock.register_waker(Arc::new(move || {
            sink.fetch_add(1, Ordering::SeqCst);
        }));
        clock.advance(Duration::from_secs(1));
        clock.advance(Duration::from_secs(1));
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn system_clock_tracks_real_time() {
        let clock = SystemClock;
        assert!(!clock.is_simulated());
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
