//! Progressive join path construction (paper Algorithm 2).
//!
//! Every partial query needs an executable join path so the verifier can run
//! probes against the database. Given the tables referenced by the partial
//! query, we (1) compute a Steiner tree over the FK→PK schema graph (unit edge
//! weights), and (2) extend it with additional FK hops up to a configurable
//! depth to cover queries whose `FROM` clause mentions tables beyond the
//! referenced columns (Example 3.2 of the paper).

use duoquest_db::{Database, JoinGraph, JoinTree, TableId};
use duoquest_sql::PartialQuery;

/// Produce the candidate join paths for a partial query.
///
/// * If the partial query references no table yet, every single table of the
///   database is a candidate (paper Algorithm 2, line 6), plus extensions.
/// * Otherwise the Steiner tree over the referenced tables is the base
///   candidate, plus FK extensions up to `extension_depth` hops.
///
/// When `current` is provided (the state already carries a join path), its
/// tables are kept as additional terminals so a previously chosen extension is
/// not silently dropped when later decisions reference new tables.
pub fn construct_join_paths(
    db: &Database,
    graph: &JoinGraph,
    pq: &PartialQuery,
    current: Option<&JoinTree>,
    extension_depth: usize,
) -> Vec<JoinTree> {
    let mut terminals: Vec<TableId> = pq.referenced_columns().iter().map(|c| c.table).collect();
    if let Some(cur) = current {
        terminals.extend(cur.tables.iter().copied());
    }
    terminals.sort();
    terminals.dedup();

    let mut bases: Vec<JoinTree> = Vec::new();
    if terminals.is_empty() {
        for t in 0..db.schema().table_count() {
            bases.push(JoinTree::single(TableId(t)));
        }
    } else if let Ok(tree) = graph.steiner_tree(&terminals) {
        bases.push(tree);
    } else {
        // Disconnected terminals: no valid join path exists for this partial query.
        return Vec::new();
    }

    // Breadth-first FK extensions up to the requested depth.
    let mut all: Vec<JoinTree> = bases.clone();
    let mut frontier = bases;
    for _ in 0..extension_depth {
        let mut next = Vec::new();
        for tree in &frontier {
            for ext in graph.extensions(tree) {
                if !all.contains(&ext) {
                    all.push(ext.clone());
                    next.push(ext);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    // Prefer shorter join paths first (secondary tie-breaker of §3.3.4) and cap
    // the fan-out — beyond a few dozen join paths the extra candidates only
    // duplicate work without covering realistic queries.
    all.sort_by_key(|t| (t.join_length(), t.tables.len()));
    all.truncate(16);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{ColumnDef, Schema, TableDef, Value};
    use duoquest_sql::{PartialSelectItem, SelectColumn, Slot};

    fn movie_db() -> Database {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![ColumnDef::number("aid"), ColumnDef::text("name")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert("actor", vec![Value::int(1), Value::text("Tom Hanks")]).unwrap();
        db.rebuild_index();
        db
    }

    fn pq_with_select(db: &Database, cols: &[(&str, &str)]) -> PartialQuery {
        let mut pq = PartialQuery::empty();
        pq.select = Slot::Filled(
            cols.iter()
                .map(|(t, c)| {
                    PartialSelectItem::with_column(SelectColumn::Column(
                        db.schema().column_id(t, c).unwrap(),
                    ))
                })
                .collect(),
        );
        pq
    }

    #[test]
    fn no_referenced_tables_yields_all_single_tables() {
        let db = movie_db();
        let graph = JoinGraph::new(db.schema());
        let pq = PartialQuery::empty();
        let paths = construct_join_paths(&db, &graph, &pq, None, 0);
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.join_length() == 0));
    }

    #[test]
    fn steiner_base_plus_extensions() {
        let db = movie_db();
        let graph = JoinGraph::new(db.schema());
        let pq = pq_with_select(&db, &[("actor", "name")]);
        let paths = construct_join_paths(&db, &graph, &pq, None, 1);
        // Base: actor alone; extension: actor ⋈ starring.
        assert_eq!(paths[0].join_length(), 0);
        assert!(paths.iter().any(|p| p.join_length() == 1));
        let deeper = construct_join_paths(&db, &graph, &pq, None, 2);
        assert!(deeper.iter().any(|p| p.tables.len() == 3));
        assert!(deeper.len() > paths.len());
    }

    #[test]
    fn current_join_tables_are_preserved_as_terminals() {
        let db = movie_db();
        let graph = JoinGraph::new(db.schema());
        let starring = db.schema().table_id("starring").unwrap();
        let current = JoinTree::single(starring);
        let pq = pq_with_select(&db, &[("actor", "name")]);
        let paths = construct_join_paths(&db, &graph, &pq, Some(&current), 0);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].contains(starring));
        assert!(paths[0].contains(db.schema().table_id("actor").unwrap()));
    }

    #[test]
    fn multi_table_reference_connects_via_bridge() {
        let db = movie_db();
        let graph = JoinGraph::new(db.schema());
        let pq = pq_with_select(&db, &[("actor", "name"), ("movies", "name")]);
        let paths = construct_join_paths(&db, &graph, &pq, None, 0);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].tables.len(), 3);
        assert_eq!(paths[0].join_length(), 2);
    }
}
