//! # duoquest-core
//!
//! The primary contribution of the Duoquest paper: dual-specification SQL
//! synthesis with **guided partial query enumeration (GPQE)**.
//!
//! * [`tsq`] — the table sketch query (TSQ, paper Definitions 2.3/2.4): type
//!   annotations, example tuples with exact/empty/range cells, a sorting flag
//!   and a limit;
//! * [`enumerate`] — GPQE (Algorithm 1): best-first enumeration of partial
//!   queries driven by a pluggable guidance model, with Property-1 confidence
//!   scores (product of per-decision softmax values);
//! * [`joinpath`] — progressive join path construction (Algorithm 2): Steiner
//!   trees over the FK→PK schema graph plus one-hop extensions;
//! * [`verify`] — ascending-cost cascading verification (Algorithm 3): clause
//!   checks, the semantic pruning rules of Table 4, projected-type checks,
//!   column-wise and row-wise database probes, literal-usage checks and order
//!   checks;
//! * [`engine`] — the [`Duoquest`] facade that ties the
//!   pieces together and returns a ranked candidate list (see its module docs
//!   for the parallel, cache-aware core architecture);
//! * [`session`] — owned [`SynthesisSession`]s
//!   over an `Arc`-shared database, with channel-backed candidate streaming
//!   (thread-free: streams are scheduler-driven sessions);
//! * [`scheduler`] — the shared
//!   [`SessionScheduler`]: one long-lived worker
//!   pool multiplexing any number of concurrent sessions with weighted
//!   round-robin fairness. The round loop is a scheduler-resumable state
//!   machine (`RoundDriver`, see `docs/DRIVER.md`), so driven sessions park
//!   in the pool and cost no OS thread; workers resume them inline as their
//!   verification chunks complete.
//! * [`clock`] — virtual time: every wall-clock read in the stack goes
//!   through the [`Clock`] trait ([`SystemClock`] in production,
//!   [`SimClock`] under the deterministic simulation harness of
//!   `crates/dst`).

#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod engine;
pub mod enumerate;
pub mod joinpath;
pub mod scheduler;
pub mod session;
pub mod state;
pub mod tsq;
pub mod verify;

pub use clock::{system_clock, Clock, SharedClock, SimClock, SystemClock};
pub use config::{DuoquestConfig, EmissionPolicy};
pub use engine::{Candidate, Duoquest, SynthesisResult};
pub use enumerate::EnumerationStats;
pub use scheduler::{
    panic_message, DrivenOutcome, SchedulerHandle, SchedulerRunStats, SchedulerStats,
    SessionScheduler,
};
pub use session::{CandidateStream, SessionControl, SynthesisSession};
pub use state::EnumState;
pub use tsq::{TableSketchQuery, TsqCell};
pub use verify::{StageTimings, Verifier, VerifyOutcome, VerifyStage};
