//! Row-wise verification probes (`VerifyByRow`, paper Example 3.6).
//!
//! Row-wise probes require the output values of a partial query to reside in
//! the *same* tuple when matched against an example tuple. They execute over
//! the partial query's join path, re-using its (completed) WHERE and GROUP BY
//! clauses, with the example cells appended to WHERE (unaggregated projections)
//! or HAVING (aggregated projections).

use crate::tsq::TableSketchQuery;
use crate::verify::by_column::cell_to_predicate;
use duoquest_db::{
    AggFunc, CmpOp, Database, Predicate, RunCacheCounters, SelectItem, SelectSpec, Value,
};
use duoquest_sql::{PartialQuery, SelectColumn};

/// `CanCheckRows` (paper §3.4): partial queries with aggregated projections may
/// only be row-checked once their WHERE and GROUP BY clauses have no holes,
/// because completing those holes could change the aggregate values.
pub fn can_check_rows(pq: &PartialQuery) -> bool {
    if pq.select.as_ref().map(|s| s.is_empty()).unwrap_or(true) {
        return false;
    }
    if pq.join.is_none() {
        return false;
    }
    // Row-wise probes are the most expensive stage of the cascade; the probe
    // result only changes once the WHERE/GROUP BY clauses gain new complete
    // predicates, so defer it until they have no holes (for aggregated
    // projections this is also required for correctness, paper §3.4).
    pq.where_and_group_complete()
}

/// Whether every example tuple is satisfiable by a single output row of the
/// (partial) query.
pub fn verify_by_row(
    db: &Database,
    tsq: &TableSketchQuery,
    pq: &PartialQuery,
    counters: &RunCacheCounters,
) -> bool {
    let Some(items) = pq.select.as_ref() else { return true };
    let Some(join) = pq.join.as_ref() else { return true };

    // Base spec: the decided parts of the partial query whose omission can only
    // enlarge the result set (so pruning stays sound).
    let mut base = SelectSpec { join: join.clone(), limit: Some(1), ..Default::default() };

    // Include the WHERE clause only when it is fully decided; a partially
    // decided conjunction could only shrink the result set further, so probing
    // the superset is sound, while a partially decided disjunction could grow
    // it, which would make pruning unsound.
    let where_complete = pq
        .where_predicates
        .as_ref()
        .map(|preds| preds.iter().all(|p| p.is_complete()))
        .unwrap_or(false);
    if where_complete {
        if let Some(preds) = pq.where_predicates.as_ref() {
            for p in preds {
                if let Ok(pred) = p.to_predicate() {
                    base.predicates.push(pred);
                }
            }
            if let Some(op) = pq.where_op.as_ref() {
                base.predicate_op = *op;
            } else if preds.len() > 1 {
                // Connective undecided: drop the predicates again (an OR could
                // only be wider than any single predicate subset).
                base.predicates.clear();
            }
        }
    }
    if let Some(group) = pq.group_by.as_ref() {
        base.group_by = group.clone();
    }

    for tuple in &tsq.tuples {
        let mut spec = base.clone();
        let mut constrained = false;
        for (i, cell) in tuple.iter().enumerate() {
            if !cell.is_constrained() {
                continue;
            }
            let Some(item) = items.get(i) else { continue };
            let Some(SelectColumn::Column(col)) = item.col.as_ref() else {
                // `COUNT(*)` cells become HAVING COUNT(*) constraints.
                if let Some(Some(AggFunc::Count)) = item.agg.as_ref() {
                    if let Some(p) = cell_to_predicate(duoquest_db::ColumnId::new(0, 0), cell) {
                        spec.having.push(Predicate {
                            agg: Some(AggFunc::Count),
                            col: None,
                            op: p.op,
                            value: p.value,
                            value2: p.value2,
                        });
                        constrained = true;
                    }
                }
                continue;
            };
            match item.agg.as_ref() {
                None => continue, // aggregate undecided: no sound constraint yet
                Some(None) => {
                    if let Some(p) = cell_to_predicate(*col, cell) {
                        spec.predicates.push(p);
                        constrained = true;
                    }
                }
                Some(Some(agg)) => {
                    if let Some(p) = cell_to_predicate(*col, cell) {
                        spec.having.push(Predicate {
                            agg: Some(*agg),
                            col: Some(*col),
                            op: p.op,
                            value: p.value,
                            value2: p.value2,
                        });
                        constrained = true;
                    }
                }
            }
        }
        if !constrained {
            continue;
        }
        // The probe needs some projection; project the first available column of
        // the join (mirroring the paper's `SELECT 1`).
        let probe_col = pq.referenced_columns().first().copied().unwrap_or_else(|| {
            db.schema().table_columns(join.tables[0]).next().expect("table has columns")
        });
        spec.select = vec![if spec.group_by.is_empty() && !spec.having.is_empty() {
            SelectItem::count_star()
        } else {
            SelectItem::column(probe_col)
        }];
        // An added WHERE constraint on an aggregated query must not conflict
        // with grouping semantics; the executor tolerates it because grouping
        // keeps a representative row per group.
        match db.execute_cached_with(&spec, counters) {
            Ok(rs) => {
                if rs.is_empty() {
                    return false;
                }
                // Guard against the COUNT(*) probe returning a single row of 0.
                if spec.group_by.is_empty() && !spec.having.is_empty() {
                    if let Some(Value::Number(n)) = rs.rows.first().and_then(|r| r.0.first()) {
                        if *n == 0.0 && spec.having.iter().any(|h| !having_matches_zero(h)) {
                            return false;
                        }
                    }
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// Whether a HAVING constraint would accept an aggregate value of zero — used
/// to interpret a global-aggregate probe that returned an empty group.
fn having_matches_zero(pred: &Predicate) -> bool {
    let zero = Value::int(0);
    match pred.op {
        CmpOp::Eq => pred.value.sql_eq(&zero),
        CmpOp::Ne => !pred.value.sql_eq(&zero),
        CmpOp::Lt => pred.value.as_number().map(|v| 0.0 < v).unwrap_or(false),
        CmpOp::Le => pred.value.as_number().map(|v| 0.0 <= v).unwrap_or(false),
        CmpOp::Gt => pred.value.as_number().map(|v| 0.0 > v).unwrap_or(false),
        CmpOp::Ge => pred.value.as_number().map(|v| 0.0 >= v).unwrap_or(false),
        CmpOp::Between => pred
            .value
            .as_number()
            .zip(pred.value2.as_ref().and_then(Value::as_number))
            .map(|(lo, hi)| lo <= 0.0 && 0.0 <= hi)
            .unwrap_or(false),
        CmpOp::Like => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsq::TsqCell;
    use crate::verify::test_fixtures::movie_db;
    use duoquest_db::{JoinGraph, LogicalOp};
    use duoquest_sql::{ClauseSet, PartialPredicate, PartialSelectItem, Slot};

    /// SELECT movies.name, actor.name FROM movies ⋈ starring ⋈ actor [WHERE ...]
    fn join_pq(db: &Database, with_where: Option<(&str, &str, CmpOp, Value)>) -> PartialQuery {
        let s = db.schema();
        let graph = JoinGraph::new(s);
        let join = graph
            .steiner_tree(&[s.table_id("movies").unwrap(), s.table_id("actor").unwrap()])
            .unwrap();
        let mut pq = PartialQuery {
            clauses: Slot::Filled(ClauseSet {
                where_clause: with_where.is_some(),
                ..Default::default()
            }),
            select: Slot::Filled(vec![
                PartialSelectItem {
                    col: Slot::Filled(SelectColumn::Column(s.column_id("movies", "name").unwrap())),
                    agg: Slot::Filled(None),
                },
                PartialSelectItem {
                    col: Slot::Filled(SelectColumn::Column(s.column_id("actor", "name").unwrap())),
                    agg: Slot::Filled(None),
                },
            ]),
            join: Some(join),
            where_op: Slot::Filled(LogicalOp::And),
            ..PartialQuery::empty()
        };
        if let Some((t, c, op, v)) = with_where {
            pq.where_predicates = Slot::Filled(vec![PartialPredicate {
                col: Slot::Filled(s.column_id(t, c).unwrap()),
                op: Slot::Filled(op),
                value: Slot::Filled(v),
                value2: None,
            }]);
        }
        pq
    }

    #[test]
    fn matching_pair_passes_mismatched_pair_fails() {
        let db = movie_db();
        let pq = join_pq(&db, None);
        let good = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::text("Forrest Gump"), TsqCell::text("Tom Hanks")]);
        assert!(verify_by_row(&db, &good, &pq, &RunCacheCounters::default()));
        // Sandra Bullock did not star in Forrest Gump.
        let bad = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::text("Forrest Gump"), TsqCell::text("Sandra Bullock")]);
        assert!(!verify_by_row(&db, &bad, &pq, &RunCacheCounters::default()));
    }

    #[test]
    fn where_clause_participates_in_row_check() {
        let db = movie_db();
        // WHERE movies.year > 2000 excludes Forrest Gump.
        let pq = join_pq(&db, Some(("movies", "year", CmpOp::Gt, Value::int(2000))));
        let tsq = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::text("Forrest Gump"), TsqCell::text("Tom Hanks")]);
        assert!(!verify_by_row(&db, &tsq, &pq, &RunCacheCounters::default()));
        let tsq = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::text("Gravity"), TsqCell::text("Sandra Bullock")]);
        assert!(verify_by_row(&db, &tsq, &pq, &RunCacheCounters::default()));
    }

    #[test]
    fn aggregated_projection_goes_to_having() {
        let db = movie_db();
        let s = db.schema();
        let graph = JoinGraph::new(s);
        let join = graph
            .steiner_tree(&[s.table_id("actor").unwrap(), s.table_id("starring").unwrap()])
            .unwrap();
        // SELECT actor.name, COUNT(*) ... GROUP BY actor.name
        let pq = PartialQuery {
            clauses: Slot::Filled(ClauseSet { group_by: true, ..Default::default() }),
            select: Slot::Filled(vec![
                PartialSelectItem {
                    col: Slot::Filled(SelectColumn::Column(s.column_id("actor", "name").unwrap())),
                    agg: Slot::Filled(None),
                },
                PartialSelectItem {
                    col: Slot::Filled(SelectColumn::Star),
                    agg: Slot::Filled(Some(AggFunc::Count)),
                },
            ]),
            join: Some(join),
            group_by: Slot::Filled(vec![s.column_id("actor", "name").unwrap()]),
            having: Slot::Filled(None),
            ..PartialQuery::empty()
        };
        assert!(can_check_rows(&pq));
        // Tom Hanks starred in exactly 1 movie in the fixture.
        let good = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::text("Tom Hanks"), TsqCell::number(1)]);
        assert!(verify_by_row(&db, &good, &pq, &RunCacheCounters::default()));
        let bad = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::text("Tom Hanks"), TsqCell::range(1950, 1960)]);
        assert!(!verify_by_row(&db, &bad, &pq, &RunCacheCounters::default()));
    }

    #[test]
    fn can_check_rows_preconditions() {
        let db = movie_db();
        let pq = PartialQuery::empty();
        assert!(!can_check_rows(&pq));
        let pq = join_pq(&db, None);
        assert!(can_check_rows(&pq));
        // Aggregated projection with an undecided WHERE clause blocks row checks.
        let s = db.schema();
        let mut pq = join_pq(&db, None);
        pq.clauses = Slot::Filled(ClauseSet { where_clause: true, ..Default::default() });
        if let Slot::Filled(items) = &mut pq.select {
            items[1] = PartialSelectItem {
                col: Slot::Filled(SelectColumn::Column(s.column_id("movies", "year").unwrap())),
                agg: Slot::Filled(Some(AggFunc::Max)),
            };
        }
        assert!(!can_check_rows(&pq));
    }

    #[test]
    fn unconstrained_tuples_pass_trivially() {
        let db = movie_db();
        let pq = join_pq(&db, None);
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::Empty, TsqCell::Empty]);
        assert!(verify_by_row(&db, &tsq, &pq, &RunCacheCounters::default()));
    }
}
