//! Literal-usage check (`VerifyLiterals`, paper Algorithm 3 line 10).
//!
//! Once a query is complete, every literal value the user tagged in the NLQ
//! must actually be used by the query — as a WHERE constant, a HAVING constant,
//! or (for integers) as the LIMIT.

use duoquest_nlq::{Literal, LiteralKind};
use duoquest_sql::PartialQuery;

/// Whether every tagged literal is used somewhere in the (complete) query.
pub fn verify_literals(pq: &PartialQuery, literals: &[Literal]) -> bool {
    literals.iter().all(|lit| literal_used(pq, lit))
}

fn literal_used(pq: &PartialQuery, lit: &Literal) -> bool {
    if let Some(preds) = pq.where_predicates.as_ref() {
        for p in preds {
            if p.value.as_ref().map(|v| v.sql_eq(&lit.value)).unwrap_or(false) {
                return true;
            }
            if p.value2.as_ref().map(|v| v.sql_eq(&lit.value)).unwrap_or(false) {
                return true;
            }
        }
    }
    if let Some(Some(h)) = pq.having.as_ref() {
        if h.value.as_ref().map(|v| v.sql_eq(&lit.value)).unwrap_or(false) {
            return true;
        }
    }
    if lit.kind == LiteralKind::Number {
        if let Some(Some(o)) = pq.order_by.as_ref() {
            if let Some(Some(limit)) = o.limit.as_ref() {
                if (*limit as f64 - lit.value.as_number().unwrap_or(f64::NAN)).abs() < f64::EPSILON
                {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{CmpOp, ColumnId, OrderKey, Value};
    use duoquest_nlq::Literal;
    use duoquest_sql::{PartialHaving, PartialOrder, PartialPredicate, Slot};

    fn pq_with_predicate(value: Value) -> PartialQuery {
        let mut pq = PartialQuery::empty();
        pq.where_predicates = Slot::Filled(vec![PartialPredicate {
            col: Slot::Filled(ColumnId::new(0, 0)),
            op: Slot::Filled(CmpOp::Eq),
            value: Slot::Filled(value),
            value2: None,
        }]);
        pq
    }

    #[test]
    fn used_and_unused_predicate_literals() {
        let pq = pq_with_predicate(Value::text("SIGMOD"));
        let used = vec![Literal::text("SIGMOD", Value::text("sigmod"))];
        let unused = vec![Literal::text("VLDB", Value::text("VLDB"))];
        assert!(verify_literals(&pq, &used));
        assert!(!verify_literals(&pq, &unused));
        assert!(verify_literals(&pq, &[]));
    }

    #[test]
    fn between_second_bound_counts_as_used() {
        let mut pq = pq_with_predicate(Value::int(2010));
        if let Slot::Filled(preds) = &mut pq.where_predicates {
            preds[0].op = Slot::Filled(CmpOp::Between);
            preds[0].value2 = Some(Value::int(2017));
        }
        let lits = vec![Literal::number(2010.0), Literal::number(2017.0)];
        assert!(verify_literals(&pq, &lits));
    }

    #[test]
    fn having_value_counts_as_used() {
        let mut pq = PartialQuery::empty();
        pq.having = Slot::Filled(Some(PartialHaving {
            agg: Slot::Filled(duoquest_db::AggFunc::Count),
            col: Slot::Filled(None),
            op: Slot::Filled(CmpOp::Gt),
            value: Slot::Filled(Value::int(500)),
        }));
        assert!(verify_literals(&pq, &[Literal::number(500.0)]));
        assert!(!verify_literals(&pq, &[Literal::number(100.0)]));
    }

    #[test]
    fn numeric_literal_as_limit_counts_as_used() {
        let mut pq = PartialQuery::empty();
        pq.order_by = Slot::Filled(Some(PartialOrder {
            key: Slot::Filled(OrderKey::Column(ColumnId::new(0, 0))),
            desc: Slot::Filled(true),
            limit: Slot::Filled(Some(10)),
        }));
        assert!(verify_literals(&pq, &[Literal::number(10.0)]));
        assert!(!verify_literals(&pq, &[Literal::number(5.0)]));
    }
}
