//! Column-wise verification probes (`VerifyByColumn`, paper Example 3.5).
//!
//! Every constrained cell of every example tuple is checked independently
//! against the projected column at the same position with a cheap
//! `SELECT … FROM <column's table> WHERE <cell constraint> LIMIT 1` probe —
//! no join is required, which makes this much cheaper than row-wise probes.
//! The `LIMIT 1` rides the streaming executor's limit pushdown (see
//! `docs/EXECUTOR.md`): on a cache miss the scan stops at the first
//! matching row instead of filtering the whole table.

use crate::tsq::{TableSketchQuery, TsqCell};
use duoquest_db::{
    AggFunc, ColumnId, Database, JoinTree, Predicate, RunCacheCounters, SelectItem, SelectSpec,
};
use duoquest_sql::{PartialQuery, SelectColumn};

/// Whether every constrained example cell can be produced by the corresponding
/// projected column on its own.
pub fn verify_by_column(
    db: &Database,
    tsq: &TableSketchQuery,
    pq: &PartialQuery,
    counters: &RunCacheCounters,
) -> bool {
    let Some(items) = pq.select.as_ref() else { return true };
    for tuple in &tsq.tuples {
        for (i, cell) in tuple.iter().enumerate() {
            if !cell.is_constrained() {
                continue;
            }
            let Some(item) = items.get(i) else { continue };
            let Some(col_choice) = item.col.as_ref() else { continue };
            let SelectColumn::Column(col) = col_choice else { continue }; // `*` carries no column
            match item.agg.as_ref() {
                // Aggregate undecided: the item could still become COUNT/SUM, so
                // no sound conclusion can be drawn yet.
                None => continue,
                // COUNT and SUM projections are ignored (paper §3.4).
                Some(Some(AggFunc::Count)) | Some(Some(AggFunc::Sum)) => continue,
                // AVG: the cell must intersect the column's observed range.
                Some(Some(AggFunc::Avg)) => {
                    if !avg_cell_possible(db, *col, cell) {
                        return false;
                    }
                }
                // MIN/MAX and plain projections: the cell value must exist in the column.
                Some(Some(AggFunc::Min)) | Some(Some(AggFunc::Max)) | Some(None) => {
                    if !column_probe(db, *col, cell, counters) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Run the single-table probe for one cell.
fn column_probe(db: &Database, col: ColumnId, cell: &TsqCell, counters: &RunCacheCounters) -> bool {
    // Type compatibility first: a number cell can never match a text column.
    if let Some(cell_type) = cell.data_type() {
        if cell_type != db.schema().column(col).dtype {
            return false;
        }
    }
    let Some(pred) = cell_predicate(col, cell) else { return true };
    let spec = SelectSpec {
        select: vec![SelectItem::column(col)],
        join: JoinTree::single(col.table),
        predicates: vec![pred],
        limit: Some(1),
        ..Default::default()
    };
    // Sibling search states repeat these probes constantly; the memo cache
    // answers everything after the first execution.
    db.execute_cached_with(&spec, counters).map(|rs| !rs.is_empty()).unwrap_or(false)
}

/// AVG check: the observed `[min, max]` range of the column must intersect the cell.
fn avg_cell_possible(db: &Database, col: ColumnId, cell: &TsqCell) -> bool {
    let Some((min, max)) = db.numeric_range(col) else { return false };
    match cell {
        TsqCell::Empty => true,
        TsqCell::Exact(v) => v.as_number().map(|n| n >= min && n <= max).unwrap_or(false),
        TsqCell::Range(lo, hi) => match (lo.as_number(), hi.as_number()) {
            (Some(lo), Some(hi)) => lo <= max && hi >= min,
            _ => false,
        },
    }
}

/// Translate a cell into a probe predicate.
fn cell_predicate(col: ColumnId, cell: &TsqCell) -> Option<Predicate> {
    match cell {
        TsqCell::Empty => None,
        TsqCell::Exact(v) => Some(Predicate::new(col, duoquest_db::CmpOp::Eq, v.clone())),
        TsqCell::Range(lo, hi) => Some(Predicate::between(col, lo.clone(), hi.clone())),
    }
}

/// Expose the probe builder so row-wise verification can reuse the translation.
pub(crate) fn cell_to_predicate(col: ColumnId, cell: &TsqCell) -> Option<Predicate> {
    cell_predicate(col, cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::test_fixtures::movie_db;
    use duoquest_sql::{PartialSelectItem, Slot};

    fn select_pq(db: &Database, items: Vec<(&str, &str, Option<AggFunc>)>) -> PartialQuery {
        let mut pq = PartialQuery::empty();
        pq.select = Slot::Filled(
            items
                .into_iter()
                .map(|(t, c, agg)| PartialSelectItem {
                    col: Slot::Filled(SelectColumn::Column(db.schema().column_id(t, c).unwrap())),
                    agg: Slot::Filled(agg),
                })
                .collect(),
        );
        pq
    }

    #[test]
    fn existing_value_passes_missing_value_fails() {
        let db = movie_db();
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::text("Tom Hanks")]);
        let pq = select_pq(&db, vec![("actor", "name", None)]);
        assert!(verify_by_column(&db, &tsq, &pq, &RunCacheCounters::default()));
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::text("Meryl Streep")]);
        assert!(!verify_by_column(&db, &tsq, &pq, &RunCacheCounters::default()));
    }

    #[test]
    fn range_cell_checks_example_3_5() {
        let db = movie_db();
        // χ1 = [Tom Hanks, [1950, 1960]]: birth_yr projection passes, movie
        // revenue-like projection (year) fails because no year is in range.
        let tsq = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::text("Tom Hanks"), TsqCell::range(1950, 1960)]);
        let ok = select_pq(&db, vec![("actor", "name", None), ("actor", "birth_yr", None)]);
        assert!(verify_by_column(&db, &tsq, &ok, &RunCacheCounters::default()));
        let bad =
            select_pq(&db, vec![("actor", "name", None), ("movies", "year", Some(AggFunc::Max))]);
        assert!(!verify_by_column(&db, &tsq, &bad, &RunCacheCounters::default()));
    }

    #[test]
    fn count_and_sum_projections_are_ignored() {
        let db = movie_db();
        let tsq = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::text("Tom Hanks"), TsqCell::range(1950, 1960)]);
        let pq =
            select_pq(&db, vec![("actor", "name", None), ("movies", "year", Some(AggFunc::Count))]);
        assert!(verify_by_column(&db, &tsq, &pq, &RunCacheCounters::default()));
    }

    #[test]
    fn avg_uses_range_intersection() {
        let db = movie_db();
        // movies.year spans 1994..2013.
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::range(2000, 2020)]);
        let pq = select_pq(&db, vec![("movies", "year", Some(AggFunc::Avg))]);
        assert!(verify_by_column(&db, &tsq, &pq, &RunCacheCounters::default()));
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::range(1900, 1950)]);
        assert!(!verify_by_column(&db, &tsq, &pq, &RunCacheCounters::default()));
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::number(2000)]);
        assert!(verify_by_column(&db, &tsq, &pq, &RunCacheCounters::default()));
    }

    #[test]
    fn type_incompatible_cell_fails() {
        let db = movie_db();
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::number(1956)]);
        let pq = select_pq(&db, vec![("actor", "name", None)]);
        assert!(!verify_by_column(&db, &tsq, &pq, &RunCacheCounters::default()));
    }

    #[test]
    fn undecided_items_and_empty_cells_skipped() {
        let db = movie_db();
        let tsq = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::Empty, TsqCell::text("No Such Movie")]);
        // Second projection still undecided: nothing to check for it.
        let mut pq = select_pq(&db, vec![("actor", "name", None)]);
        if let Slot::Filled(items) = &mut pq.select {
            items.push(PartialSelectItem { col: Slot::Hole, agg: Slot::Hole });
        }
        assert!(verify_by_column(&db, &tsq, &pq, &RunCacheCounters::default()));
    }
}
