//! Semantic pruning rules (`VerifySemantics`, paper Table 4).
//!
//! These rules eliminate nonsensical or redundant yet syntactically correct
//! queries so that the produced candidates remain understandable to
//! non-technical users. They require no database access (only the schema).

use duoquest_db::{AggFunc, CmpOp, DataType, LogicalOp, OrderKey, Schema};
use duoquest_sql::{PartialPredicate, PartialQuery, PartialSelectItem, SelectColumn};

/// Apply every semantic rule; `true` means the partial query survives.
pub fn verify_semantics(schema: &Schema, pq: &PartialQuery) -> bool {
    no_inconsistent_predicates(pq)
        && no_constant_output_column(pq)
        && no_ungrouped_aggregation(pq)
        && no_singleton_groups(schema, pq)
        && no_unnecessary_group_by(pq)
        && aggregate_types_ok(schema, pq)
        && comparison_types_ok(schema, pq)
        && no_duplicate_select_items(pq)
        && no_duplicate_predicates(pq)
}

fn filled_predicates(pq: &PartialQuery) -> &[PartialPredicate] {
    pq.where_predicates.as_ref().map(Vec::as_slice).unwrap_or(&[])
}

fn filled_select(pq: &PartialQuery) -> &[PartialSelectItem] {
    pq.select.as_ref().map(Vec::as_slice).unwrap_or(&[])
}

/// Rule "Inconsistent predicates": two equality predicates on the same column
/// with different constants cannot both hold under AND.
fn no_inconsistent_predicates(pq: &PartialQuery) -> bool {
    if pq.where_op.as_ref() != Some(&LogicalOp::And) {
        return true;
    }
    let preds = filled_predicates(pq);
    for (i, a) in preds.iter().enumerate() {
        for b in preds.iter().skip(i + 1) {
            if let (Some(ca), Some(cb)) = (a.col.as_ref(), b.col.as_ref()) {
                if ca == cb
                    && a.op.as_ref() == Some(&CmpOp::Eq)
                    && b.op.as_ref() == Some(&CmpOp::Eq)
                {
                    if let (Some(va), Some(vb)) = (a.value.as_ref(), b.value.as_ref()) {
                        if !va.sql_eq(vb) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Rule "Constant output column": a projected column constrained by an
/// equality predicate would only ever show the constant.
fn no_constant_output_column(pq: &PartialQuery) -> bool {
    // Only applies when the predicates are conjunctive (or there is just one).
    let preds = filled_predicates(pq);
    let conjunctive = preds.len() <= 1 || pq.where_op.as_ref() == Some(&LogicalOp::And);
    if !conjunctive {
        return true;
    }
    for item in filled_select(pq) {
        let (Some(SelectColumn::Column(col)), Some(None)) = (item.col.as_ref(), item.agg.as_ref())
        else {
            continue;
        };
        for p in preds {
            if p.col.as_ref() == Some(col)
                && p.op.as_ref() == Some(&CmpOp::Eq)
                && p.value.is_filled()
            {
                return false;
            }
        }
    }
    true
}

/// Rule "Ungrouped aggregation": mixing aggregated and unaggregated projections
/// requires a GROUP BY clause.
fn no_ungrouped_aggregation(pq: &PartialQuery) -> bool {
    let Some(clauses) = pq.clauses.as_ref() else { return true };
    if clauses.group_by {
        return true;
    }
    let items = filled_select(pq);
    let has_agg = items.iter().any(|i| matches!(i.agg.as_ref(), Some(Some(_))));
    let has_plain = items.iter().any(|i| matches!(i.agg.as_ref(), Some(None)));
    !(has_agg && has_plain)
}

/// Rule "GROUP BY with singleton groups": grouping by a primary key makes every
/// group a single row, so aggregation is unnecessary.
fn no_singleton_groups(schema: &Schema, pq: &PartialQuery) -> bool {
    let Some(group) = pq.group_by.as_ref() else { return true };
    !group.iter().any(|c| schema.is_primary_key(*c))
}

/// Rule "Unnecessary GROUP BY": grouping without any aggregate in SELECT,
/// HAVING or ORDER BY is redundant. Only enforced once all of those decisions
/// have been made (otherwise an aggregate may still appear later).
fn no_unnecessary_group_by(pq: &PartialQuery) -> bool {
    let Some(clauses) = pq.clauses.as_ref() else { return true };
    if !clauses.group_by {
        return true;
    }
    let items = filled_select(pq);
    let select_decided = pq.select.is_filled() && items.iter().all(|i| i.agg.is_filled());
    if !select_decided {
        return true;
    }
    let select_has_agg = items.iter().any(|i| matches!(i.agg.as_ref(), Some(Some(_))));
    let having_decided = pq.having.is_filled();
    let having_has_agg = matches!(pq.having.as_ref(), Some(Some(_)));
    let order_decided = !clauses.order_by || pq.order_by.is_filled();
    let order_has_agg = matches!(
        pq.order_by.as_ref(),
        Some(Some(o)) if matches!(o.key.as_ref(), Some(OrderKey::Aggregate(..)))
    );
    if select_has_agg || having_has_agg || order_has_agg {
        return true;
    }
    // Every place an aggregate could appear is decided and none has one.
    !(having_decided && order_decided)
}

/// Rule "Aggregate type usage": MIN/MAX/AVG/SUM cannot be applied to text columns.
fn aggregate_types_ok(schema: &Schema, pq: &PartialQuery) -> bool {
    for item in filled_select(pq) {
        if let (Some(SelectColumn::Column(col)), Some(Some(agg))) =
            (item.col.as_ref(), item.agg.as_ref())
        {
            if !agg.allows_text_input() && schema.column(*col).dtype == DataType::Text {
                return false;
            }
        }
    }
    if let Some(Some(h)) = pq.having.as_ref() {
        if let (Some(agg), Some(Some(col))) = (h.agg.as_ref(), h.col.as_ref()) {
            if !agg.allows_text_input() && schema.column(*col).dtype == DataType::Text {
                return false;
            }
        }
    }
    if let Some(Some(o)) = pq.order_by.as_ref() {
        if let Some(OrderKey::Aggregate(agg, Some(col))) = o.key.as_ref() {
            if *agg != AggFunc::Count && schema.column(*col).dtype == DataType::Text {
                return false;
            }
        }
    }
    true
}

/// Rule "Faulty type comparison": ordering comparisons on text columns and
/// LIKE on numeric columns are rejected.
fn comparison_types_ok(schema: &Schema, pq: &PartialQuery) -> bool {
    for p in filled_predicates(pq) {
        let (Some(col), Some(op)) = (p.col.as_ref(), p.op.as_ref()) else { continue };
        let dtype = schema.column(*col).dtype;
        if op.requires_ordering() && dtype == DataType::Text {
            return false;
        }
        if *op == CmpOp::Like && dtype == DataType::Number {
            return false;
        }
        // A bound constant must match the column type.
        if let Some(value) = p.value.as_ref() {
            if let Some(vt) = value.data_type() {
                if vt != dtype && *op != CmpOp::Like {
                    return false;
                }
            }
        }
    }
    true
}

/// Reject exact duplicate projections (e.g. `SELECT name, name`).
fn no_duplicate_select_items(pq: &PartialQuery) -> bool {
    let items = filled_select(pq);
    for (i, a) in items.iter().enumerate() {
        for b in items.iter().skip(i + 1) {
            if a.col.is_filled() && a.col == b.col && a.agg.is_filled() && a.agg == b.agg {
                return false;
            }
        }
    }
    true
}

/// Reject exact duplicate predicates.
fn no_duplicate_predicates(pq: &PartialQuery) -> bool {
    let preds = filled_predicates(pq);
    for (i, a) in preds.iter().enumerate() {
        for b in preds.iter().skip(i + 1) {
            if a.col.is_filled()
                && a.col == b.col
                && a.op.is_filled()
                && a.op == b.op
                && a.value.is_filled()
                && a.value == b.value
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{ColumnDef, ColumnId, Schema, TableDef, Value};
    use duoquest_sql::{ClauseSet, PartialHaving, PartialOrder, Slot};

    fn schema() -> Schema {
        let mut s = Schema::new("m");
        s.add_table(TableDef::new(
            "actor",
            vec![ColumnDef::number("aid"), ColumnDef::text("name"), ColumnDef::number("birth_yr")],
            Some(0),
        ));
        s
    }

    fn name_col(s: &Schema) -> ColumnId {
        s.column_id("actor", "name").unwrap()
    }

    fn year_col(s: &Schema) -> ColumnId {
        s.column_id("actor", "birth_yr").unwrap()
    }

    fn select_items(cols: &[(ColumnId, Option<AggFunc>)]) -> Vec<PartialSelectItem> {
        cols.iter()
            .map(|(c, agg)| PartialSelectItem {
                col: Slot::Filled(SelectColumn::Column(*c)),
                agg: Slot::Filled(*agg),
            })
            .collect()
    }

    fn predicate(col: ColumnId, op: CmpOp, value: Value) -> PartialPredicate {
        PartialPredicate {
            col: Slot::Filled(col),
            op: Slot::Filled(op),
            value: Slot::Filled(value),
            value2: None,
        }
    }

    #[test]
    fn inconsistent_equality_predicates_rejected() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        pq.where_op = Slot::Filled(LogicalOp::And);
        pq.where_predicates = Slot::Filled(vec![
            predicate(name_col(&s), CmpOp::Eq, Value::text("Tom Hanks")),
            predicate(name_col(&s), CmpOp::Eq, Value::text("Brad Pitt")),
        ]);
        assert!(!verify_semantics(&s, &pq));
        // The same pair under OR is fine.
        pq.where_op = Slot::Filled(LogicalOp::Or);
        assert!(verify_semantics(&s, &pq));
    }

    #[test]
    fn constant_output_column_rejected() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        pq.select = Slot::Filled(select_items(&[(name_col(&s), None), (year_col(&s), None)]));
        pq.where_predicates =
            Slot::Filled(vec![predicate(year_col(&s), CmpOp::Eq, Value::int(1950))]);
        pq.where_op = Slot::Filled(LogicalOp::And);
        assert!(!verify_semantics(&s, &pq));
        // Projecting only the other column is fine.
        pq.select = Slot::Filled(select_items(&[(name_col(&s), None)]));
        assert!(verify_semantics(&s, &pq));
    }

    #[test]
    fn ungrouped_aggregation_rejected() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        pq.clauses = Slot::Filled(ClauseSet::default());
        pq.select = Slot::Filled(select_items(&[
            (year_col(&s), None),
            (year_col(&s), Some(AggFunc::Count)),
        ]));
        assert!(!verify_semantics(&s, &pq));
        // With GROUP BY present in the clause set it is allowed.
        pq.clauses = Slot::Filled(ClauseSet { group_by: true, ..Default::default() });
        assert!(verify_semantics(&s, &pq));
    }

    #[test]
    fn singleton_groups_rejected() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        pq.clauses = Slot::Filled(ClauseSet { group_by: true, ..Default::default() });
        pq.group_by = Slot::Filled(vec![s.column_id("actor", "aid").unwrap()]);
        assert!(!verify_semantics(&s, &pq));
        pq.group_by = Slot::Filled(vec![name_col(&s)]);
        assert!(verify_semantics(&s, &pq));
    }

    #[test]
    fn unnecessary_group_by_rejected() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        pq.clauses = Slot::Filled(ClauseSet { group_by: true, ..Default::default() });
        pq.select = Slot::Filled(select_items(&[(name_col(&s), None)]));
        pq.group_by = Slot::Filled(vec![name_col(&s)]);
        // HAVING not yet decided: not pruned.
        assert!(verify_semantics(&s, &pq));
        // HAVING decided to be absent and no aggregate anywhere: pruned.
        pq.having = Slot::Filled(None);
        assert!(!verify_semantics(&s, &pq));
        // A HAVING aggregate legitimizes the grouping.
        pq.having = Slot::Filled(Some(PartialHaving {
            agg: Slot::Filled(AggFunc::Count),
            col: Slot::Filled(None),
            op: Slot::Filled(CmpOp::Gt),
            value: Slot::Filled(Value::int(5)),
        }));
        assert!(verify_semantics(&s, &pq));
    }

    #[test]
    fn aggregate_type_usage_rejected() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        pq.select = Slot::Filled(select_items(&[(name_col(&s), Some(AggFunc::Avg))]));
        assert!(!verify_semantics(&s, &pq));
        pq.select = Slot::Filled(select_items(&[(name_col(&s), Some(AggFunc::Count))]));
        assert!(verify_semantics(&s, &pq));
        pq.select = Slot::Filled(select_items(&[(year_col(&s), Some(AggFunc::Avg))]));
        assert!(verify_semantics(&s, &pq));
    }

    #[test]
    fn faulty_type_comparisons_rejected() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        pq.where_predicates =
            Slot::Filled(vec![predicate(name_col(&s), CmpOp::Ge, Value::text("Tom"))]);
        assert!(!verify_semantics(&s, &pq));
        pq.where_predicates =
            Slot::Filled(vec![predicate(year_col(&s), CmpOp::Like, Value::text("%1956%"))]);
        assert!(!verify_semantics(&s, &pq));
        // Value type must match column type.
        pq.where_predicates =
            Slot::Filled(vec![predicate(year_col(&s), CmpOp::Eq, Value::text("x"))]);
        assert!(!verify_semantics(&s, &pq));
        pq.where_predicates =
            Slot::Filled(vec![predicate(year_col(&s), CmpOp::Ge, Value::int(1950))]);
        assert!(verify_semantics(&s, &pq));
    }

    #[test]
    fn duplicates_rejected() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        pq.select = Slot::Filled(select_items(&[(name_col(&s), None), (name_col(&s), None)]));
        assert!(!verify_semantics(&s, &pq));
        let mut pq = PartialQuery::empty();
        pq.where_predicates = Slot::Filled(vec![
            predicate(year_col(&s), CmpOp::Gt, Value::int(1950)),
            predicate(year_col(&s), CmpOp::Gt, Value::int(1950)),
        ]);
        assert!(!verify_semantics(&s, &pq));
    }

    #[test]
    fn order_by_aggregate_over_text_rejected() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        pq.clauses =
            Slot::Filled(ClauseSet { group_by: true, order_by: true, ..Default::default() });
        pq.order_by = Slot::Filled(Some(PartialOrder {
            key: Slot::Filled(OrderKey::Aggregate(AggFunc::Max, Some(name_col(&s)))),
            desc: Slot::Filled(true),
            limit: Slot::Filled(None),
        }));
        assert!(!verify_semantics(&s, &pq));
    }

    #[test]
    fn empty_partial_query_passes() {
        let s = schema();
        assert!(verify_semantics(&s, &PartialQuery::empty()));
    }
}
