//! Clause presence checks (`VerifyClauses`, paper §3.4 / Example 3.3).
//!
//! These checks need no database access: they compare the TSQ's sorting flag
//! and limit against the clause-set decision and the ORDER BY / LIMIT decision
//! of the partial query.

use crate::tsq::TableSketchQuery;
use duoquest_sql::PartialQuery;

/// Whether the partial query's clause structure is compatible with the TSQ.
pub fn verify_clauses(tsq: &TableSketchQuery, pq: &PartialQuery) -> bool {
    if let Some(clauses) = pq.clauses.as_ref() {
        // Definition 2.4(3): a sorted TSQ requires a sorting operator; an
        // unsorted TSQ prunes queries that commit to ORDER BY (Example 3.3, CQ5).
        if tsq.sorted != clauses.order_by {
            return false;
        }
        // A top-k TSQ needs the ORDER BY clause that carries the LIMIT.
        if tsq.limit > 0 && !clauses.order_by {
            return false;
        }
    }
    // Once the DESC/ASC + LIMIT decision is made, its limit must agree with k.
    if let Some(Some(order)) = pq.order_by.as_ref() {
        if let Some(limit) = order.limit.as_ref() {
            match (tsq.limit, limit) {
                (0, Some(_)) => return false,
                (k, None) if k > 0 => return false,
                (k, Some(l)) if k > 0 && *l > k => return false,
                _ => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{ColumnId, OrderKey};
    use duoquest_sql::{ClauseSet, PartialOrder, Slot};

    fn pq_with_clauses(order_by: bool) -> PartialQuery {
        PartialQuery {
            clauses: Slot::Filled(ClauseSet { order_by, ..Default::default() }),
            ..PartialQuery::empty()
        }
    }

    #[test]
    fn unsorted_tsq_rejects_order_by() {
        let tsq = TableSketchQuery::empty();
        assert!(verify_clauses(&tsq, &pq_with_clauses(false)));
        assert!(!verify_clauses(&tsq, &pq_with_clauses(true)));
    }

    #[test]
    fn sorted_tsq_requires_order_by() {
        let tsq = TableSketchQuery::empty().sorted();
        assert!(verify_clauses(&tsq, &pq_with_clauses(true)));
        assert!(!verify_clauses(&tsq, &pq_with_clauses(false)));
    }

    #[test]
    fn limit_requires_order_clause_and_matching_k() {
        let tsq = TableSketchQuery::empty().sorted().with_limit(10);
        assert!(!verify_clauses(&tsq, &pq_with_clauses(false)));
        let mut pq = pq_with_clauses(true);
        assert!(verify_clauses(&tsq, &pq));

        // LIMIT larger than k fails; LIMIT within k passes; missing LIMIT fails.
        let key = OrderKey::Column(ColumnId::new(0, 0));
        pq.order_by = Slot::Filled(Some(PartialOrder {
            key: Slot::Filled(key),
            desc: Slot::Filled(true),
            limit: Slot::Filled(Some(20)),
        }));
        assert!(!verify_clauses(&tsq, &pq));
        pq.order_by = Slot::Filled(Some(PartialOrder {
            key: Slot::Filled(key),
            desc: Slot::Filled(true),
            limit: Slot::Filled(Some(10)),
        }));
        assert!(verify_clauses(&tsq, &pq));
        pq.order_by = Slot::Filled(Some(PartialOrder {
            key: Slot::Filled(key),
            desc: Slot::Filled(true),
            limit: Slot::Filled(None),
        }));
        assert!(!verify_clauses(&tsq, &pq));
    }

    #[test]
    fn no_limit_tsq_rejects_limit_queries() {
        let tsq = TableSketchQuery::empty().sorted();
        let key = OrderKey::Column(ColumnId::new(0, 0));
        let mut pq = pq_with_clauses(true);
        pq.order_by = Slot::Filled(Some(PartialOrder {
            key: Slot::Filled(key),
            desc: Slot::Filled(false),
            limit: Slot::Filled(Some(5)),
        }));
        assert!(!verify_clauses(&tsq, &pq));
    }

    #[test]
    fn undecided_clauses_are_not_pruned() {
        let tsq = TableSketchQuery::empty().sorted().with_limit(3);
        assert!(verify_clauses(&tsq, &PartialQuery::empty()));
    }
}
