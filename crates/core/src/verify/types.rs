//! Projected column type checks (`VerifyColumnTypes`, paper Example 3.4).
//!
//! The TSQ's type annotations are compared against the output types of the
//! projected columns. This needs schema access but no data access.

use crate::tsq::TableSketchQuery;
use duoquest_db::Schema;
use duoquest_sql::PartialQuery;

/// Whether the (partially) decided projection is compatible with the TSQ's
/// type annotations and width.
pub fn verify_column_types(schema: &Schema, tsq: &TableSketchQuery, pq: &PartialQuery) -> bool {
    let Some(items) = pq.select.as_ref() else { return true };
    if let Some(width) = tsq.width() {
        if items.len() != width {
            return false;
        }
    }
    for (i, item) in items.iter().enumerate() {
        let Some(expected) = tsq.column_type(i) else { continue };
        if let Some(actual) = item.output_type(schema) {
            if actual != expected {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{AggFunc, ColumnDef, DataType, TableDef};
    use duoquest_sql::{PartialSelectItem, SelectColumn, Slot};

    fn schema() -> Schema {
        let mut s = Schema::new("m");
        s.add_table(TableDef::new(
            "actor",
            vec![ColumnDef::number("aid"), ColumnDef::text("name"), ColumnDef::number("birth_yr")],
            Some(0),
        ));
        s
    }

    fn item(s: &Schema, col: &str, agg: Option<AggFunc>) -> PartialSelectItem {
        PartialSelectItem {
            col: Slot::Filled(SelectColumn::Column(s.column_id("actor", col).unwrap())),
            agg: Slot::Filled(agg),
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let s = schema();
        let tsq = TableSketchQuery::with_types(vec![DataType::Text, DataType::Number]);
        let mut pq = PartialQuery::empty();
        pq.select = Slot::Filled(vec![item(&s, "name", None)]);
        assert!(!verify_column_types(&s, &tsq, &pq));
        pq.select = Slot::Filled(vec![item(&s, "name", None), item(&s, "birth_yr", None)]);
        assert!(verify_column_types(&s, &tsq, &pq));
    }

    #[test]
    fn type_mismatch_rejected_example_3_4() {
        let s = schema();
        // α = [text, number]; CQ2-like projection of two text columns fails.
        let tsq = TableSketchQuery::with_types(vec![DataType::Text, DataType::Number]);
        let mut pq = PartialQuery::empty();
        pq.select = Slot::Filled(vec![item(&s, "name", None), item(&s, "name", None)]);
        assert!(!verify_column_types(&s, &tsq, &pq));
    }

    #[test]
    fn aggregates_use_result_type() {
        let s = schema();
        let tsq = TableSketchQuery::with_types(vec![DataType::Text, DataType::Number]);
        let mut pq = PartialQuery::empty();
        pq.select =
            Slot::Filled(vec![item(&s, "name", None), item(&s, "name", Some(AggFunc::Count))]);
        assert!(verify_column_types(&s, &tsq, &pq));
    }

    #[test]
    fn undecided_projection_not_pruned() {
        let s = schema();
        let tsq = TableSketchQuery::with_types(vec![DataType::Text]);
        assert!(verify_column_types(&s, &tsq, &PartialQuery::empty()));
        // Undecided aggregate over a text column could still be COUNT (number)
        // or bare (text), so a text annotation does not prune it.
        let mut pq = PartialQuery::empty();
        pq.select = Slot::Filled(vec![PartialSelectItem::with_column(SelectColumn::Column(
            s.column_id("actor", "name").unwrap(),
        ))]);
        assert!(verify_column_types(&s, &tsq, &pq));
    }

    #[test]
    fn no_annotations_uses_example_cell_types() {
        let s = schema();
        let tsq = TableSketchQuery::empty()
            .with_tuple(vec![crate::tsq::TsqCell::number(1956), crate::tsq::TsqCell::Empty]);
        let mut pq = PartialQuery::empty();
        pq.select = Slot::Filled(vec![item(&s, "name", None), item(&s, "birth_yr", None)]);
        assert!(!verify_column_types(&s, &tsq, &pq));
        pq.select = Slot::Filled(vec![item(&s, "birth_yr", None), item(&s, "name", None)]);
        assert!(verify_column_types(&s, &tsq, &pq));
    }
}
