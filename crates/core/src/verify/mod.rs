//! Ascending-cost cascading verification (paper Algorithm 3).
//!
//! Partial queries are checked with increasingly expensive verifications:
//!
//! 1. [`clauses`] — clause presence vs the TSQ's sorting flag and limit
//!    (no database access);
//! 2. [`semantics`] — the semantic pruning rules of paper Table 4
//!    (no database access);
//! 3. [`types`] — projected column types vs the TSQ type annotations
//!    (schema access only);
//! 4. [`by_column`] — column-wise probes (`SELECT … LIMIT 1` on single tables);
//! 5. [`by_row`] — row-wise probes over the partial query's join path,
//!    guarded by the `CanCheckRows` precondition;
//! 6. [`literals`] — every tagged literal must be used (complete queries only);
//! 7. [`by_order`] — ordered satisfaction of the example tuples (complete,
//!    sorted queries with at least two example tuples).
//!
//! A stage failure prunes the partial query and, with it, every complete query
//! in that branch of the search space.
//!
//! Database probes run through the streaming executor's memo cache
//! (`Database::execute_cached_budgeted`): the `LIMIT 1` probes and the
//! TSQ-limit checks of stage 7 stop scanning as soon as their limit is
//! decided (see `docs/EXECUTOR.md`), and the per-run scan counters are
//! exposed via [`Verifier::scan_counters`].

pub mod by_column;
pub mod by_order;
pub mod by_row;
pub mod clauses;
pub mod literals;
pub mod semantics;
pub mod types;

use crate::clock::{Clock, SYSTEM_CLOCK};
use crate::tsq::TableSketchQuery;
use duoquest_db::{Database, RunCacheCounters};
use duoquest_nlq::Literal;
use duoquest_sql::PartialQuery;
use std::time::Duration;

/// The stage at which verification failed (used for pruning statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyStage {
    /// Clause presence checks.
    Clauses,
    /// Semantic pruning rules (Table 4).
    Semantics,
    /// Projected column type checks.
    ColumnTypes,
    /// Column-wise database probes.
    ByColumn,
    /// Row-wise database probes.
    ByRow,
    /// Literal-usage check on complete queries.
    Literals,
    /// Ordered tuple satisfaction on complete queries.
    ByOrder,
}

impl VerifyStage {
    /// Number of stages in the cascade.
    pub const COUNT: usize = 7;

    /// All stages, in ascending-cost cascade order.
    pub const ALL: [VerifyStage; VerifyStage::COUNT] = [
        VerifyStage::Clauses,
        VerifyStage::Semantics,
        VerifyStage::ColumnTypes,
        VerifyStage::ByColumn,
        VerifyStage::ByRow,
        VerifyStage::Literals,
        VerifyStage::ByOrder,
    ];

    /// Dense index of the stage (cascade position).
    pub fn index(self) -> usize {
        match self {
            VerifyStage::Clauses => 0,
            VerifyStage::Semantics => 1,
            VerifyStage::ColumnTypes => 2,
            VerifyStage::ByColumn => 3,
            VerifyStage::ByRow => 4,
            VerifyStage::Literals => 5,
            VerifyStage::ByOrder => 6,
        }
    }

    /// Short label used in experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            VerifyStage::Clauses => "clauses",
            VerifyStage::Semantics => "semantics",
            VerifyStage::ColumnTypes => "types",
            VerifyStage::ByColumn => "by_column",
            VerifyStage::ByRow => "by_row",
            VerifyStage::Literals => "literals",
            VerifyStage::ByOrder => "by_order",
        }
    }

    /// Span name under which the stage's aggregate time appears in a request
    /// trace (`verify:` plus [`VerifyStage::label`], as a static string so
    /// span recording never allocates).
    pub fn span_name(self) -> &'static str {
        match self {
            VerifyStage::Clauses => "verify:clauses",
            VerifyStage::Semantics => "verify:semantics",
            VerifyStage::ColumnTypes => "verify:types",
            VerifyStage::ByColumn => "verify:by_column",
            VerifyStage::ByRow => "verify:by_row",
            VerifyStage::Literals => "verify:literals",
            VerifyStage::ByOrder => "verify:by_order",
        }
    }
}

/// Wall-clock time and invocation counts per verification stage, making the
/// cascade's ascending-cost ordering observable (not just its prune counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    nanos: [u64; VerifyStage::COUNT],
    calls: [u64; VerifyStage::COUNT],
}

impl StageTimings {
    /// Record one invocation of a stage.
    pub fn record(&mut self, stage: VerifyStage, elapsed: Duration) {
        self.nanos[stage.index()] += elapsed.as_nanos() as u64;
        self.calls[stage.index()] += 1;
    }

    /// Fold another timing table into this one (used to merge worker-local
    /// tables after a parallel round).
    pub fn merge(&mut self, other: &StageTimings) {
        for i in 0..VerifyStage::COUNT {
            self.nanos[i] += other.nanos[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// Accumulated wall-clock time of one stage.
    pub fn duration_of(&self, stage: VerifyStage) -> Duration {
        Duration::from_nanos(self.nanos[stage.index()])
    }

    /// Number of invocations of one stage.
    pub fn calls_of(&self, stage: VerifyStage) -> u64 {
        self.calls[stage.index()]
    }

    /// Total time spent in the cascade.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Render as a JSON object keyed by stage label, each value carrying the
    /// stage's call count and accumulated microseconds (hand-rolled; the
    /// vendored `serde` derives are no-ops).
    pub fn to_json(&self) -> String {
        let fields = VerifyStage::ALL
            .iter()
            .map(|s| {
                format!(
                    "\"{}\":{{\"calls\":{},\"us\":{}}}",
                    s.label(),
                    self.calls_of(*s),
                    self.duration_of(*s).as_micros()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{fields}}}")
    }

    /// One-line human-readable rendering, cascade order.
    pub fn summary(&self) -> String {
        VerifyStage::ALL
            .iter()
            .map(|s| {
                format!(
                    "{}: {:.2}ms/{}",
                    s.label(),
                    self.duration_of(*s).as_secs_f64() * 1e3,
                    self.calls_of(*s)
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    }
}

/// The outcome of verifying one partial query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The partial query survives.
    Pass,
    /// The partial query is pruned at the given stage.
    Fail(VerifyStage),
}

impl VerifyOutcome {
    /// Whether the query survives verification.
    pub fn passed(&self) -> bool {
        matches!(self, VerifyOutcome::Pass)
    }
}

/// The verifier: holds the TSQ, the tagged literals and the database.
pub struct Verifier<'a> {
    db: &'a Database,
    tsq: Option<&'a TableSketchQuery>,
    literals: &'a [Literal],
    semantic_rules: bool,
    /// Per-run probe-cache hit/miss counters (atomic: one verifier is shared
    /// by every worker of a synthesis run). Behind an `Arc` so short-lived
    /// verifiers built per scheduler work unit can all feed one session's
    /// counter set — per-session hit attribution on a database whose probe
    /// cache is shared by many concurrent sessions.
    counters: std::sync::Arc<RunCacheCounters>,
    /// The time source of [`StageTimings`] stamps (virtualized so simulated
    /// runs record simulated durations instead of real ones).
    clock: &'a dyn Clock,
}

impl<'a> Verifier<'a> {
    /// Create a verifier with its own fresh counter set.
    pub fn new(
        db: &'a Database,
        tsq: Option<&'a TableSketchQuery>,
        literals: &'a [Literal],
        semantic_rules: bool,
    ) -> Self {
        Verifier {
            db,
            tsq,
            literals,
            semantic_rules,
            counters: std::sync::Arc::new(RunCacheCounters::default()),
            clock: &SYSTEM_CLOCK,
        }
    }

    /// Replace the verifier's time source (the deterministic simulation
    /// harness threads a virtual clock through here so `StageTimings` never
    /// reads the real clock).
    pub fn with_clock(mut self, clock: &'a dyn Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Replace the verifier's counter set with a shared one, so cache traffic
    /// is attributed to the session that owns `counters` rather than to this
    /// verifier instance.
    pub fn with_counters(mut self, counters: std::sync::Arc<RunCacheCounters>) -> Self {
        self.counters = counters;
        self
    }

    /// Probe-cache `(hits, misses)` recorded through this verifier.
    pub fn cache_counters(&self) -> (u64, u64) {
        self.counters.snapshot()
    }

    /// Executor `(rows_scanned, rows_short_circuited)` recorded through this
    /// verifier's cache misses — the per-run view of the streaming
    /// executor's limit pushdown (see `duoquest_db::ExecMetrics`).
    pub fn scan_counters(&self) -> (u64, u64) {
        self.counters.scan_snapshot()
    }

    /// Executor `(index_lookups, rows_via_index, probes_bailed_empty)`
    /// recorded through this verifier's cache misses — the per-run view of
    /// the index-backed access paths (see `duoquest_db::ExecMetrics`).
    pub fn index_counters(&self) -> (u64, u64, u64) {
        self.counters.index_snapshot()
    }

    /// Single-flight `(hits, leaders, wait_us)` recorded through this
    /// verifier's cache misses — the per-run view of cross-session in-flight
    /// probe collapsing (see `duoquest_db::InflightTable`).
    pub fn single_flight_counters(&self) -> (u64, u64, u64) {
        self.counters.single_flight_snapshot()
    }

    /// The database the verifier probes.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Run the full ascending-cost cascade on a partial query.
    pub fn verify(&self, pq: &PartialQuery) -> VerifyOutcome {
        let mut scratch = StageTimings::default();
        self.verify_timed(pq, &mut scratch)
    }

    /// Run the cascade, recording per-stage wall-clock time and invocation
    /// counts into `timings`. Workers in the parallel session each keep their
    /// own table and merge afterwards, so no synchronization happens here.
    pub fn verify_timed(&self, pq: &PartialQuery, timings: &mut StageTimings) -> VerifyOutcome {
        macro_rules! stage {
            ($stage:expr, $check:expr) => {{
                let started = self.clock.now();
                let passed = $check;
                timings.record($stage, self.clock.now().saturating_duration_since(started));
                if !passed {
                    return VerifyOutcome::Fail($stage);
                }
            }};
        }

        if let Some(tsq) = self.tsq {
            stage!(VerifyStage::Clauses, clauses::verify_clauses(tsq, pq));
        }
        if self.semantic_rules {
            stage!(VerifyStage::Semantics, semantics::verify_semantics(self.db.schema(), pq));
        }
        if let Some(tsq) = self.tsq {
            stage!(VerifyStage::ColumnTypes, types::verify_column_types(self.db.schema(), tsq, pq));
            stage!(
                VerifyStage::ByColumn,
                by_column::verify_by_column(self.db, tsq, pq, &self.counters)
            );
            if by_row::can_check_rows(pq) {
                stage!(VerifyStage::ByRow, by_row::verify_by_row(self.db, tsq, pq, &self.counters));
            }
        }
        if pq.is_complete() {
            stage!(VerifyStage::Literals, literals::verify_literals(pq, self.literals));
            if let Some(tsq) = self.tsq {
                if !tsq.tuples.is_empty() || tsq.limit > 0 {
                    stage!(
                        VerifyStage::ByOrder,
                        by_order::verify_complete(self.db, tsq, pq, &self.counters)
                    );
                }
            }
        }
        VerifyOutcome::Pass
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    //! Shared fixtures for the verification stage tests: the movie database of
    //! the paper's motivating example (Example 2.1 / Table 2).

    use duoquest_db::{ColumnDef, Database, Schema, TableDef, Value};

    /// Build the motivating-example movie database.
    pub fn movie_db() -> Database {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![
                ColumnDef::number("aid"),
                ColumnDef::text("name"),
                ColumnDef::number("birth_yr"),
                ColumnDef::text("gender"),
            ],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert_all(
            "actor",
            vec![
                vec![
                    Value::int(1),
                    Value::text("Tom Hanks"),
                    Value::int(1956),
                    Value::text("male"),
                ],
                vec![
                    Value::int(2),
                    Value::text("Sandra Bullock"),
                    Value::int(1964),
                    Value::text("female"),
                ],
                vec![
                    Value::int(3),
                    Value::text("Brad Pitt"),
                    Value::int(1963),
                    Value::text("male"),
                ],
            ],
        )
        .unwrap();
        db.insert_all(
            "movies",
            vec![
                vec![Value::int(10), Value::text("Forrest Gump"), Value::int(1994)],
                vec![Value::int(11), Value::text("Gravity"), Value::int(2013)],
                vec![Value::int(12), Value::text("Fight Club"), Value::int(1999)],
            ],
        )
        .unwrap();
        db.insert_all(
            "starring",
            vec![
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(2), Value::int(11)],
                vec![Value::int(3), Value::int(12)],
            ],
        )
        .unwrap();
        db.rebuild_index();
        db
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::movie_db;
    use super::*;
    use crate::tsq::{TableSketchQuery, TsqCell};
    use duoquest_db::{CmpOp, JoinTree, LogicalOp, Value};
    use duoquest_sql::{
        ClauseSet, PartialPredicate, PartialQuery, PartialSelectItem, SelectColumn, Slot,
    };

    /// SELECT movies.name FROM movies WHERE movies.year < 1995 (complete).
    fn complete_pq(db: &Database) -> PartialQuery {
        let s = db.schema();
        PartialQuery {
            clauses: Slot::Filled(ClauseSet { where_clause: true, ..Default::default() }),
            select: Slot::Filled(vec![PartialSelectItem {
                col: Slot::Filled(SelectColumn::Column(s.column_id("movies", "name").unwrap())),
                agg: Slot::Filled(None),
            }]),
            distinct: false,
            join: Some(JoinTree::single(s.table_id("movies").unwrap())),
            where_predicates: Slot::Filled(vec![PartialPredicate {
                col: Slot::Filled(s.column_id("movies", "year").unwrap()),
                op: Slot::Filled(CmpOp::Lt),
                value: Slot::Filled(Value::int(1995)),
                value2: None,
            }]),
            where_op: Slot::Filled(LogicalOp::And),
            group_by: Slot::Hole,
            having: Slot::Hole,
            order_by: Slot::Hole,
        }
    }

    #[test]
    fn full_cascade_passes_consistent_query() {
        let db = movie_db();
        let tsq = TableSketchQuery::with_types(vec![duoquest_db::DataType::Text])
            .with_tuple(vec![TsqCell::text("Forrest Gump")]);
        let pq = complete_pq(&db);
        let literals = vec![duoquest_nlq::Literal::number(1995.0)];
        let verifier = Verifier::new(&db, Some(&tsq), &literals, true);
        assert!(verifier.verify(&pq).passed());
    }

    #[test]
    fn cascade_fails_at_clause_stage_for_unsorted_tsq() {
        let db = movie_db();
        let tsq = TableSketchQuery::empty(); // not sorted
        let mut pq = complete_pq(&db);
        pq.clauses =
            Slot::Filled(ClauseSet { where_clause: true, order_by: true, ..Default::default() });
        let verifier = Verifier::new(&db, Some(&tsq), &[], true);
        assert_eq!(verifier.verify(&pq), VerifyOutcome::Fail(VerifyStage::Clauses));
    }

    #[test]
    fn cascade_fails_on_wrong_type_annotation() {
        let db = movie_db();
        let tsq = TableSketchQuery::with_types(vec![duoquest_db::DataType::Number]);
        let pq = complete_pq(&db);
        let verifier = Verifier::new(&db, Some(&tsq), &[], true);
        assert_eq!(verifier.verify(&pq), VerifyOutcome::Fail(VerifyStage::ColumnTypes));
    }

    #[test]
    fn cascade_fails_on_unknown_example_value() {
        let db = movie_db();
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::text("Titanic")]);
        let pq = complete_pq(&db);
        let verifier = Verifier::new(&db, Some(&tsq), &[], true);
        assert_eq!(verifier.verify(&pq), VerifyOutcome::Fail(VerifyStage::ByColumn));
    }

    #[test]
    fn cascade_fails_on_unused_literal() {
        let db = movie_db();
        let pq = complete_pq(&db);
        let literals = vec![duoquest_nlq::Literal::number(2000.0)];
        let verifier = Verifier::new(&db, None, &literals, true);
        assert_eq!(verifier.verify(&pq), VerifyOutcome::Fail(VerifyStage::Literals));
    }

    #[test]
    fn no_tsq_means_no_tsq_stages() {
        let db = movie_db();
        let pq = complete_pq(&db);
        let literals = vec![duoquest_nlq::Literal::number(1995.0)];
        let verifier = Verifier::new(&db, None, &literals, true);
        assert!(verifier.verify(&pq).passed());
        assert!(std::ptr::eq(verifier.database(), &db));
    }
}
