//! Ascending-cost cascading verification (paper Algorithm 3).
//!
//! Partial queries are checked with increasingly expensive verifications:
//!
//! 1. [`clauses`] — clause presence vs the TSQ's sorting flag and limit
//!    (no database access);
//! 2. [`semantics`] — the semantic pruning rules of paper Table 4
//!    (no database access);
//! 3. [`types`] — projected column types vs the TSQ type annotations
//!    (schema access only);
//! 4. [`by_column`] — column-wise probes (`SELECT … LIMIT 1` on single tables);
//! 5. [`by_row`] — row-wise probes over the partial query's join path,
//!    guarded by the `CanCheckRows` precondition;
//! 6. [`literals`] — every tagged literal must be used (complete queries only);
//! 7. [`by_order`] — ordered satisfaction of the example tuples (complete,
//!    sorted queries with at least two example tuples).
//!
//! A stage failure prunes the partial query and, with it, every complete query
//! in that branch of the search space.

pub mod by_column;
pub mod by_order;
pub mod by_row;
pub mod clauses;
pub mod literals;
pub mod semantics;
pub mod types;

use crate::tsq::TableSketchQuery;
use duoquest_db::Database;
use duoquest_nlq::Literal;
use duoquest_sql::PartialQuery;

/// The stage at which verification failed (used for pruning statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyStage {
    /// Clause presence checks.
    Clauses,
    /// Semantic pruning rules (Table 4).
    Semantics,
    /// Projected column type checks.
    ColumnTypes,
    /// Column-wise database probes.
    ByColumn,
    /// Row-wise database probes.
    ByRow,
    /// Literal-usage check on complete queries.
    Literals,
    /// Ordered tuple satisfaction on complete queries.
    ByOrder,
}

/// The outcome of verifying one partial query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The partial query survives.
    Pass,
    /// The partial query is pruned at the given stage.
    Fail(VerifyStage),
}

impl VerifyOutcome {
    /// Whether the query survives verification.
    pub fn passed(&self) -> bool {
        matches!(self, VerifyOutcome::Pass)
    }
}

/// The verifier: holds the TSQ, the tagged literals and the database.
pub struct Verifier<'a> {
    db: &'a Database,
    tsq: Option<&'a TableSketchQuery>,
    literals: &'a [Literal],
    semantic_rules: bool,
}

impl<'a> Verifier<'a> {
    /// Create a verifier.
    pub fn new(
        db: &'a Database,
        tsq: Option<&'a TableSketchQuery>,
        literals: &'a [Literal],
        semantic_rules: bool,
    ) -> Self {
        Verifier { db, tsq, literals, semantic_rules }
    }

    /// The database the verifier probes.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Run the full ascending-cost cascade on a partial query.
    pub fn verify(&self, pq: &PartialQuery) -> VerifyOutcome {
        if let Some(tsq) = self.tsq {
            if !clauses::verify_clauses(tsq, pq) {
                return VerifyOutcome::Fail(VerifyStage::Clauses);
            }
        }
        if self.semantic_rules && !semantics::verify_semantics(self.db.schema(), pq) {
            return VerifyOutcome::Fail(VerifyStage::Semantics);
        }
        if let Some(tsq) = self.tsq {
            if !types::verify_column_types(self.db.schema(), tsq, pq) {
                return VerifyOutcome::Fail(VerifyStage::ColumnTypes);
            }
            if !by_column::verify_by_column(self.db, tsq, pq) {
                return VerifyOutcome::Fail(VerifyStage::ByColumn);
            }
            if by_row::can_check_rows(pq) && !by_row::verify_by_row(self.db, tsq, pq) {
                return VerifyOutcome::Fail(VerifyStage::ByRow);
            }
        }
        if pq.is_complete() {
            if !literals::verify_literals(pq, self.literals) {
                return VerifyOutcome::Fail(VerifyStage::Literals);
            }
            if let Some(tsq) = self.tsq {
                if (!tsq.tuples.is_empty() || tsq.limit > 0)
                    && !by_order::verify_complete(self.db, tsq, pq)
                {
                    return VerifyOutcome::Fail(VerifyStage::ByOrder);
                }
            }
        }
        VerifyOutcome::Pass
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    //! Shared fixtures for the verification stage tests: the movie database of
    //! the paper's motivating example (Example 2.1 / Table 2).

    use duoquest_db::{ColumnDef, Database, Schema, TableDef, Value};

    /// Build the motivating-example movie database.
    pub fn movie_db() -> Database {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![
                ColumnDef::number("aid"),
                ColumnDef::text("name"),
                ColumnDef::number("birth_yr"),
                ColumnDef::text("gender"),
            ],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert_all(
            "actor",
            vec![
                vec![Value::int(1), Value::text("Tom Hanks"), Value::int(1956), Value::text("male")],
                vec![
                    Value::int(2),
                    Value::text("Sandra Bullock"),
                    Value::int(1964),
                    Value::text("female"),
                ],
                vec![Value::int(3), Value::text("Brad Pitt"), Value::int(1963), Value::text("male")],
            ],
        )
        .unwrap();
        db.insert_all(
            "movies",
            vec![
                vec![Value::int(10), Value::text("Forrest Gump"), Value::int(1994)],
                vec![Value::int(11), Value::text("Gravity"), Value::int(2013)],
                vec![Value::int(12), Value::text("Fight Club"), Value::int(1999)],
            ],
        )
        .unwrap();
        db.insert_all(
            "starring",
            vec![
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(2), Value::int(11)],
                vec![Value::int(3), Value::int(12)],
            ],
        )
        .unwrap();
        db.rebuild_index();
        db
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::movie_db;
    use super::*;
    use crate::tsq::{TableSketchQuery, TsqCell};
    use duoquest_db::{CmpOp, JoinTree, LogicalOp, Value};
    use duoquest_sql::{ClauseSet, PartialPredicate, PartialQuery, PartialSelectItem, SelectColumn, Slot};

    /// SELECT movies.name FROM movies WHERE movies.year < 1995 (complete).
    fn complete_pq(db: &Database) -> PartialQuery {
        let s = db.schema();
        PartialQuery {
            clauses: Slot::Filled(ClauseSet { where_clause: true, ..Default::default() }),
            select: Slot::Filled(vec![PartialSelectItem {
                col: Slot::Filled(SelectColumn::Column(s.column_id("movies", "name").unwrap())),
                agg: Slot::Filled(None),
            }]),
            distinct: false,
            join: Some(JoinTree::single(s.table_id("movies").unwrap())),
            where_predicates: Slot::Filled(vec![PartialPredicate {
                col: Slot::Filled(s.column_id("movies", "year").unwrap()),
                op: Slot::Filled(CmpOp::Lt),
                value: Slot::Filled(Value::int(1995)),
                value2: None,
            }]),
            where_op: Slot::Filled(LogicalOp::And),
            group_by: Slot::Hole,
            having: Slot::Hole,
            order_by: Slot::Hole,
        }
    }

    #[test]
    fn full_cascade_passes_consistent_query() {
        let db = movie_db();
        let tsq = TableSketchQuery::with_types(vec![duoquest_db::DataType::Text])
            .with_tuple(vec![TsqCell::text("Forrest Gump")]);
        let pq = complete_pq(&db);
        let literals = vec![duoquest_nlq::Literal::number(1995.0)];
        let verifier = Verifier::new(&db, Some(&tsq), &literals, true);
        assert!(verifier.verify(&pq).passed());
    }

    #[test]
    fn cascade_fails_at_clause_stage_for_unsorted_tsq() {
        let db = movie_db();
        let tsq = TableSketchQuery::empty(); // not sorted
        let mut pq = complete_pq(&db);
        pq.clauses = Slot::Filled(ClauseSet { where_clause: true, order_by: true, ..Default::default() });
        let verifier = Verifier::new(&db, Some(&tsq), &[], true);
        assert_eq!(verifier.verify(&pq), VerifyOutcome::Fail(VerifyStage::Clauses));
    }

    #[test]
    fn cascade_fails_on_wrong_type_annotation() {
        let db = movie_db();
        let tsq = TableSketchQuery::with_types(vec![duoquest_db::DataType::Number]);
        let pq = complete_pq(&db);
        let verifier = Verifier::new(&db, Some(&tsq), &[], true);
        assert_eq!(verifier.verify(&pq), VerifyOutcome::Fail(VerifyStage::ColumnTypes));
    }

    #[test]
    fn cascade_fails_on_unknown_example_value() {
        let db = movie_db();
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::text("Titanic")]);
        let pq = complete_pq(&db);
        let verifier = Verifier::new(&db, Some(&tsq), &[], true);
        assert_eq!(verifier.verify(&pq), VerifyOutcome::Fail(VerifyStage::ByColumn));
    }

    #[test]
    fn cascade_fails_on_unused_literal() {
        let db = movie_db();
        let pq = complete_pq(&db);
        let literals = vec![duoquest_nlq::Literal::number(2000.0)];
        let verifier = Verifier::new(&db, None, &literals, true);
        assert_eq!(verifier.verify(&pq), VerifyOutcome::Fail(VerifyStage::Literals));
    }

    #[test]
    fn no_tsq_means_no_tsq_stages() {
        let db = movie_db();
        let pq = complete_pq(&db);
        let literals = vec![duoquest_nlq::Literal::number(1995.0)];
        let verifier = Verifier::new(&db, None, &literals, true);
        assert!(verifier.verify(&pq).passed());
        assert!(std::ptr::eq(verifier.database(), &db));
    }
}
