//! Ordered tuple satisfaction (`VerifyByOrder`, paper Algorithm 3 lines 11–12).
//!
//! When the TSQ is sorted and contains at least two example tuples, the
//! complete candidate query is executed and the example tuples must be
//! satisfied by result rows appearing in the same order as they were given.
//!
//! # Incremental execution
//!
//! When the TSQ carries a limit `k`, the candidate is executed through
//! [`Database::execute_cached_budgeted`] with a **row budget of `k + 1`**:
//! the streaming executor stops pulling as soon as `k + 1` rows exist, which
//! already decides the `|result| > k` check, and a result that fits within
//! the budget is necessarily complete, so the in-order tuple scan still sees
//! every row. For sorted TSQs whose candidate `ORDER BY` the pipeline order
//! already satisfies (a presorted probe-side column), this turns the former
//! full-result execution into an early-terminating scan.

use crate::tsq::TableSketchQuery;
use duoquest_db::{Database, RunCacheCounters};
use duoquest_sql::PartialQuery;

/// The row budget for a TSQ-limit check: `k + 1` rows decide `|result| > k`.
fn limit_budget(tsq: &TableSketchQuery) -> Option<usize> {
    (tsq.limit > 0).then(|| tsq.limit + 1)
}

/// Whether the complete query produces rows satisfying the example tuples in
/// the order they were specified.
pub fn verify_by_order(
    db: &Database,
    tsq: &TableSketchQuery,
    pq: &PartialQuery,
    counters: &RunCacheCounters,
) -> bool {
    let Ok(spec) = pq.to_spec() else { return false };
    let Ok(probe) = db.execute_cached_budgeted(&spec, limit_budget(tsq), counters) else {
        return false;
    };
    let result = probe.rows;
    if tsq.limit > 0 && result.len() > tsq.limit {
        return false;
    }
    let mut cursor = 0usize;
    for (ti, _tuple) in tsq.tuples.iter().enumerate() {
        let mut found = false;
        while cursor < result.len() {
            let row = &result.rows[cursor].0;
            cursor += 1;
            if tsq.row_satisfies_tuple(ti, row) {
                found = true;
                break;
            }
        }
        if !found {
            return false;
        }
    }
    true
}

/// Final soundness check for complete candidate queries (Definition 2.4): every
/// example tuple must be satisfied by a *distinct* output row, the result must
/// respect the limit `k`, and — when the TSQ is sorted — the tuples must appear
/// in order. This subsumes [`verify_by_order`] for unsorted TSQs and closes the
/// gap left by the (intentionally superset-based) partial row-wise probes.
pub fn verify_complete(
    db: &Database,
    tsq: &TableSketchQuery,
    pq: &PartialQuery,
    counters: &RunCacheCounters,
) -> bool {
    if tsq.sorted && tsq.tuples.len() >= 2 {
        return verify_by_order(db, tsq, pq, counters);
    }
    let Ok(spec) = pq.to_spec() else { return false };
    let Ok(probe) = db.execute_cached_budgeted(&spec, limit_budget(tsq), counters) else {
        return false;
    };
    let result = probe.rows;
    if tsq.limit > 0 && result.len() > tsq.limit {
        return false;
    }
    // Distinct-row satisfaction is a bipartite matching problem: a greedy
    // first-fit wrongly rejects candidates when an early tuple takes the only
    // row a later tuple could use (e.g. tuple 1 matches rows A and B, tuple 2
    // only A). Kuhn's augmenting paths find a perfect matching whenever one
    // exists; example tuples are few, so this stays cheap.
    let mut row_owner: Vec<Option<usize>> = vec![None; result.len()];
    (0..tsq.tuples.len()).all(|ti| {
        let mut visited = vec![false; result.len()];
        assign_tuple(ti, tsq, &result.rows, &mut row_owner, &mut visited)
    })
}

/// Try to give tuple `ti` a result row, recursively re-seating previous
/// owners along an augmenting path.
fn assign_tuple(
    ti: usize,
    tsq: &TableSketchQuery,
    rows: &[duoquest_db::Row],
    row_owner: &mut [Option<usize>],
    visited: &mut [bool],
) -> bool {
    for (ri, row) in rows.iter().enumerate() {
        if visited[ri] || !tsq.row_satisfies_tuple(ti, &row.0) {
            continue;
        }
        visited[ri] = true;
        let reseated = match row_owner[ri] {
            None => true,
            Some(owner) => assign_tuple(owner, tsq, rows, row_owner, visited),
        };
        if reseated {
            row_owner[ri] = Some(ti);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsq::TsqCell;
    use crate::verify::test_fixtures::movie_db;
    use duoquest_db::{JoinGraph, OrderKey, Value};
    use duoquest_sql::{ClauseSet, PartialOrder, PartialSelectItem, SelectColumn, Slot};

    /// SELECT movies.name, movies.year FROM movies ORDER BY movies.year ASC|DESC
    fn ordered_pq(db: &Database, desc: bool) -> PartialQuery {
        let s = db.schema();
        let graph = JoinGraph::new(s);
        let join = graph.steiner_tree(&[s.table_id("movies").unwrap()]).unwrap();
        PartialQuery {
            clauses: Slot::Filled(ClauseSet { order_by: true, ..Default::default() }),
            select: Slot::Filled(vec![
                PartialSelectItem {
                    col: Slot::Filled(SelectColumn::Column(s.column_id("movies", "name").unwrap())),
                    agg: Slot::Filled(None),
                },
                PartialSelectItem {
                    col: Slot::Filled(SelectColumn::Column(s.column_id("movies", "year").unwrap())),
                    agg: Slot::Filled(None),
                },
            ]),
            join: Some(join),
            order_by: Slot::Filled(Some(PartialOrder {
                key: Slot::Filled(OrderKey::Column(s.column_id("movies", "year").unwrap())),
                desc: Slot::Filled(desc),
                limit: Slot::Filled(None),
            })),
            ..PartialQuery::empty()
        }
    }

    fn two_tuples_ascending() -> TableSketchQuery {
        TableSketchQuery {
            tuples: vec![
                vec![TsqCell::text("Forrest Gump"), TsqCell::Empty],
                vec![TsqCell::text("Gravity"), TsqCell::Empty],
            ],
            sorted: true,
            ..Default::default()
        }
    }

    #[test]
    fn ascending_order_matches_ascending_examples() {
        let db = movie_db();
        assert!(verify_by_order(
            &db,
            &two_tuples_ascending(),
            &ordered_pq(&db, false),
            &RunCacheCounters::default()
        ));
        // Descending order puts Gravity before Forrest Gump, violating the TSQ.
        assert!(!verify_by_order(
            &db,
            &two_tuples_ascending(),
            &ordered_pq(&db, true),
            &RunCacheCounters::default()
        ));
    }

    #[test]
    fn missing_tuple_fails() {
        let db = movie_db();
        let tsq = TableSketchQuery {
            tuples: vec![
                vec![TsqCell::text("Forrest Gump"), TsqCell::Empty],
                vec![TsqCell::text("Titanic"), TsqCell::Empty],
            ],
            sorted: true,
            ..Default::default()
        };
        assert!(!verify_by_order(&db, &tsq, &ordered_pq(&db, false), &RunCacheCounters::default()));
    }

    #[test]
    fn range_cells_participate_in_order_check() {
        let db = movie_db();
        let tsq = TableSketchQuery {
            tuples: vec![
                vec![TsqCell::Empty, TsqCell::range(1990, 1995)],
                vec![TsqCell::Empty, TsqCell::range(2010, 2017)],
            ],
            sorted: true,
            ..Default::default()
        };
        assert!(verify_by_order(&db, &tsq, &ordered_pq(&db, false), &RunCacheCounters::default()));
        assert!(!verify_by_order(&db, &tsq, &ordered_pq(&db, true), &RunCacheCounters::default()));
    }

    #[test]
    fn limit_violation_fails() {
        let db = movie_db();
        let tsq = TableSketchQuery {
            tuples: vec![vec![TsqCell::text("Forrest Gump"), TsqCell::Empty]],
            sorted: true,
            limit: 1,
            ..Default::default()
        };
        // Query returns 3 rows > limit 1.
        assert!(!verify_by_order(&db, &tsq, &ordered_pq(&db, false), &RunCacheCounters::default()));
    }

    #[test]
    fn overlapping_tuples_find_distinct_rows() {
        // Regression test: tuple 1 (any year in 1990..2015) matches every
        // movie including Forrest Gump; tuple 2 matches *only* Forrest Gump.
        // The old greedy first-fit assigned Forrest Gump to tuple 1 and then
        // wrongly pruned the candidate; the matching must re-seat tuple 1
        // onto another row.
        let db = movie_db();
        let mut pq = ordered_pq(&db, false);
        pq.clauses = Slot::Filled(ClauseSet::default());
        pq.order_by = Slot::Hole;
        let tsq = TableSketchQuery {
            tuples: vec![
                vec![TsqCell::Empty, TsqCell::range(1990, 2015)],
                vec![TsqCell::text("Forrest Gump"), TsqCell::Empty],
            ],
            sorted: false,
            ..Default::default()
        };
        assert!(verify_complete(&db, &tsq, &pq, &RunCacheCounters::default()));
        // An unsatisfiable pair (two tuples, only one possible row) still fails.
        let tsq = TableSketchQuery {
            tuples: vec![
                vec![TsqCell::text("Forrest Gump"), TsqCell::Empty],
                vec![TsqCell::text("Forrest Gump"), TsqCell::Empty],
            ],
            sorted: false,
            ..Default::default()
        };
        assert!(!verify_complete(&db, &tsq, &pq, &RunCacheCounters::default()));
    }

    #[test]
    fn sorted_tsq_with_limit_short_circuits_execution() {
        // Regression test for the incremental-execution ROADMAP item: a
        // sorted TSQ with limit `k` must probe with a row budget of `k + 1`
        // instead of materializing the full result. The fixture table is
        // stored ascending by `id`, so the candidate's ORDER BY is satisfied
        // by the pipeline order and the streaming executor stops after two
        // rows — observable through the run's scan counters.
        let mut s = duoquest_db::Schema::new("events");
        s.add_table(duoquest_db::TableDef::new(
            "event",
            vec![duoquest_db::ColumnDef::number("id"), duoquest_db::ColumnDef::text("name")],
            Some(0),
        ));
        let mut db = Database::new(s).unwrap();
        let n = 1_000usize;
        db.insert_all(
            "event",
            (0..n).map(|i| vec![Value::int(i as i64), Value::text(format!("event {i}"))]),
        )
        .unwrap();
        db.rebuild_index();
        let schema = db.schema();
        let id = schema.column_id("event", "id").unwrap();

        // SELECT event.name, event.id FROM event ORDER BY event.id ASC —
        // 1000 rows, violating the TSQ limit of 1.
        let pq = PartialQuery {
            clauses: Slot::Filled(ClauseSet { order_by: true, ..Default::default() }),
            select: Slot::Filled(vec![
                PartialSelectItem {
                    col: Slot::Filled(SelectColumn::Column(
                        schema.column_id("event", "name").unwrap(),
                    )),
                    agg: Slot::Filled(None),
                },
                PartialSelectItem {
                    col: Slot::Filled(SelectColumn::Column(id)),
                    agg: Slot::Filled(None),
                },
            ]),
            join: Some(JoinGraph::new(schema).steiner_tree(&[id.table]).unwrap()),
            order_by: Slot::Filled(Some(PartialOrder {
                key: Slot::Filled(OrderKey::Column(id)),
                desc: Slot::Filled(false),
                limit: Slot::Filled(None),
            })),
            ..PartialQuery::empty()
        };
        let tsq = TableSketchQuery {
            tuples: vec![vec![TsqCell::text("event 0"), TsqCell::Empty]],
            sorted: true,
            limit: 1,
            ..Default::default()
        };
        let counters = RunCacheCounters::default();
        assert!(
            !verify_by_order(&db, &tsq, &pq, &counters),
            "a 1000-row result must violate the TSQ limit of 1"
        );
        let (scanned, short_circuited) = counters.scan_snapshot();
        assert!(
            scanned < (n / 10) as u64,
            "the limit check must not materialize the result: scanned {scanned} of {n} rows"
        );
        assert_eq!(
            short_circuited,
            n as u64 - scanned,
            "the saved scan must be attributed to the short-circuit counter"
        );
    }

    #[test]
    fn incomplete_query_fails_safe() {
        let db = movie_db();
        let tsq = two_tuples_ascending();
        let mut pq = ordered_pq(&db, false);
        pq.order_by = Slot::Filled(Some(PartialOrder {
            key: Slot::Hole,
            desc: Slot::Hole,
            limit: Slot::Hole,
        }));
        assert!(!verify_by_order(&db, &tsq, &pq, &RunCacheCounters::default()));
        let _ = Value::int(0);
    }
}
