//! Configuration of the GPQE enumeration.

use std::time::Duration;

/// Tunable parameters of the Duoquest engine.
///
/// The flags `guided`, `prune_partial` and `semantic_rules` exist so the
/// ablations of the paper's §5.4.3 (NoGuide, NoPQ) and the NLI baseline can be
/// expressed as configurations of the same engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DuoquestConfig {
    /// Maximum number of states popped from the priority queue before giving up.
    pub max_expansions: usize,
    /// Maximum number of states kept in the priority queue (lowest-confidence
    /// states are evicted beyond this).
    pub max_states: usize,
    /// Stop after this many candidate queries have been emitted.
    pub max_candidates: usize,
    /// Wall-clock budget for one synthesis call (the paper uses 60 s per task).
    pub time_budget: Option<Duration>,
    /// Maximum number of projected columns considered by the COL module.
    pub max_select_columns: usize,
    /// Maximum number of WHERE predicates.
    pub max_where_predicates: usize,
    /// Maximum number of GROUP BY columns.
    pub max_group_columns: usize,
    /// Maximum recursion depth of the FK-extension step of progressive join
    /// path construction (Algorithm 2 lines 10–12).
    pub join_extension_depth: usize,
    /// Whether enumeration is guided by the model's confidence scores
    /// (disable for the NoGuide ablation).
    pub guided: bool,
    /// Whether partial queries are verified against the TSQ during enumeration
    /// (disable for the NoPQ ablation, which verifies only complete queries).
    pub prune_partial: bool,
    /// Whether the semantic pruning rules of Table 4 are applied.
    pub semantic_rules: bool,
}

impl Default for DuoquestConfig {
    fn default() -> Self {
        DuoquestConfig {
            max_expansions: 20_000,
            max_states: 100_000,
            max_candidates: 100,
            time_budget: Some(Duration::from_secs(60)),
            max_select_columns: 3,
            max_where_predicates: 2,
            max_group_columns: 2,
            join_extension_depth: 1,
            guided: true,
            prune_partial: true,
            semantic_rules: true,
        }
    }
}

impl DuoquestConfig {
    /// A configuration suited for unit tests and examples: small budgets, fast.
    pub fn fast() -> Self {
        DuoquestConfig {
            max_expansions: 4_000,
            max_states: 20_000,
            max_candidates: 50,
            time_budget: Some(Duration::from_secs(5)),
            ..Default::default()
        }
    }

    /// The NoGuide ablation: breadth-first enumeration (uniform scores) with
    /// partial query pruning still enabled (paper §5.4.3).
    pub fn no_guide(mut self) -> Self {
        self.guided = false;
        self
    }

    /// The NoPQ ablation: guided enumeration but verification only on complete
    /// queries — equivalent to naively chaining an NLI with a PBE verifier
    /// (paper §3.5 and §5.4.3).
    pub fn no_partial_pruning(mut self) -> Self {
        self.prune_partial = false;
        self
    }

    /// Plain NLI behaviour: no TSQ-independent semantic pruning either.
    pub fn without_semantic_rules(mut self) -> Self {
        self.semantic_rules = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_guided_and_pruning() {
        let c = DuoquestConfig::default();
        assert!(c.guided);
        assert!(c.prune_partial);
        assert!(c.semantic_rules);
        assert_eq!(c.max_select_columns, 3);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!DuoquestConfig::default().no_guide().guided);
        assert!(!DuoquestConfig::default().no_partial_pruning().prune_partial);
        assert!(!DuoquestConfig::default().without_semantic_rules().semantic_rules);
        assert!(DuoquestConfig::fast().max_expansions < DuoquestConfig::default().max_expansions);
    }
}
