//! Configuration of the GPQE enumeration.

use std::time::Duration;

/// When a surviving complete query is handed to the consumer.
///
/// Both policies emit the **identical candidate sequence** (same set, same
/// order — equal-score ties pinned by child order); they differ only in when
/// within a round an emission is delivered. See `docs/DRIVER.md` for the
/// any-k frontier contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmissionPolicy {
    /// Emissions are delivered during the round's phase-3 merge, after every
    /// verification chunk of the round has completed. The historical — and
    /// byte-identical — default.
    #[default]
    RoundBarrier,
    /// Any-k frontier emission: a candidate is delivered the moment its
    /// confidence provably dominates every unexpanded state (the frontier
    /// heap's top, every not-yet-merged job of the in-flight round, and the
    /// current chunk's still-unpushed survivors) — typically mid-round, as
    /// soon as the contiguous chunk prefix containing it completes. The
    /// emitted sequence is exactly the `RoundBarrier` sequence; only the
    /// delivery time moves earlier.
    AnyK,
}

/// Tunable parameters of the Duoquest engine.
///
/// The flags `guided`, `prune_partial` and `semantic_rules` exist so the
/// ablations of the paper's §5.4.3 (NoGuide, NoPQ) and the NLI baseline can be
/// expressed as configurations of the same engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DuoquestConfig {
    /// Maximum number of states popped from the priority queue before giving up.
    pub max_expansions: usize,
    /// Maximum number of states kept in the priority queue (lowest-confidence
    /// states are evicted beyond this).
    pub max_states: usize,
    /// Stop after this many candidate queries have been emitted.
    pub max_candidates: usize,
    /// Wall-clock budget for one synthesis call (the paper uses 60 s per task).
    pub time_budget: Option<Duration>,
    /// Maximum number of projected columns considered by the COL module.
    pub max_select_columns: usize,
    /// Maximum number of WHERE predicates.
    pub max_where_predicates: usize,
    /// Maximum number of GROUP BY columns.
    pub max_group_columns: usize,
    /// Maximum recursion depth of the FK-extension step of progressive join
    /// path construction (Algorithm 2 lines 10–12).
    pub join_extension_depth: usize,
    /// Whether enumeration is guided by the model's confidence scores
    /// (disable for the NoGuide ablation).
    pub guided: bool,
    /// Whether partial queries are verified against the TSQ during enumeration
    /// (disable for the NoPQ ablation, which verifies only complete queries).
    pub prune_partial: bool,
    /// Whether the semantic pruning rules of Table 4 are applied.
    pub semantic_rules: bool,
    /// Number of top-confidence states popped per synthesis round. `1`
    /// reproduces the strictly best-first exploration order of paper
    /// Algorithm 1; larger beams expose more child-expansion work per round
    /// to the worker pool (still deterministic for a fixed value).
    pub beam_width: usize,
    /// Worker threads for child expansion + verification. `1` is fully
    /// sequential; `0` means one worker per available CPU. Absent a
    /// `time_budget`, the candidate set is independent of this value —
    /// workers change wall-clock, not results. (A wall-clock budget is the
    /// one intentionally non-deterministic cut-off: which children are
    /// verified before the deadline depends on machine speed, and under a
    /// pool also on chunking.)
    pub workers: usize,
    /// When emissions are delivered to the consumer (see [`EmissionPolicy`]).
    /// `RoundBarrier` is the byte-identical default; `AnyK` delivers the same
    /// sequence earlier (mid-round) and is what interactive requests opt
    /// into for time-to-first-candidate.
    pub emission: EmissionPolicy,
}

impl Default for DuoquestConfig {
    fn default() -> Self {
        DuoquestConfig {
            max_expansions: 20_000,
            max_states: 100_000,
            max_candidates: 100,
            time_budget: Some(Duration::from_secs(60)),
            max_select_columns: 3,
            max_where_predicates: 2,
            max_group_columns: 2,
            join_extension_depth: 1,
            guided: true,
            prune_partial: true,
            semantic_rules: true,
            beam_width: 1,
            workers: 1,
            emission: EmissionPolicy::RoundBarrier,
        }
    }
}

impl DuoquestConfig {
    /// A configuration suited for unit tests and examples: small budgets, fast.
    pub fn fast() -> Self {
        DuoquestConfig {
            max_expansions: 4_000,
            max_states: 20_000,
            max_candidates: 50,
            time_budget: Some(Duration::from_secs(5)),
            ..Default::default()
        }
    }

    /// The NoGuide ablation: breadth-first enumeration (uniform scores) with
    /// partial query pruning still enabled (paper §5.4.3).
    pub fn no_guide(mut self) -> Self {
        self.guided = false;
        self
    }

    /// The NoPQ ablation: guided enumeration but verification only on complete
    /// queries — equivalent to naively chaining an NLI with a PBE verifier
    /// (paper §3.5 and §5.4.3).
    pub fn no_partial_pruning(mut self) -> Self {
        self.prune_partial = false;
        self
    }

    /// Plain NLI behaviour: no TSQ-independent semantic pruning either.
    pub fn without_semantic_rules(mut self) -> Self {
        self.semantic_rules = false;
        self
    }

    /// Enable the parallel synthesis core: a beam of `beam_width` states per
    /// round fanned out across `workers` threads (`workers = 0` sizes the
    /// pool to the machine).
    pub fn with_parallelism(mut self, workers: usize, beam_width: usize) -> Self {
        self.workers = workers;
        self.beam_width = beam_width.max(1);
        self
    }

    /// Opt into any-k frontier emission (see [`EmissionPolicy::AnyK`]).
    pub fn with_emission_policy(mut self, emission: EmissionPolicy) -> Self {
        self.emission = emission;
        self
    }

    /// Worker-pool size after resolving `workers = 0` to the machine size.
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_guided_and_pruning() {
        let c = DuoquestConfig::default();
        assert!(c.guided);
        assert!(c.prune_partial);
        assert!(c.semantic_rules);
        assert_eq!(c.max_select_columns, 3);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!DuoquestConfig::default().no_guide().guided);
        assert!(!DuoquestConfig::default().no_partial_pruning().prune_partial);
        assert!(!DuoquestConfig::default().without_semantic_rules().semantic_rules);
        assert!(DuoquestConfig::fast().max_expansions < DuoquestConfig::default().max_expansions);
    }

    #[test]
    fn parallelism_configuration() {
        let c = DuoquestConfig::default();
        assert_eq!(c.beam_width, 1);
        assert_eq!(c.workers, 1);
        assert_eq!(c.effective_workers(), 1);
        let p = c.with_parallelism(4, 8);
        assert_eq!(p.effective_workers(), 4);
        assert_eq!(p.beam_width, 8);
        let auto = DuoquestConfig::default().with_parallelism(0, 0);
        assert!(auto.effective_workers() >= 1);
        assert_eq!(auto.beam_width, 1);
    }
}
