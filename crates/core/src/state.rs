//! Enumeration states: a partial query plus its confidence score.

use duoquest_sql::PartialQuery;
use std::cmp::Ordering;

/// One state of the GPQE search: a partial query, its confidence score (the
/// cumulative product of the per-decision scores, paper §3.3.3) and the number
/// of decisions taken so far.
#[derive(Debug, Clone)]
pub struct EnumState {
    /// The partial query.
    pub pq: PartialQuery,
    /// Cumulative confidence in `(0, 1]`.
    pub confidence: f64,
    /// Number of inference decisions made so far.
    pub decisions: usize,
    /// Monotone sequence number used as the final tie-breaker so the heap order
    /// is fully deterministic.
    pub sequence: u64,
}

impl EnumState {
    /// The root state: the empty partial query with confidence 1.
    pub fn root() -> Self {
        EnumState { pq: PartialQuery::empty(), confidence: 1.0, decisions: 0, sequence: 0 }
    }

    /// Join length of the attached join path (0 when no join path yet); used as
    /// the secondary ordering criterion (shorter join paths first, §3.3.4).
    pub fn join_length(&self) -> usize {
        self.pq.join.as_ref().map(|j| j.join_length()).unwrap_or(0)
    }
}

impl PartialEq for EnumState {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for EnumState {}

impl PartialOrd for EnumState {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EnumState {
    /// Max-heap ordering: higher confidence first, then shorter join paths,
    /// then earlier creation (lower sequence number).
    fn cmp(&self, other: &Self) -> Ordering {
        self.confidence
            .partial_cmp(&other.confidence)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.join_length().cmp(&self.join_length()))
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn state(confidence: f64, sequence: u64) -> EnumState {
        EnumState { pq: PartialQuery::empty(), confidence, decisions: 0, sequence }
    }

    #[test]
    fn heap_pops_highest_confidence_first() {
        let mut heap = BinaryHeap::new();
        heap.push(state(0.2, 1));
        heap.push(state(0.7, 2));
        heap.push(state(0.35, 3));
        assert!((heap.pop().unwrap().confidence - 0.7).abs() < 1e-12);
        assert!((heap.pop().unwrap().confidence - 0.35).abs() < 1e-12);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut heap = BinaryHeap::new();
        heap.push(state(0.5, 10));
        heap.push(state(0.5, 2));
        assert_eq!(heap.pop().unwrap().sequence, 2);
    }

    #[test]
    fn root_state() {
        let r = EnumState::root();
        assert_eq!(r.confidence, 1.0);
        assert_eq!(r.decisions, 0);
        assert_eq!(r.join_length(), 0);
        assert!(!r.pq.is_complete());
    }
}
