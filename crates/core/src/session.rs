//! Streaming synthesis sessions over a shared database.
//!
//! [`SynthesisSession`] is the owned, `Arc`-based entry point to the parallel
//! synthesis core: it holds a cheaply shareable [`Database`], the dual
//! specification (NLQ + optional TSQ), a guidance model and a
//! [`DuoquestConfig`], and runs the round-based engine of
//! [`crate::enumerate`]. Three consumption styles are supported:
//!
//! * [`SynthesisSession::run`] — block until the run finishes, get the ranked
//!   [`SynthesisResult`];
//! * [`SynthesisSession::run_with`] — block, but observe each candidate as it
//!   is emitted (and optionally stop early);
//! * [`SynthesisSession::stream`] — hand the session to a scheduler pool to
//!   be **driven without any per-session thread** and consume candidates
//!   through a channel-backed iterator while enumeration is still in flight.
//!   The first candidate is available as soon as it survives verification,
//!   long before the run completes — this is what the paper's interactive
//!   front end needs for its "results appear as they are found" interface.
//! * [`SynthesisSession::spawn_driven`] — the primitive under `stream` and
//!   the service layer: register the session with a
//!   [`SessionScheduler`] whose workers resume its
//!   round-loop state machine as chunks complete, delivering candidates and
//!   the final result through callbacks. No OS thread exists per session.
//!
//! Absent a wall-clock `time_budget`, the emitted candidate set and order
//! depend only on the configuration (beam width, budgets), never on the
//! worker count; a time budget is the one intentionally non-deterministic
//! cut-off. See the determinism notes in `crate::enumerate`.

use crate::clock::{system_clock, SharedClock};
use crate::config::{DuoquestConfig, EmissionPolicy};
use crate::engine::{collect_ranked, run_collect, Candidate, SynthesisResult};
use crate::scheduler::{
    run_rounds_scheduled, spawn_driven_session, DrivenOutcome, SchedulerHandle, SessionScheduler,
};
use crate::tsq::TableSketchQuery;
use duoquest_db::Database;
use duoquest_nlq::{GuidanceModel, Nlq};
use duoquest_obs::Trace;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative controls for one synthesis run: a shared **cancellation
/// token** plus an optional absolute **deadline**.
///
/// The engine checks both at every round boundary and inside verification
/// chunks (between jobs), so a cancellation or a deadline takes effect
/// mid-round without waiting for the current fan-out to drain. On a shared
/// [`SessionScheduler`] pool the token additionally **reaps** the session's
/// queued (session, round-chunk) units: cancelled units are dropped before a
/// worker ever pops them (see [`SchedulerHandle::reap_cancelled`]).
///
/// Cloning shares the token: hand one clone to the consumer (to cancel) and
/// attach another to the session with
/// [`SynthesisSession::with_control`]. A run that completes without the token
/// firing is byte-identical to a run without any control attached.
///
/// The deadline is an absolute [`Instant`], so a serving layer can anchor it
/// at *submit* time — queue wait counts against the budget. A run cut by the
/// deadline keeps everything emitted so far and sets
/// [`EnumerationStats::deadline_exceeded`](crate::EnumerationStats::deadline_exceeded);
/// a cancelled run sets
/// [`EnumerationStats::cancelled`](crate::EnumerationStats::cancelled).
#[derive(Clone, Debug, Default)]
pub struct SessionControl {
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl SessionControl {
    /// A fresh control: not cancelled, no deadline.
    pub fn new() -> Self {
        SessionControl::default()
    }

    /// Set an absolute deadline. The run stops enumerating once the deadline
    /// passes and returns the best candidates found so far.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Fire the cancellation token. Idempotent; takes effect at the engine's
    /// next cooperative check (round boundary or between chunk jobs).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Owned handle on the token, for contexts that outlive this borrow.
    pub(crate) fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancelled)
    }

    /// Borrowed view of the token, for round-scoped environments.
    pub(crate) fn flag_ref(&self) -> &AtomicBool {
        &self.cancelled
    }
}

/// An owned synthesis task: shared database + dual specification + model +
/// configuration. Create one per user query; clone the `Arc`s, not the data.
///
/// # Example
///
/// Synthesize over a tiny in-memory database:
///
/// ```
/// use duoquest_core::{DuoquestConfig, SynthesisSession};
/// use duoquest_db::{ColumnDef, Database, Schema, TableDef, Value};
/// use duoquest_nlq::{HeuristicGuidance, Literal, Nlq};
/// use std::sync::Arc;
///
/// let mut schema = Schema::new("demo");
/// schema.add_table(TableDef::new(
///     "movies",
///     vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
///     Some(0),
/// ));
/// let mut db = Database::new(schema).unwrap();
/// db.insert("movies", vec![Value::int(1), Value::text("Heat"), Value::int(1995)]).unwrap();
/// db.insert("movies", vec![Value::int(2), Value::text("Up"), Value::int(2009)]).unwrap();
/// db.rebuild_index();
///
/// let nlq = Nlq::with_literals("movie names before 2000", vec![Literal::number(2000.0)]);
/// let session = SynthesisSession::new(
///     db.into_shared(),
///     nlq,
///     Arc::new(HeuristicGuidance::new()),
/// )
/// .with_config(DuoquestConfig::fast());
/// let result = session.run();
/// assert!(!result.candidates.is_empty());
/// ```
pub struct SynthesisSession {
    db: Arc<Database>,
    nlq: Nlq,
    tsq: Option<TableSketchQuery>,
    model: Arc<dyn GuidanceModel>,
    config: DuoquestConfig,
    scheduler: Option<SchedulerHandle>,
    control: SessionControl,
    priority_weight: usize,
    clock: SharedClock,
    trace: Option<Arc<Trace>>,
}

impl SynthesisSession {
    /// Create a session with the default configuration and no TSQ.
    ///
    /// This is the compatibility constructor: without an attached
    /// [`SessionScheduler`] handle, a parallel run
    /// (`config.workers > 1`) spins up a **private** pool for just this run,
    /// reproducing the pre-scheduler one-pool-per-session behaviour. To serve
    /// many sessions from one pool, attach a shared handle with
    /// [`SynthesisSession::with_scheduler`].
    pub fn new(db: Arc<Database>, nlq: Nlq, model: Arc<dyn GuidanceModel>) -> Self {
        SynthesisSession {
            db,
            nlq,
            tsq: None,
            model,
            config: DuoquestConfig::default(),
            scheduler: None,
            control: SessionControl::new(),
            priority_weight: 1,
            clock: system_clock(),
            trace: None,
        }
    }

    /// Attach a table sketch query (the second half of the dual specification).
    pub fn with_tsq(mut self, tsq: TableSketchQuery) -> Self {
        self.tsq = Some(tsq);
        self
    }

    /// Replace the configuration.
    pub fn with_config(mut self, config: DuoquestConfig) -> Self {
        self.config = config;
        self
    }

    /// Choose when this session releases ranked candidates:
    /// [`EmissionPolicy::RoundBarrier`] (the default) holds each round's
    /// emissions until the round's ordered merge completes;
    /// [`EmissionPolicy::AnyK`] releases a candidate the moment its
    /// confidence provably dominates every unexpanded state. Both policies
    /// produce the identical candidate set in the identical order — any-k
    /// only moves *when* each one leaves the engine.
    pub fn with_emission_policy(mut self, emission: EmissionPolicy) -> Self {
        self.config.emission = emission;
        self
    }

    /// Submit this session's verification work to a shared
    /// [`SessionScheduler`] pool instead of a private one. The pool's worker
    /// count (not `config.workers`) decides the parallelism; the emitted
    /// candidate sequence is identical either way.
    pub fn with_scheduler(mut self, handle: SchedulerHandle) -> Self {
        self.scheduler = Some(handle);
        self
    }

    /// Attach an externally owned [`SessionControl`] so a consumer can cancel
    /// the run (or impose an absolute deadline) while it is in flight. By
    /// default every session carries a private control nobody else holds.
    pub fn with_control(mut self, control: SessionControl) -> Self {
        self.control = control;
        self
    }

    /// Scheduling priority on a shared pool: the session's share of the
    /// fairness queue's weighted round-robin is `beam_width × weight`
    /// (minimum 1), so an interactive session with weight 16 is granted 16×
    /// the units per rotation of a background session with weight 1. Has no
    /// effect on a private pool (nothing to compete with) and never changes
    /// which candidates are emitted — only when.
    pub fn with_priority_weight(mut self, weight: usize) -> Self {
        self.priority_weight = weight.max(1);
        self
    }

    /// Replace the session's time source. Deadline checks, emission
    /// timestamps and stage timings of runs driven by this session (inline,
    /// or on a private pool the session spins up itself) read this clock —
    /// the deterministic simulation harness passes a
    /// [`SimClock`](crate::SimClock). Runs submitted to a shared scheduler
    /// via [`SynthesisSession::with_scheduler`] or
    /// [`SynthesisSession::spawn_driven`] use the **pool's** clock instead,
    /// so every session multiplexed on one pool observes one time source.
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.clock = clock;
        self
    }

    /// Attach a request [`Trace`]: the engine then records round, chunk and
    /// per-stage verify spans into it as the run progresses. Tracing rides
    /// entirely outside the emission path — the candidate sequence of a
    /// traced run is byte-identical to an untraced one. Without this call the
    /// engine's tracing branches are all `false` and cost one predictable
    /// branch per chunk.
    pub fn with_trace(mut self, trace: Arc<Trace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The session's configuration.
    pub fn config(&self) -> &DuoquestConfig {
        &self.config
    }

    /// The session's cooperative run control.
    pub fn control(&self) -> &SessionControl {
        &self.control
    }

    /// The session's scheduling priority multiplier (see
    /// [`SynthesisSession::with_priority_weight`]).
    pub fn priority_weight(&self) -> usize {
        self.priority_weight
    }

    /// The shared database the session probes.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The shared-pool handle this session submits to, if one is attached.
    pub fn scheduler(&self) -> Option<&SchedulerHandle> {
        self.scheduler.as_ref()
    }

    /// Run to completion and return the ranked candidates.
    pub fn run(&self) -> SynthesisResult {
        self.run_with(|_| true)
    }

    /// Run to completion, observing candidates in emission order. Returning
    /// `false` from the callback stops the enumeration early (the paper's
    /// front end does exactly this when the user clicks "Stop Task").
    pub fn run_with<F>(&self, on_candidate: F) -> SynthesisResult
    where
        F: FnMut(&Candidate) -> bool,
    {
        match &self.scheduler {
            Some(handle) => self.run_on(handle, on_candidate),
            // Compatibility: no shared pool attached. A parallel config gets a
            // private pool scoped to this run (the pre-scheduler behaviour);
            // a sequential config runs inline with no pool at all.
            None if self.config.effective_workers() > 1 => {
                let pool = SessionScheduler::new_with_clock(
                    self.config.effective_workers(),
                    Arc::clone(&self.clock),
                );
                self.run_on(&pool.handle(), on_candidate)
            }
            None => run_collect(
                &self.db,
                &self.nlq,
                self.model.as_ref(),
                self.tsq.as_ref(),
                &self.config,
                &self.control,
                self.clock.as_ref(),
                self.trace.clone(),
                on_candidate,
            ),
        }
    }

    /// Drive the round loop on this thread, dispatching verification chunks
    /// to `handle`'s pool.
    fn run_on<F>(&self, handle: &SchedulerHandle, on_candidate: F) -> SynthesisResult
    where
        F: FnMut(&Candidate) -> bool,
    {
        collect_ranked(on_candidate, |cb| {
            run_rounds_scheduled(
                handle,
                &self.db,
                &self.nlq,
                self.model.as_ref(),
                self.tsq.as_ref(),
                &self.config,
                &self.control,
                self.priority_weight,
                self.trace.clone(),
                cb,
            )
        })
    }

    /// Hand the session to a scheduler pool to be **driven entirely by pool
    /// workers** — no per-session OS thread is created. The pool resumes the
    /// session's round-loop state machine as its verification chunks
    /// complete; `on_candidate` observes each candidate in emission order
    /// (return `false` to stop the run early) and `on_complete` receives the
    /// session's [`DrivenOutcome`] — the final ranked result, or
    /// [`DrivenOutcome::Poisoned`] (carrying the panic message when one could
    /// be extracted) if the session panicked (a guidance model or verifier
    /// bug), which poisons that session alone.
    ///
    /// Both callbacks run on pool worker threads, so they must be `Send` and
    /// should stay cheap (push to a channel, update counters). One exception:
    /// if the pool has already shut down when `spawn_driven` is called, the
    /// session is resolved immediately as cancelled and `on_complete` runs
    /// synchronously on the **calling** thread — don't hold a lock (or block
    /// on a response the calling thread must produce) across this call from
    /// inside `on_complete`. This is the primitive under
    /// [`SynthesisSession::stream`] and the serving layer's request
    /// lifecycle; capacity for driven sessions is bounded by memory, not
    /// thread count. Any scheduler handle attached via
    /// [`SynthesisSession::with_scheduler`] is ignored in favour of `handle`.
    pub fn spawn_driven(
        self,
        handle: &SchedulerHandle,
        on_candidate: Box<dyn FnMut(&Candidate) -> bool + Send>,
        on_complete: Box<dyn FnOnce(DrivenOutcome) + Send>,
    ) {
        spawn_driven_session(
            handle,
            self.db,
            self.nlq,
            self.tsq,
            self.model,
            self.config,
            self.control,
            self.priority_weight,
            self.trace,
            on_candidate,
            on_complete,
        );
    }

    /// Stream candidates as they survive verification, **without spawning a
    /// per-session thread**: the session is handed to its attached
    /// [`SessionScheduler`] (or, absent one, to a private pool owned by the
    /// stream, sized per `config.workers`) and driven by pool workers.
    /// Dropping the stream (or calling [`CandidateStream::stop`])
    /// **cancels** the session — the engine stops at its next cooperative
    /// check and any (session, round-chunk) units still queued on the pool
    /// are reaped before a worker pops them — so an abandoned consumer never
    /// leaks enumeration work. Call [`CandidateStream::finish`] for the
    /// final ranked result.
    pub fn stream(self) -> CandidateStream {
        let control = self.control.clone();
        let (handle, pool) = match self.scheduler.clone() {
            Some(handle) => (handle, None),
            None => {
                // Compatibility: no shared pool attached — the stream owns a
                // private pool for just this run (the session-scoped analogue
                // of `run_with`'s private-pool fallback).
                let pool = SessionScheduler::new_with_clock(
                    self.config.effective_workers(),
                    Arc::clone(&self.clock),
                );
                (pool.handle(), Some(pool))
            }
        };
        let stop_control = self.control.clone();
        let (cand_tx, cand_rx) = mpsc::channel();
        let (result_tx, result_rx) = mpsc::channel();
        self.spawn_driven(
            &handle,
            Box::new(move |candidate: &Candidate| {
                if stop_control.is_cancelled() {
                    return false;
                }
                // A dropped receiver reads as "stop": the send fails and
                // the engine winds down.
                cand_tx.send(candidate.clone()).is_ok()
            }),
            Box::new(move |outcome| {
                let _ = result_tx.send(outcome);
            }),
        );
        CandidateStream {
            rx: cand_rx,
            result: result_rx,
            received: RefCell::new(None),
            poisoned: Cell::new(false),
            control,
            scheduler: Some(handle),
            _pool: pool,
        }
    }
}

/// A live candidate stream backed by a **scheduler-driven session** — pool
/// workers resume the session's round loop as chunks complete; no OS thread
/// exists for the session itself.
///
/// Iterate to receive candidates in emission order while the enumeration is
/// still running; call [`CandidateStream::finish`] for the final,
/// confidence-ranked [`SynthesisResult`] (which includes the run's
/// [`crate::EnumerationStats`]).
///
/// **Dropping the stream cancels the work**: the session's
/// [`SessionControl`] token fires and its queued round-chunk units are
/// reaped from the pool's fairness queue before any worker pops them. The
/// pool therefore goes idle instead of grinding through enumeration nobody
/// is consuming.
pub struct CandidateStream {
    rx: Receiver<Candidate>,
    result: Receiver<DrivenOutcome>,
    received: RefCell<Option<SynthesisResult>>,
    poisoned: Cell<bool>,
    control: SessionControl,
    scheduler: Option<SchedulerHandle>,
    /// The private pool driving a session that had no shared scheduler
    /// attached, kept alive for the stream's lifetime (`None` when the
    /// session rides a shared pool).
    _pool: Option<SessionScheduler>,
}

impl CandidateStream {
    /// Ask the session to stop: fires its cancellation token and reaps its
    /// queued units from the pool. Idempotent.
    pub fn stop(&self) {
        self.control.cancel();
        if let Some(handle) = &self.scheduler {
            handle.reap_cancelled();
        }
    }

    /// Non-blockingly pull the completion, if it has arrived.
    fn poll_result(&self) {
        if self.received.borrow().is_some() || self.poisoned.get() {
            return;
        }
        match self.result.try_recv() {
            Ok(DrivenOutcome::Finished(result)) => *self.received.borrow_mut() = Some(result),
            // `Poisoned` = the session panicked; a disconnect without a value
            // can only follow a teardown race — both poison the stream.
            Ok(DrivenOutcome::Poisoned(_)) | Err(TryRecvError::Disconnected) => {
                self.poisoned.set(true)
            }
            Err(TryRecvError::Empty) => {}
        }
    }

    /// Whether the enumeration has finished.
    pub fn is_finished(&self) -> bool {
        self.poll_result();
        self.received.borrow().is_some() || self.poisoned.get()
    }

    /// Receive the next candidate, waiting up to `timeout`. `None` on timeout
    /// or when the stream has ended.
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<Candidate> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Wait for the session to complete and return the final ranked result.
    /// Any undrained candidates are still reflected in the result's list.
    ///
    /// # Panics
    ///
    /// Panics if the session itself panicked (a guidance-model or verifier
    /// bug) — the driven-session analogue of joining a panicked thread.
    pub fn finish(self) -> SynthesisResult {
        self.poll_result();
        if let Some(result) = self.received.borrow_mut().take() {
            return result;
        }
        if !self.poisoned.get() {
            if let Ok(DrivenOutcome::Finished(result)) = self.result.recv() {
                return result;
            }
        }
        panic!("synthesis session panicked");
    }
}

impl Drop for CandidateStream {
    /// Dropping the stream cancels the session (see the struct docs). A
    /// session on a shared pool winds down on its own at its next
    /// cooperative check, so dropping does not wait for it; a stream that
    /// owns a private pool joins that pool's workers (quick, as the
    /// cancellation cuts any in-flight chunks short).
    fn drop(&mut self) {
        // After `finish` the run is already complete; firing the token then
        // is a harmless no-op.
        self.stop();
    }
}

impl Iterator for CandidateStream {
    type Item = Candidate;

    /// Blocks until the next candidate is emitted; `None` once the
    /// enumeration has completed (or was stopped).
    fn next(&mut self) -> Option<Candidate> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsq::TsqCell;
    use crate::verify::test_fixtures::movie_db;
    use duoquest_db::{CmpOp, DataType};
    use duoquest_nlq::{Literal, NoisyOracleGuidance, OracleConfig};
    use duoquest_sql::QueryBuilder;

    fn fixture() -> (Arc<Database>, Nlq, Arc<dyn GuidanceModel>, duoquest_db::SelectSpec) {
        let db = movie_db().into_shared();
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let model: Arc<dyn GuidanceModel> =
            Arc::new(NoisyOracleGuidance::with_config(gold.clone(), 3, OracleConfig::perfect()));
        (db, nlq, model, gold)
    }

    #[test]
    fn session_run_matches_engine_results() {
        let (db, nlq, model, gold) = fixture();
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![TsqCell::text("Forrest Gump")]);
        let session = SynthesisSession::new(Arc::clone(&db), nlq, model)
            .with_tsq(tsq)
            .with_config(DuoquestConfig::fast());
        let result = session.run();
        assert_eq!(result.rank_of(&gold), Some(1));
        assert!(result.stats.emitted > 0);
    }

    #[test]
    fn streaming_yields_first_candidate_before_completion() {
        let (db, nlq, model, _gold) = fixture();
        // A generous candidate budget keeps the search running well past the
        // first emission.
        let mut config = DuoquestConfig::fast();
        config.max_candidates = 200;
        config.max_expansions = 100_000;
        let session = SynthesisSession::new(db, nlq, model).with_config(config);
        let mut stream = session.stream();
        let first = stream.next_timeout(Duration::from_secs(30));
        assert!(first.is_some(), "no candidate streamed");
        // The candidate arrived while the enumeration was still running (or
        // at worst just wound down); the final result must contain strictly
        // more candidates than the one we consumed, proving emission happened
        // incrementally rather than at completion.
        let result = stream.finish();
        assert!(
            result.candidates.len() > 1,
            "stream should keep producing after the first candidate"
        );
        // Emission counts duplicates later folded by canonical dedup.
        assert!(result.stats.emitted >= result.candidates.len());
    }

    #[test]
    fn dropping_the_stream_stops_the_session() {
        let (db, nlq, model, _gold) = fixture();
        let mut config = DuoquestConfig::fast();
        config.max_candidates = 10_000;
        config.max_expansions = 1_000_000;
        config.time_budget = Some(Duration::from_secs(60));
        let session = SynthesisSession::new(db, nlq, model).with_config(config);
        let mut stream = session.stream();
        let _ = stream.next();
        stream.stop();
        let result = stream.finish();
        // Stopping early: far fewer candidates than the budget allows.
        assert!(result.candidates.len() < 10_000);
    }

    #[test]
    fn parallel_session_streams_same_set_as_sequential_run() {
        let (db, nlq, model, _gold) = fixture();
        let mut config = DuoquestConfig::fast();
        config.time_budget = None;
        config.max_candidates = 30;
        let sequential = SynthesisSession::new(Arc::clone(&db), nlq.clone(), Arc::clone(&model))
            .with_config(config.clone())
            .run();
        let parallel = SynthesisSession::new(db, nlq, model)
            .with_config(config.with_parallelism(4, 1))
            .stream()
            .finish();
        let render = |r: &SynthesisResult| {
            r.candidates.iter().map(|c| (format!("{:?}", c.spec), c.confidence)).collect::<Vec<_>>()
        };
        assert_eq!(render(&sequential), render(&parallel));
    }
}
