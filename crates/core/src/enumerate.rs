//! Guided partial query enumeration (GPQE, paper Algorithm 1), restructured
//! as a round-based engine with a parallel verification fan-out.
//!
//! The enumerator maintains a priority queue of [`EnumState`]s ordered by
//! confidence (the product of per-decision scores, paper §3.3.3). Each
//! **round** pops a beam of the `config.beam_width` highest-confidence states,
//! produces their candidate children (`enum_next_step`, following the module
//! order of Table 3), and fans the expensive part — progressive join path
//! construction plus the ascending-cost verification cascade — out across
//! `config.workers` threads. Survivors are merged back into the queue and
//! complete queries are emitted **in the original child order**, so for a
//! fixed configuration the emitted candidate sequence is deterministic and,
//! with `beam_width = 1`, bit-identical to the sequential Algorithm 1
//! exploration regardless of the worker count. The one exception is a
//! wall-clock `time_budget`: where the deadline cuts the search depends on
//! machine speed (and, under a pool, chunking), so budget-limited runs can
//! differ across worker counts.
//!
//! Verification probes run through the database's probe/result memo cache
//! (`Database::execute_cached`); the per-run hit/miss counters and the
//! per-stage cascade timings are surfaced in [`EnumerationStats`].

use crate::clock::{Clock, SYSTEM_CLOCK};
use crate::config::{DuoquestConfig, EmissionPolicy};
use crate::joinpath::construct_join_paths;
use crate::session::SessionControl;
use crate::state::EnumState;
use crate::tsq::TableSketchQuery;
use crate::verify::{StageTimings, Verifier, VerifyOutcome, VerifyStage};
use duoquest_db::{
    AggFunc, CmpOp, DataType, Database, JoinGraph, LogicalOp, OrderKey, SelectSpec, Value,
};
use duoquest_nlq::{
    Choice, GuidanceContext, GuidanceModel, HavingChoice, LiteralKind, Nlq, OrderChoice,
};
use duoquest_obs::{RawSpan, Trace};
use duoquest_sql::{
    ClauseSet, PartialHaving, PartialOrder, PartialPredicate, PartialQuery, PartialSelectItem,
    SelectColumn, Slot,
};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters describing one enumeration run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnumerationStats {
    /// States popped from the priority queue.
    pub expanded: usize,
    /// Child states generated (before verification).
    pub generated: usize,
    /// Child states pruned per verification stage.
    pub pruned_clauses: usize,
    /// Pruned by the semantic rules.
    pub pruned_semantics: usize,
    /// Pruned by projected-type checks.
    pub pruned_types: usize,
    /// Pruned by column-wise probes.
    pub pruned_by_column: usize,
    /// Pruned by row-wise probes.
    pub pruned_by_row: usize,
    /// Complete queries rejected by the literal-usage check.
    pub pruned_literals: usize,
    /// Complete queries rejected by the order check.
    pub pruned_by_order: usize,
    /// Candidate queries emitted.
    pub emitted: usize,
    /// Synthesis rounds executed (beam pops).
    pub rounds: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Whether the search space was exhausted before hitting any budget.
    pub exhausted: bool,
    /// The run was stopped by its [`crate::SessionControl`] cancellation
    /// token (a dropped consumer, an explicit cancel, or service shutdown).
    pub cancelled: bool,
    /// The run hit a wall-clock deadline — the configuration's `time_budget`
    /// or an external [`crate::SessionControl`] deadline — and returned the
    /// best candidates found so far.
    pub deadline_exceeded: bool,
    /// Per-stage wall-clock time and call counts of the verification cascade.
    pub stage_timings: StageTimings,
    /// Probe-cache hits during this run.
    pub cache_hits: u64,
    /// Probe-cache misses during this run.
    pub cache_misses: u64,
    /// Estimated bytes retained by the probe cache at the end of the run.
    pub cache_bytes: u64,
    /// Executor rows scanned by this run's probe executions (base-table rows
    /// pulled plus join rows produced; cache hits scan nothing).
    pub rows_scanned: u64,
    /// Probe-side rows the streaming executor never pulled because a limit
    /// was already satisfied — the observable win of limit pushdown.
    pub rows_short_circuited: u64,
    /// Secondary-index lookups performed by this run's probe executions
    /// (candidate computations, INLJ probes, ordered-scan setups).
    pub index_lookups: u64,
    /// Rows that entered probe pipelines through an index access path —
    /// the observable win of index-backed execution.
    pub rows_via_index: u64,
    /// Probe executions cut short because the planner or a join step proved
    /// the remaining work empty.
    pub probes_bailed_empty: u64,
    /// Probe-cache misses this run resolved by waiting on another session's
    /// identical in-flight probe instead of executing it again (single-flight
    /// collapsing on a shared database).
    pub single_flight_hits: u64,
    /// Probe-cache misses for which this run was elected the single-flight
    /// leader (it executed the probe and fanned the result out).
    pub single_flight_leaders: u64,
    /// Microseconds this run's probes spent parked waiting on another
    /// session's single-flight leader (wall-clock, observational).
    pub single_flight_wait_us: u64,
    /// Shared-pool observations, when the run was served by a
    /// [`crate::scheduler::SessionScheduler`] (`None` for runs on a private
    /// scoped pool or inline execution).
    pub scheduler: Option<crate::scheduler::SchedulerRunStats>,
}

impl EnumerationStats {
    /// Total number of pruned states.
    pub fn total_pruned(&self) -> usize {
        self.pruned_clauses
            + self.pruned_semantics
            + self.pruned_types
            + self.pruned_by_column
            + self.pruned_by_row
            + self.pruned_literals
            + self.pruned_by_order
    }

    /// Probe-cache hit rate in `[0, 1]` for this run.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Render the stats as a JSON object for scraping, hand-rolled because
    /// the vendored `serde` derives are no-ops. Durations are integer
    /// microseconds (`*_us`); the `scheduler` member is `null` for runs that
    /// did not go through a shared pool.
    pub fn to_json(&self) -> String {
        let scheduler =
            self.scheduler.as_ref().map(|s| s.to_json()).unwrap_or_else(|| "null".into());
        format!(
            "{{\"expanded\":{},\"generated\":{},\"pruned_clauses\":{},\"pruned_semantics\":{},\
             \"pruned_types\":{},\"pruned_by_column\":{},\"pruned_by_row\":{},\
             \"pruned_literals\":{},\"pruned_by_order\":{},\"emitted\":{},\"rounds\":{},\
             \"elapsed_us\":{},\"exhausted\":{},\"cancelled\":{},\"deadline_exceeded\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_bytes\":{},\"rows_scanned\":{},\
             \"rows_short_circuited\":{},\"index_lookups\":{},\"rows_via_index\":{},\
             \"probes_bailed_empty\":{},\"single_flight_hits\":{},\
             \"single_flight_leaders\":{},\"single_flight_wait_us\":{},\
             \"stage_timings\":{},\"scheduler\":{}}}",
            self.expanded,
            self.generated,
            self.pruned_clauses,
            self.pruned_semantics,
            self.pruned_types,
            self.pruned_by_column,
            self.pruned_by_row,
            self.pruned_literals,
            self.pruned_by_order,
            self.emitted,
            self.rounds,
            self.elapsed.as_micros(),
            self.exhausted,
            self.cancelled,
            self.deadline_exceeded,
            self.cache_hits,
            self.cache_misses,
            self.cache_bytes,
            self.rows_scanned,
            self.rows_short_circuited,
            self.index_lookups,
            self.rows_via_index,
            self.probes_bailed_empty,
            self.single_flight_hits,
            self.single_flight_leaders,
            self.single_flight_wait_us,
            self.stage_timings.to_json(),
            scheduler,
        )
    }

    fn record(&mut self, stage: VerifyStage, count: usize) {
        match stage {
            VerifyStage::Clauses => self.pruned_clauses += count,
            VerifyStage::Semantics => self.pruned_semantics += count,
            VerifyStage::ColumnTypes => self.pruned_types += count,
            VerifyStage::ByColumn => self.pruned_by_column += count,
            VerifyStage::ByRow => self.pruned_by_row += count,
            VerifyStage::Literals => self.pruned_literals += count,
            VerifyStage::ByOrder => self.pruned_by_order += count,
        }
    }
}

/// Run GPQE. `on_candidate` receives every emitted candidate (its partial query
/// lowered to an executable spec, its confidence and the time of emission) and
/// returns `false` to stop the enumeration early.
///
/// Parallelism and beam width come from the configuration; the default
/// (`beam_width = 1`, `workers = 1`) reproduces the sequential Algorithm 1
/// exploration exactly.
pub fn enumerate<F>(
    db: &Database,
    nlq: &Nlq,
    model: &dyn GuidanceModel,
    tsq: Option<&TableSketchQuery>,
    config: &DuoquestConfig,
    mut on_candidate: F,
) -> EnumerationStats
where
    F: FnMut(SelectSpec, f64, Duration) -> bool,
{
    run_rounds(
        db,
        nlq,
        model,
        tsq,
        config,
        &SessionControl::new(),
        &SYSTEM_CLOCK,
        None,
        &mut on_candidate,
    )
}

/// The earlier of two optional deadlines.
pub(crate) fn min_deadline(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

/// Everything a verification worker needs, shared by reference across the
/// pool (all fields are `Sync`; the database's probe cache handles its own
/// synchronization).
#[derive(Clone, Copy)]
pub(crate) struct RoundEnv<'a> {
    pub(crate) db: &'a Database,
    pub(crate) graph: &'a JoinGraph,
    pub(crate) config: &'a DuoquestConfig,
    pub(crate) partial_verifier: &'a Verifier<'a>,
    pub(crate) complete_verifier: &'a Verifier<'a>,
    pub(crate) deadline: Option<Instant>,
    /// The session's time source; deadline checks inside chunks read this
    /// (virtual under the simulation harness, real otherwise).
    pub(crate) clock: &'a dyn Clock,
    /// The session's cancellation token, checked between chunk jobs so a
    /// cancel takes effect mid-round.
    pub(crate) cancel: &'a AtomicBool,
    /// Whether the session carries a request trace: chunk workers then
    /// record chunk spans into their local [`ChunkResult::spans`] buffer
    /// (merged deterministically by the driver). `false` costs one branch
    /// per chunk and nothing else.
    pub(crate) trace: bool,
}

/// One unit of parallel work: a freshly generated child with its confidence
/// and the beam position of its parent.
pub(crate) struct ChildJob {
    pub(crate) beam_idx: usize,
    pub(crate) confidence: f64,
    pub(crate) pq: PartialQuery,
}

/// The merged product of one worker's chunk, in original job order.
#[derive(Default)]
pub(crate) struct ChunkResult {
    /// Number of jobs this chunk was given. The any-k dominance gate uses it
    /// to advance its merged-jobs cursor into the round's suffix-maximum
    /// table; fabricated results (cancel reaping) leave it `0`, which merely
    /// makes the gate stricter — never unsound.
    pub(crate) jobs: usize,
    pub(crate) generated: usize,
    pub(crate) prunes: [usize; VerifyStage::COUNT],
    pub(crate) timings: StageTimings,
    /// Complete queries that survived the full cascade, in child order.
    pub(crate) emissions: Vec<(SelectSpec, f64)>,
    /// Partial queries to push back onto the frontier, in child order.
    pub(crate) survivors: Vec<(PartialQuery, f64, usize)>,
    /// The worker hit the wall-clock deadline and skipped its remaining jobs.
    pub(crate) timed_out: bool,
    /// The worker observed the session's cancellation token and bailed.
    pub(crate) cancelled: bool,
    /// Chunk-local trace spans (absolute instants), recorded without any
    /// shared state and merged into the session's [`Trace`] by the driver
    /// **in child order** — what keeps trace content reproducible under a
    /// simulated clock regardless of which worker ran the chunk. Empty when
    /// tracing is off.
    pub(crate) spans: Vec<RawSpan>,
    /// Microseconds this chunk's probes spent parked on single-flight waits
    /// (delta of the shared run counters across the chunk — attribution is
    /// approximate when chunks run concurrently; observational only).
    /// Recorded only when tracing is on; the driver synthesizes a
    /// `probe_wait` span from it.
    pub(crate) probe_wait_us: u64,
}

/// Fan-out threshold below which spawning workers costs more than it saves.
pub(crate) const MIN_PARALLEL_JOBS: usize = 8;

/// The round-based engine behind [`enumerate`] and (through a private pool)
/// the streaming [`crate::session::SynthesisSession`]. Runs the shared round
/// loop ([`drive_rounds`]) over a run-scoped worker pool.
///
/// Sessions attached to a shared [`crate::scheduler::SessionScheduler`] use
/// `crate::scheduler::run_rounds_scheduled` instead, which drives the same
/// loop but dispatches phase-2 chunks to the scheduler's long-lived pool.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_rounds(
    db: &Database,
    nlq: &Nlq,
    model: &dyn GuidanceModel,
    tsq: Option<&TableSketchQuery>,
    config: &DuoquestConfig,
    control: &SessionControl,
    clock: &dyn Clock,
    trace: Option<Arc<Trace>>,
    on_candidate: &mut dyn FnMut(SelectSpec, f64, Duration) -> bool,
) -> EnumerationStats {
    let start = clock.now();
    let mut stats = EnumerationStats::default();
    let graph = JoinGraph::new(db.schema());

    // Partial queries are only verified when partial pruning is enabled; complete
    // queries always get the full cascade (this is what makes NoPQ equivalent to
    // the naive chaining approach of paper §3.5).
    let partial_verifier = Verifier::new(
        db,
        if config.prune_partial { tsq } else { None },
        &nlq.literals,
        config.semantic_rules && config.prune_partial,
    )
    .with_clock(clock);
    let complete_verifier =
        Verifier::new(db, tsq, &nlq.literals, config.semantic_rules).with_clock(clock);
    let env = RoundEnv {
        db,
        graph: &graph,
        config,
        partial_verifier: &partial_verifier,
        complete_verifier: &complete_verifier,
        deadline: min_deadline(config.time_budget.map(|budget| start + budget), control.deadline()),
        cancel: control.flag_ref(),
        clock,
        trace: trace.is_some(),
    };

    let workers = config.effective_workers();

    // The worker pool lives for the whole run (scoped threads fed per round
    // over channels), so rounds don't pay a spawn/join cycle each.
    std::thread::scope(|scope| {
        let pool = WorkerPool::start(scope, workers, &env);
        let mut dispatcher = PoolDispatcher { pool: pool.as_ref(), env: &env };
        drive_rounds(
            db,
            nlq,
            model,
            config,
            env.deadline,
            env.cancel,
            start,
            clock,
            trace,
            &mut stats,
            on_candidate,
            &mut dispatcher,
        );
    });

    stats.elapsed = clock.now().saturating_duration_since(start);
    // Per-run counters owned by this run's verifiers: concurrent sessions on
    // the same shared database can't pollute each other's statistics.
    let (partial_hits, partial_misses) = partial_verifier.cache_counters();
    let (complete_hits, complete_misses) = complete_verifier.cache_counters();
    stats.cache_hits = partial_hits + complete_hits;
    stats.cache_misses = partial_misses + complete_misses;
    stats.cache_bytes = db.cache_stats().bytes;
    let (partial_scanned, partial_short) = partial_verifier.scan_counters();
    let (complete_scanned, complete_short) = complete_verifier.scan_counters();
    stats.rows_scanned = partial_scanned + complete_scanned;
    stats.rows_short_circuited = partial_short + complete_short;
    let (partial_lk, partial_via, partial_bail) = partial_verifier.index_counters();
    let (complete_lk, complete_via, complete_bail) = complete_verifier.index_counters();
    stats.index_lookups = partial_lk + complete_lk;
    stats.rows_via_index = partial_via + complete_via;
    stats.probes_bailed_empty = partial_bail + complete_bail;
    let (partial_sfh, partial_sfl, partial_sfw) = partial_verifier.single_flight_counters();
    let (complete_sfh, complete_sfl, complete_sfw) = complete_verifier.single_flight_counters();
    stats.single_flight_hits = partial_sfh + complete_sfh;
    stats.single_flight_leaders = partial_sfl + complete_sfl;
    stats.single_flight_wait_us = partial_sfw + complete_sfw;
    stats
}

/// The borrows one [`RoundDriver::step`] needs: the session's inputs, which
/// the driver itself never owns — so the driver can be parked anywhere (a
/// blocked caller's stack, a scheduler slot) and resumed by whichever thread
/// holds the session's resources.
pub(crate) struct StepEnv<'a> {
    pub(crate) db: &'a Database,
    pub(crate) nlq: &'a Nlq,
    pub(crate) model: &'a dyn GuidanceModel,
    pub(crate) config: &'a DuoquestConfig,
    /// The session's cancellation token, checked at every round boundary —
    /// i.e. *between* `step()` calls, not only inside chunks.
    pub(crate) cancel: &'a AtomicBool,
    /// The session's time source: round-boundary deadline checks and
    /// emission timestamps read this instead of the real clock.
    pub(crate) clock: &'a dyn Clock,
}

/// Where a resumable round loop stands after one [`RoundDriver::step`].
// Transient return value, consumed immediately — boxing `Emit` would cost an
// allocation per candidate for no retained-memory win.
#[allow(clippy::large_enum_variant)]
pub(crate) enum StepOutcome {
    /// A fresh round's phase-2 jobs. The caller runs them — split into any
    /// number of contiguous chunks, on any threads — and feeds the chunk
    /// results back **in original job order** via [`RoundDriver::provide`]
    /// before stepping again. This ordering contract is the heart of the
    /// engine's determinism: emission order is a pure function of the
    /// configuration, never of the worker count, chunk size, or which pool
    /// did the work.
    SubmitChunks(Vec<ChildJob>),
    /// A complete query survived the full cascade. Deliver it to the
    /// consumer; call [`RoundDriver::halt`] before the next `step` if the
    /// consumer wants to stop.
    Emit {
        /// The candidate, lowered to an executable spec.
        spec: SelectSpec,
        /// Its confidence score.
        confidence: f64,
        /// Wall-clock offset from the run's start.
        emitted_at: Duration,
    },
    /// The run is over (exhausted, budget reached, halted, cancelled or past
    /// the deadline). Collect the counters with [`RoundDriver::into_stats`].
    Done,
}

/// Progress of the state machine between `step` calls.
enum DriverPhase {
    /// Ready to start the next round (pop a beam).
    Ready,
    /// `SubmitChunks` was returned; waiting on [`RoundDriver::provide`] (or
    /// the first [`RoundDriver::feed`] of a streamed round). Carries the
    /// decision depth of each beam slot for the merge, plus — under
    /// [`EmissionPolicy::AnyK`] — the suffix maxima of the submitted job
    /// confidences (`suffix_max[i]` bounds every child of jobs `i..`; one
    /// trailing `0.0` entry), which the dominance gate indexes by its
    /// merged-jobs cursor. Empty under `RoundBarrier`.
    Submitted { decisions: Vec<usize>, suffix_max: Vec<f64> },
    /// Chunk results are being merged; emissions drain one per `step`.
    Draining(Drain),
    /// The loop has exited; every further `step` returns `Done`.
    Finished,
}

/// The in-progress phase-3 merge of one round: chunks are consumed strictly
/// in order, and within a chunk every emission is delivered before its
/// survivors are pushed — exactly the order of the historical serial loop,
/// so an early stop (consumer halt or candidate budget) cuts the merge at
/// the same point it always did.
struct Drain {
    decisions: Vec<usize>,
    /// Suffix maxima of the round's job confidences (see
    /// [`DriverPhase::Submitted`]); empty under `RoundBarrier`.
    suffix_max: Vec<f64>,
    chunks: VecDeque<ChunkResult>,
    emissions: VecDeque<(SelectSpec, f64)>,
    survivors: Vec<(PartialQuery, f64, usize)>,
    in_chunk: bool,
    /// Jobs covered by the chunks merged so far — the dominance gate's
    /// cursor into `suffix_max`.
    merged_jobs: usize,
    /// Highest confidence among the current chunk's not-yet-pushed
    /// survivors (they are outside the heap while the chunk's emissions
    /// drain, so the gate must bound them separately).
    survivor_max: f64,
    /// Whether every chunk of the round has been provided. `provide` sets
    /// this immediately; a streamed round sets it on its `last` feed. The
    /// dominance gate only applies while `false` — once the round is
    /// complete, draining is exactly the historical barrier merge.
    complete: bool,
    timed_out: bool,
    cancelled: bool,
    just_emitted: bool,
}

/// The synthesis round loop as a **resumable state machine**: owns the
/// frontier (priority queue), the per-run statistics and the merge state of
/// the in-flight round, but none of the session's inputs (those arrive by
/// borrow in each [`StepEnv`]). The protocol:
///
/// ```text
///   loop {
///       match driver.step(&env) {
///           SubmitChunks(jobs) => {            // phase 2: run anywhere
///               let results = run(jobs);       //   (chunked, job order kept)
///               driver.provide(results);
///           }
///           Emit { .. } => deliver(..),        // optionally driver.halt()
///           Done => break,
///       }
///   }
///   let stats = driver.into_stats();
/// ```
///
/// `step` never blocks: between `SubmitChunks` and `provide` the driver is
/// inert and can be parked indefinitely — this is what lets a scheduler
/// resume thousands of live sessions from a fixed worker pool instead of
/// parking one OS thread per session. Cancellation and the deadline are
/// honored at every round boundary (between `step` calls), in addition to
/// the mid-chunk checks inside [`process_chunk`]. See `docs/DRIVER.md` for
/// the full contract.
pub(crate) struct RoundDriver {
    heap: BinaryHeap<EnumState>,
    sequence: u64,
    stats: EnumerationStats,
    start: Instant,
    deadline: Option<Instant>,
    phase: DriverPhase,
    halted: bool,
    /// The session's request trace, when observability is on. The driver owns
    /// the merge of chunk-local spans precisely because it already owns the
    /// deterministic phase-3 merge: spans land in child order, so trace
    /// content under a simulated clock is reproducible run-to-run.
    trace: Option<Arc<Trace>>,
    /// Start instant of the in-flight round's span (tracing only).
    round_started: Option<Instant>,
}

impl RoundDriver {
    /// A driver at the root state. `start` anchors emission timestamps;
    /// `deadline` is the merged wall-clock cut-off (config `time_budget` and
    /// any external [`SessionControl`] deadline).
    pub(crate) fn new(start: Instant, deadline: Option<Instant>) -> Self {
        let mut heap = BinaryHeap::new();
        heap.push(EnumState::root());
        RoundDriver {
            heap,
            sequence: 0,
            stats: EnumerationStats::default(),
            start,
            deadline,
            phase: DriverPhase::Ready,
            halted: false,
            trace: None,
            round_started: None,
        }
    }

    /// Attach the session's request trace: every subsequent round records a
    /// `round` span, and chunk results feed their worker-recorded spans into
    /// it (merged in child order).
    pub(crate) fn with_trace(mut self, trace: Option<Arc<Trace>>) -> Self {
        self.trace = trace;
        self
    }

    /// The attached request trace, if any (the scheduler records dispatch and
    /// resume events against it).
    pub(crate) fn trace(&self) -> Option<&Arc<Trace>> {
        self.trace.as_ref()
    }

    /// Close the in-flight round's span, if one is open.
    fn close_round(&mut self, env: &StepEnv<'_>) {
        if let (Some(trace), Some(started)) = (self.trace.as_ref(), self.round_started.take()) {
            trace.record_span("round", started, env.clock.now());
        }
    }

    /// Ask the driver to stop: the next `step` returns `Done` without
    /// touching the frontier (the consumer's "stop" verdict — the equivalent
    /// of returning `false` from a candidate callback).
    pub(crate) fn halt(&mut self) {
        self.halted = true;
    }

    /// Feed back the chunk results of the jobs returned by the last
    /// `SubmitChunks`, in original job order.
    ///
    /// # Panics
    ///
    /// Panics if no round is outstanding (protocol violation).
    pub(crate) fn provide(&mut self, results: Vec<ChunkResult>) {
        match std::mem::replace(&mut self.phase, DriverPhase::Finished) {
            DriverPhase::Submitted { decisions, suffix_max } => {
                self.phase = DriverPhase::Draining(Drain {
                    decisions,
                    suffix_max,
                    chunks: results.into(),
                    emissions: VecDeque::new(),
                    survivors: Vec::new(),
                    in_chunk: false,
                    merged_jobs: 0,
                    survivor_max: 0.0,
                    complete: true,
                    timed_out: false,
                    cancelled: false,
                    just_emitted: false,
                });
            }
            phase => {
                self.phase = phase;
                panic!("RoundDriver::provide called with no round outstanding");
            }
        }
    }

    /// Feed a contiguous job-order prefix of the in-flight round's chunk
    /// results, draining every emission the any-k dominance gate releases
    /// straight into `sink` (the streamed counterpart of
    /// [`RoundDriver::provide`] + [`RoundDriver::step`]). `last` marks the
    /// round's final feed; until it arrives the driver may pause mid-merge
    /// (gate blocked, or chunks exhausted) and waits for the next feed. A
    /// `sink` returning `false` halts the run, exactly like returning
    /// `false` from a candidate callback.
    ///
    /// Feeding a finished driver silently drops the chunks: a halted or
    /// budget-stopped run may still have late chunks in flight, and they
    /// must be discardable.
    ///
    /// # Panics
    ///
    /// Panics if no round is outstanding (phase `Ready` — protocol
    /// violation).
    pub(crate) fn feed(
        &mut self,
        chunks: Vec<ChunkResult>,
        last: bool,
        env: &StepEnv<'_>,
        sink: &mut dyn FnMut(SelectSpec, f64, Duration) -> bool,
    ) {
        match std::mem::replace(&mut self.phase, DriverPhase::Finished) {
            DriverPhase::Finished => return, // late chunks after an early stop
            DriverPhase::Submitted { decisions, suffix_max } => {
                self.phase = DriverPhase::Draining(Drain {
                    decisions,
                    suffix_max,
                    chunks: chunks.into(),
                    emissions: VecDeque::new(),
                    survivors: Vec::new(),
                    in_chunk: false,
                    merged_jobs: 0,
                    survivor_max: 0.0,
                    complete: last,
                    timed_out: false,
                    cancelled: false,
                    just_emitted: false,
                });
            }
            DriverPhase::Draining(mut d) => {
                d.chunks.extend(chunks);
                d.complete |= last;
                self.phase = DriverPhase::Draining(d);
            }
            DriverPhase::Ready => {
                self.phase = DriverPhase::Ready;
                panic!("RoundDriver::feed called with no round outstanding");
            }
        }
        loop {
            let phase = std::mem::replace(&mut self.phase, DriverPhase::Finished);
            let DriverPhase::Draining(d) = phase else {
                self.phase = phase;
                return; // the drain closed the round or finished the run
            };
            match self.drain(d, env) {
                Some(StepOutcome::Emit { spec, confidence, emitted_at }) => {
                    // A mid-round release is the observable any-k event: the
                    // frontier provably cannot beat this candidate, so it
                    // leaves before the round closes.
                    let mid_round = matches!(&self.phase, DriverPhase::Draining(d) if !d.complete);
                    let popped_at = if mid_round && self.trace.is_some() {
                        Some(env.clock.now())
                    } else {
                        None
                    };
                    let keep = sink(spec, confidence, emitted_at);
                    if let (Some(trace), Some(t0)) = (self.trace.as_ref(), popped_at) {
                        trace.record_span("frontier_pop", t0, env.clock.now());
                    }
                    if !keep {
                        self.halt();
                    }
                }
                Some(_) => unreachable!("drain only yields emissions"),
                None => return, // paused mid-round, round complete, or run over
            }
        }
    }

    /// The run's counters so far (final once `step` has returned `Done`,
    /// except for `elapsed` and the cache counters, which the wrapper fills).
    pub(crate) fn into_stats(self) -> EnumerationStats {
        self.stats
    }

    /// Advance the state machine until it has something for the caller.
    ///
    /// # Panics
    ///
    /// Panics if called while chunk results are outstanding (after a
    /// `SubmitChunks` and before the matching [`RoundDriver::provide`]).
    pub(crate) fn step(&mut self, env: &StepEnv<'_>) -> StepOutcome {
        loop {
            match std::mem::replace(&mut self.phase, DriverPhase::Finished) {
                DriverPhase::Finished => return StepOutcome::Done,
                DriverPhase::Submitted { decisions, suffix_max } => {
                    self.phase = DriverPhase::Submitted { decisions, suffix_max };
                    panic!("RoundDriver::step called while chunk results are outstanding");
                }
                DriverPhase::Draining(drain) => {
                    if let Some(outcome) = self.drain(drain, env) {
                        return outcome;
                    }
                    if matches!(self.phase, DriverPhase::Draining(_)) {
                        panic!(
                            "RoundDriver::step called while a streamed round is still in flight"
                        );
                    }
                }
                DriverPhase::Ready => {
                    if let Some(outcome) = self.begin_round(env) {
                        return outcome;
                    }
                }
            }
        }
    }

    /// Start a round: the cooperative checks, the beam pop and phase 1
    /// (serial child expansion + scoring). On entry the phase has been taken
    /// (left `Finished`); returning `None` keeps whatever phase this method
    /// set — `Finished` for every exit path, `Ready` for an empty round.
    fn begin_round(&mut self, env: &StepEnv<'_>) -> Option<StepOutcome> {
        if self.halted {
            return None; // consumer stop between rounds
        }
        if self.heap.is_empty() {
            // Natural end of the search (never reached via an early exit:
            // those leave directly from their check below).
            self.stats.exhausted = self.stats.expanded < env.config.max_expansions;
            return None;
        }
        if env.cancel.load(Ordering::SeqCst) {
            self.stats.cancelled = true;
            return None;
        }
        if self.deadline.map(|d| env.clock.now() > d).unwrap_or(false) {
            self.stats.deadline_exceeded = true;
            return None;
        }

        // Pop the beam: the top-k states by confidence, within the expansion budget.
        let beam_width = env.config.beam_width.max(1);
        let mut beam: Vec<EnumState> = Vec::with_capacity(beam_width);
        while beam.len() < beam_width && self.stats.expanded < env.config.max_expansions {
            let Some(state) = self.heap.pop() else { break };
            self.stats.expanded += 1;
            beam.push(state);
        }
        if beam.is_empty() {
            return None; // expansion budget reached with work left
        }
        self.stats.rounds += 1;
        if self.trace.is_some() {
            self.round_started = Some(env.clock.now());
        }

        // Phase 1 (serial, cheap): produce and score every child of the beam.
        let ctx = GuidanceContext { nlq: env.nlq, schema: env.db.schema() };
        let mut jobs: Vec<ChildJob> = Vec::new();
        for (beam_idx, state) in beam.iter().enumerate() {
            // A state with no decision left is complete (it was verified and
            // emitted when generated); a state with an empty child set is a
            // dead end. Both just drop out of the frontier.
            let Some(children) = enum_next_step(&state.pq, env.db, env.nlq, env.config) else {
                continue;
            };
            if children.is_empty() {
                continue;
            }
            // Split choices from children instead of cloning every `Choice`
            // for the scoring call.
            let (choices, child_pqs): (Vec<Choice>, Vec<PartialQuery>) =
                children.into_iter().unzip();
            let raw = if env.config.guided {
                env.model.score(&ctx, &choices)
            } else {
                vec![1.0; choices.len()]
            };
            let scores = duoquest_nlq::guidance::normalize_scores(&raw);
            for (pq, score) in child_pqs.into_iter().zip(scores) {
                jobs.push(ChildJob { beam_idx, confidence: state.confidence * score, pq });
            }
        }
        if jobs.is_empty() {
            // Nothing to verify this round: end-of-round bookkeeping and
            // straight on to the next beam.
            self.close_round(env);
            self.bound_frontier(env.config.max_states);
            self.phase = DriverPhase::Ready;
            return None;
        }
        let decisions = beam.iter().map(|s| s.decisions).collect();
        // Under any-k, precompute the suffix maxima of the job confidences:
        // `suffix_max[i]` bounds the confidence of every child a job in
        // `jobs[i..]` can produce (a child's confidence equals its job's),
        // so the dominance gate can bound the round's unmerged remainder in
        // O(1) as chunks stream in.
        let suffix_max = if env.config.emission == EmissionPolicy::AnyK {
            let mut suffix = vec![0.0f64; jobs.len() + 1];
            for i in (0..jobs.len()).rev() {
                suffix[i] = suffix[i + 1].max(jobs[i].confidence);
            }
            suffix
        } else {
            Vec::new()
        };
        self.phase = DriverPhase::Submitted { decisions, suffix_max };
        Some(StepOutcome::SubmitChunks(jobs))
    }

    /// Phase 3 (serial): merge chunk results in original child order,
    /// draining one emission per call. Returning `None` means the merge
    /// finished; the phase is then `Ready` (round complete) or `Finished`
    /// (early exit).
    fn drain(&mut self, mut d: Drain, env: &StepEnv<'_>) -> Option<StepOutcome> {
        loop {
            if d.just_emitted {
                d.just_emitted = false;
                // The historical post-callback check: a consumer halt or the
                // candidate budget stops the run right here, skipping the
                // current chunk's survivors and every later chunk.
                if self.halted || self.stats.emitted >= env.config.max_candidates {
                    return None; // Finished
                }
            }
            if d.in_chunk {
                if let Some(&(_, confidence)) = d.emissions.front() {
                    // Any-k dominance gate (only while the round is still
                    // streaming in): release the emission only when its
                    // confidence provably beats every unexpanded state —
                    // the frontier heap's top, every child a not-yet-merged
                    // job could produce, and the current chunk's unpushed
                    // survivors. A blocked gate pauses the merge; the round's
                    // completion disables the gate, so the emitted sequence
                    // is always exactly the barrier sequence.
                    if !d.complete && !self.dominates(confidence, &d) {
                        self.phase = DriverPhase::Draining(d);
                        return None;
                    }
                    let (spec, confidence) = d.emissions.pop_front().expect("front checked above");
                    self.stats.emitted += 1;
                    d.just_emitted = true;
                    let emitted_at = env.clock.now().saturating_duration_since(self.start);
                    self.phase = DriverPhase::Draining(d);
                    return Some(StepOutcome::Emit { spec, confidence, emitted_at });
                }
                for (pq, confidence, beam_idx) in d.survivors.drain(..) {
                    self.sequence += 1;
                    self.heap.push(EnumState {
                        pq,
                        confidence,
                        decisions: d.decisions[beam_idx] + 1,
                        sequence: self.sequence,
                    });
                }
                d.in_chunk = false;
            }
            match d.chunks.pop_front() {
                Some(chunk) => {
                    self.stats.generated += chunk.generated;
                    for (idx, count) in chunk.prunes.iter().enumerate() {
                        self.stats.record(VerifyStage::ALL[idx], *count);
                    }
                    self.stats.stage_timings.merge(&chunk.timings);
                    if let Some(trace) = self.trace.as_ref() {
                        // Child-order merge: chunks arrive here in original
                        // job order, so the trace's span sequence is a pure
                        // function of the configuration — not of which worker
                        // ran which chunk.
                        trace.merge_raw(&chunk.spans);
                        // Per-stage verify spans are synthesized from the
                        // chunk's stage timings, laid out sequentially from
                        // the chunk start so they nest inside the chunk span
                        // deterministically (individual verify calls
                        // interleave across jobs and have no single
                        // interval of their own).
                        if let Some(span) = chunk.spans.first() {
                            let mut cursor = trace.offset_us(span.start);
                            for stage in VerifyStage::ALL {
                                if chunk.timings.calls_of(stage) == 0 {
                                    continue;
                                }
                                let width = chunk.timings.duration_of(stage).as_micros() as u64;
                                trace.record_span_at(stage.span_name(), cursor, cursor + width);
                                cursor += width;
                            }
                            // Single-flight park time, synthesized after the
                            // verify stages. The wait is real wall-clock
                            // even under a simulated clock, so its width is
                            // capped to the chunk span's remaining interval —
                            // a span may never escape its chunk on the
                            // (possibly virtual) timeline.
                            if chunk.probe_wait_us > 0 {
                                let chunk_end = trace.offset_us(span.end);
                                let width =
                                    chunk.probe_wait_us.min(chunk_end.saturating_sub(cursor));
                                trace.record_span_at("probe_wait", cursor, cursor + width);
                            }
                        }
                    }
                    d.merged_jobs += chunk.jobs;
                    d.survivor_max = chunk.survivors.iter().map(|&(_, c, _)| c).fold(0.0, f64::max);
                    d.timed_out |= chunk.timed_out;
                    d.cancelled |= chunk.cancelled;
                    d.emissions = chunk.emissions.into();
                    d.survivors = chunk.survivors;
                    d.in_chunk = true;
                }
                None => {
                    if !d.complete {
                        // Streamed round, chunks exhausted mid-round: pause
                        // until the next feed.
                        self.phase = DriverPhase::Draining(d);
                        return None;
                    }
                    self.close_round(env);
                    if d.cancelled {
                        self.stats.cancelled = true;
                        return None; // Finished
                    }
                    if d.timed_out {
                        self.stats.deadline_exceeded = true;
                        return None; // Finished
                    }
                    self.bound_frontier(env.config.max_states);
                    self.phase = DriverPhase::Ready;
                    return None;
                }
            }
        }
    }

    /// The any-k dominance rule: `confidence` beats the frontier heap's top,
    /// the bound on every not-yet-merged job of the in-flight round, and the
    /// current chunk's not-yet-pushed survivors. `>=` is sound because an
    /// equal-confidence future candidate is later in child order, and the
    /// final ranking breaks confidence ties by emission index — which the
    /// gate never reorders.
    fn dominates(&self, confidence: f64, d: &Drain) -> bool {
        let heap_top = self.heap.peek().map(|s| s.confidence).unwrap_or(0.0);
        let unmerged = d.suffix_max.get(d.merged_jobs).copied().unwrap_or(f64::INFINITY);
        confidence >= heap_top && confidence >= unmerged && confidence >= d.survivor_max
    }

    /// Bound the frontier size: drop the lowest-confidence states.
    fn bound_frontier(&mut self, max_states: usize) {
        if self.heap.len() > max_states {
            let mut states: Vec<EnumState> = std::mem::take(&mut self.heap).into_vec();
            states.sort_by(|a, b| b.cmp(a));
            states.truncate(max_states / 2);
            self.heap = BinaryHeap::from(states);
        }
    }
}

/// The shared round loop, expressed as a blocking drive of the
/// [`RoundDriver`] state machine: pop a beam, expand and score children
/// (phase 1, serial), hand the jobs to `dispatch` for join-path construction
/// plus the verification cascade (phase 2, wherever the dispatcher runs
/// them), then merge chunk results back **in original child order** (phase 3,
/// serial).
///
/// The dispatcher contract is the heart of the engine's determinism: it may
/// split `jobs` into any number of contiguous chunks and run them on any
/// threads, but must return the chunk results in original job order.
/// Emission order is then a pure function of the configuration — never of the
/// worker count, chunk size, or which pool (scoped or shared) did the work.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_rounds(
    db: &Database,
    nlq: &Nlq,
    model: &dyn GuidanceModel,
    config: &DuoquestConfig,
    deadline: Option<Instant>,
    cancel: &AtomicBool,
    start: Instant,
    clock: &dyn Clock,
    trace: Option<Arc<Trace>>,
    stats: &mut EnumerationStats,
    on_candidate: &mut dyn FnMut(SelectSpec, f64, Duration) -> bool,
    dispatch: &mut dyn RoundDispatcher,
) {
    let env = StepEnv { db, nlq, model, config, cancel, clock };
    let streaming = config.emission == EmissionPolicy::AnyK;
    let mut driver = RoundDriver::new(start, deadline).with_trace(trace);
    loop {
        match driver.step(&env) {
            StepOutcome::SubmitChunks(jobs) => {
                if streaming {
                    // Any-k: chunk results stream back as contiguous
                    // job-order prefixes and each feed drains whatever the
                    // dominance gate releases straight into the consumer.
                    dispatch.run_streaming(jobs, &mut |chunks, last| {
                        driver.feed(chunks, last, &env, on_candidate);
                    });
                } else {
                    let results = dispatch.run(jobs);
                    driver.provide(results);
                }
            }
            StepOutcome::Emit { spec, confidence, emitted_at } => {
                if !on_candidate(spec, confidence, emitted_at) {
                    driver.halt();
                }
            }
            StepOutcome::Done => break,
        }
    }
    *stats = driver.into_stats();
}

/// Phase-2 execution strategy handed to [`drive_rounds`]: runs a round's
/// jobs — split into any number of contiguous chunks, on any threads — and
/// returns the chunk results **in original job order** (the determinism
/// contract). The streaming variant additionally delivers results
/// incrementally, as contiguous job-order prefixes complete, which is what
/// any-k emission taps for mid-round delivery.
pub(crate) trait RoundDispatcher {
    /// Run the jobs and return every chunk result, in original job order.
    fn run(&mut self, jobs: Vec<ChildJob>) -> Vec<ChunkResult>;

    /// Run the jobs, feeding chunk results as contiguous job-order prefixes
    /// complete. `feed` must be called with `last = true` exactly once, on
    /// the final delivery (which may carry an empty batch only if earlier
    /// feeds delivered everything — the default delivers everything at
    /// once).
    fn run_streaming(&mut self, jobs: Vec<ChildJob>, feed: &mut dyn FnMut(Vec<ChunkResult>, bool)) {
        let results = self.run(jobs);
        feed(results, true);
    }
}

/// Distribute the round's jobs over the persistent worker pool as contiguous
/// chunks (placing the chunk results by index restores the original job
/// order), or run inline when there is no pool or the fan-out is too small
/// to be worth the channel handoff.
fn process_jobs(
    jobs: Vec<ChildJob>,
    pool: Option<&WorkerPool>,
    env: &RoundEnv<'_>,
) -> Vec<ChunkResult> {
    match pool {
        Some(pool) if jobs.len() >= MIN_PARALLEL_JOBS => pool.dispatch(jobs),
        _ => vec![process_chunk(jobs, env)],
    }
}

/// [`RoundDispatcher`] over the run-scoped [`WorkerPool`] (or inline
/// execution when the pool is absent or a fan-out is too small).
struct PoolDispatcher<'a> {
    pool: Option<&'a WorkerPool>,
    env: &'a RoundEnv<'a>,
}

impl RoundDispatcher for PoolDispatcher<'_> {
    fn run(&mut self, jobs: Vec<ChildJob>) -> Vec<ChunkResult> {
        process_jobs(jobs, self.pool, self.env)
    }

    fn run_streaming(&mut self, jobs: Vec<ChildJob>, feed: &mut dyn FnMut(Vec<ChunkResult>, bool)) {
        match self.pool {
            Some(pool) if jobs.len() >= MIN_PARALLEL_JOBS => pool.dispatch_streaming(jobs, feed),
            _ => feed(vec![process_chunk(jobs, self.env)], true),
        }
    }
}

/// A run-scoped pool of verification workers. Threads are spawned once per
/// synthesis run (scoped, so they may borrow the run's verifiers and
/// database) and fed one chunk per round over channels — rounds never pay a
/// thread spawn/join cycle.
struct WorkerPool {
    chunk_txs: Vec<std::sync::mpsc::Sender<(usize, Vec<ChildJob>)>>,
    result_rx: std::sync::mpsc::Receiver<(usize, std::thread::Result<ChunkResult>)>,
}

impl WorkerPool {
    /// Spawn `workers` threads onto `scope`; `None` when one worker would do
    /// (the caller then processes chunks inline).
    fn start<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        workers: usize,
        env: &'env RoundEnv<'env>,
    ) -> Option<WorkerPool> {
        if workers <= 1 {
            return None;
        }
        let (result_tx, result_rx) = std::sync::mpsc::channel();
        let chunk_txs = (0..workers)
            .map(|_| {
                let (chunk_tx, chunk_rx) = std::sync::mpsc::channel::<(usize, Vec<ChildJob>)>();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok((idx, jobs)) = chunk_rx.recv() {
                        // Catch panics so a worker failure surfaces as a
                        // panic in the dispatching thread instead of a hang.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                process_chunk(jobs, env)
                            }));
                        if result_tx.send((idx, outcome)).is_err() {
                            break; // run is shutting down
                        }
                    }
                });
                chunk_tx
            })
            .collect();
        Some(WorkerPool { chunk_txs, result_rx })
    }

    /// Fan `jobs` out as one contiguous chunk per worker; returns how many
    /// chunks were sent.
    fn send_chunks(&self, jobs: Vec<ChildJob>) -> usize {
        let chunk_size = jobs.len().div_ceil(self.chunk_txs.len());
        let mut sent = 0usize;
        let mut remaining = jobs;
        while !remaining.is_empty() {
            let tail = remaining.split_off(remaining.len().min(chunk_size));
            self.chunk_txs[sent]
                .send((sent, remaining))
                .expect("synthesis worker terminated unexpectedly");
            remaining = tail;
            sent += 1;
        }
        sent
    }

    /// Split `jobs` into one contiguous chunk per worker, fan them out, and
    /// return the results in original job order.
    fn dispatch(&self, jobs: Vec<ChildJob>) -> Vec<ChunkResult> {
        let sent = self.send_chunks(jobs);
        let mut results: Vec<Option<ChunkResult>> = (0..sent).map(|_| None).collect();
        for _ in 0..sent {
            let (idx, outcome) =
                self.result_rx.recv().expect("synthesis worker terminated unexpectedly");
            match outcome {
                Ok(result) => results[idx] = Some(result),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        results.into_iter().map(|r| r.expect("every chunk reported")).collect()
    }

    /// Streaming fan-out for any-k emission: chunk results arrive out of
    /// order from the workers and are buffered by index; every time the
    /// contiguous job-order prefix grows, the new run is fed onward (the
    /// final feed carries `last = true`). The delivered sequence is exactly
    /// [`WorkerPool::dispatch`]'s, just incremental.
    fn dispatch_streaming(
        &self,
        jobs: Vec<ChildJob>,
        feed: &mut dyn FnMut(Vec<ChunkResult>, bool),
    ) {
        let sent = self.send_chunks(jobs);
        let mut results: Vec<Option<ChunkResult>> = (0..sent).map(|_| None).collect();
        let mut fed = 0usize;
        for _ in 0..sent {
            let (idx, outcome) =
                self.result_rx.recv().expect("synthesis worker terminated unexpectedly");
            match outcome {
                Ok(result) => results[idx] = Some(result),
                Err(panic) => std::panic::resume_unwind(panic),
            }
            let mut batch = Vec::new();
            while fed < sent && results[fed].is_some() {
                batch.push(results[fed].take().expect("checked above"));
                fed += 1;
            }
            if !batch.is_empty() {
                feed(batch, fed == sent);
            }
        }
    }
}

/// Run one worker's share of the round: cheap partial pre-verification, join
/// path attachment, then the full cascade per join variant.
pub(crate) fn process_chunk(jobs: Vec<ChildJob>, env: &RoundEnv<'_>) -> ChunkResult {
    let mut out = ChunkResult { jobs: jobs.len(), ..ChunkResult::default() };
    // One span per chunk, recorded into the chunk-local buffer (no shared
    // state from worker threads); the driver merges it in child order.
    let chunk_started = if env.trace { Some(env.clock.now()) } else { None };
    // Single-flight wait attribution: delta of the run's (shared) wait
    // counter across the chunk. Approximate when chunks run concurrently;
    // the driver synthesizes an observational `probe_wait` span from it.
    let wait_before = if env.trace {
        env.partial_verifier.single_flight_counters().2
            + env.complete_verifier.single_flight_counters().2
    } else {
        0
    };
    for (done, job) in jobs.into_iter().enumerate() {
        // Honor cancellation between jobs (an atomic load — cheap enough per
        // job) so cancel takes effect mid-chunk, not at the next round.
        if env.cancel.load(Ordering::Relaxed) {
            out.cancelled = true;
            break;
        }
        // Honor the wall-clock budget inside large fan-outs as well.
        if done % 32 == 31 && env.deadline.map(|d| env.clock.now() > d).unwrap_or(false) {
            out.timed_out = true;
            break;
        }
        let ChildJob { beam_idx, confidence, pq } = job;
        // Cheap pre-verification before paying for join path construction:
        // the clause, semantic, type and column-wise stages do not need a
        // join path, and they eliminate the bulk of the fan-out.
        if env.config.prune_partial && !pq.is_complete() {
            if let VerifyOutcome::Fail(stage) =
                env.partial_verifier.verify_timed(&pq, &mut out.timings)
            {
                out.generated += 1;
                out.prunes[stage.index()] += 1;
                continue;
            }
        }
        // Attach candidate join paths (progressive join path construction).
        for pq in attach_join_paths(pq, env.db, env.graph, env.config) {
            out.generated += 1;
            let complete = pq.is_complete();
            let verifier = if complete { env.complete_verifier } else { env.partial_verifier };
            match verifier.verify_timed(&pq, &mut out.timings) {
                VerifyOutcome::Fail(stage) => {
                    if complete || env.config.prune_partial {
                        out.prunes[stage.index()] += 1;
                    } else {
                        // Unverified partial (NoPQ): keep exploring it.
                        out.survivors.push((pq, confidence, beam_idx));
                    }
                }
                VerifyOutcome::Pass => {
                    if complete {
                        let spec = pq.to_spec().expect("complete partial query lowers");
                        out.emissions.push((spec, confidence));
                    } else {
                        out.survivors.push((pq, confidence, beam_idx));
                    }
                }
            }
        }
    }
    if let Some(started) = chunk_started {
        let wait_after = env.partial_verifier.single_flight_counters().2
            + env.complete_verifier.single_flight_counters().2;
        out.probe_wait_us = wait_after.saturating_sub(wait_before);
        out.spans.push(RawSpan { name: "chunk", start: started, end: env.clock.now() });
    }
    out
}

/// Attach join paths to a freshly generated child: if the child's referenced
/// tables are not covered by its current join path (or it has none yet and its
/// projection is decided), produce one child per candidate join path. The
/// input query is moved into the last variant instead of cloned.
fn attach_join_paths(
    pq: PartialQuery,
    db: &Database,
    graph: &JoinGraph,
    config: &DuoquestConfig,
) -> Vec<PartialQuery> {
    if pq.select.is_hole() {
        return vec![pq];
    }
    let referenced: Vec<_> = pq.referenced_columns().iter().map(|c| c.table).collect();
    let covered =
        pq.join.as_ref().map(|j| referenced.iter().all(|t| j.contains(*t))).unwrap_or(false);
    if covered {
        return vec![pq];
    }
    let mut paths =
        construct_join_paths(db, graph, &pq, pq.join.as_ref(), config.join_extension_depth);
    let Some(last_path) = paths.pop() else { return Vec::new() };
    let mut out: Vec<PartialQuery> = paths
        .into_iter()
        .map(|join| {
            let mut child = pq.clone();
            child.join = Some(join);
            child
        })
        .collect();
    let mut last = pq;
    last.join = Some(last_path);
    out.push(last);
    out
}

/// `EnumNextStep`: produce the candidate children of the next inference
/// decision, following the module order of paper Table 3. Returns `None` when
/// the partial query has no remaining decision.
#[allow(clippy::type_complexity)]
pub fn enum_next_step(
    pq: &PartialQuery,
    db: &Database,
    nlq: &Nlq,
    config: &DuoquestConfig,
) -> Option<Vec<(Choice, PartialQuery)>> {
    let schema = db.schema();

    // 1. KW module: which clauses exist.
    if pq.clauses.is_hole() {
        return Some(
            ClauseSet::all()
                .into_iter()
                .map(|cs| {
                    let mut child = pq.clone();
                    child.clauses = Slot::Filled(cs);
                    (Choice::Clauses(cs), child)
                })
                .collect(),
        );
    }
    let clauses = *pq.clauses.as_ref().expect("clauses decided above");

    // 2. COL module (SELECT): the projected column list. Surrogate key columns
    // (primary keys and foreign keys) are excluded from the candidate pool —
    // mirroring what the trained COL module learns on Spider, where gold
    // queries never project join keys — which keeps the power-set expansion
    // tractable on wide schemas such as MAS.
    if pq.select.is_hole() {
        let mut options: Vec<SelectColumn> = schema
            .all_columns()
            .filter(|c| !schema.is_key_column(*c))
            .map(SelectColumn::Column)
            .collect();
        options.push(SelectColumn::Star);
        let subsets = column_subsets(&options, config.max_select_columns);
        return Some(
            subsets
                .into_iter()
                .map(|cols| {
                    let mut child = pq.clone();
                    child.select = Slot::Filled(
                        cols.iter().map(|c| PartialSelectItem::with_column(*c)).collect(),
                    );
                    (Choice::SelectColumns(cols), child)
                })
                .collect(),
        );
    }
    let select = pq.select.as_ref().expect("select decided above");

    // 3. AGG module: one aggregate decision per projected item.
    if let Some(idx) = select.iter().position(|i| i.agg.is_hole()) {
        let column = *select[idx].col.as_ref().expect("column decided before aggregate");
        let candidates: Vec<Option<AggFunc>> = match column {
            SelectColumn::Star => vec![Some(AggFunc::Count)],
            SelectColumn::Column(c) => {
                let mut v = vec![None, Some(AggFunc::Count)];
                if schema.column(c).dtype == DataType::Number {
                    v.extend([
                        Some(AggFunc::Max),
                        Some(AggFunc::Min),
                        Some(AggFunc::Sum),
                        Some(AggFunc::Avg),
                    ]);
                }
                v
            }
        };
        return Some(
            candidates
                .into_iter()
                .map(|agg| {
                    let mut child = pq.clone();
                    if let Slot::Filled(items) = &mut child.select {
                        items[idx].agg = Slot::Filled(agg);
                    }
                    (Choice::Aggregate { column, agg }, child)
                })
                .collect(),
        );
    }

    // 4. COL module (WHERE): predicate columns (key columns excluded, as above).
    // Multisets are generated — the same column may carry two predicates, as in
    // the paper's motivating example (`year < 1995 OR year > 2000`).
    if clauses.where_clause && pq.where_predicates.is_hole() {
        let options: Vec<_> = schema.all_columns().filter(|c| !schema.is_key_column(*c)).collect();
        let mut out = Vec::new();
        for size in 1..=config.max_where_predicates.min(options.len()) {
            for combo in multiset_combinations(&options, size) {
                let mut child = pq.clone();
                child.where_predicates =
                    Slot::Filled(combo.iter().map(|c| PartialPredicate::with_column(*c)).collect());
                if combo.len() <= 1 {
                    child.where_op = Slot::Filled(LogicalOp::And);
                }
                out.push((Choice::WhereColumns(combo), child));
            }
        }
        return Some(out);
    }

    // 5. OP module: one operator decision per predicate.
    if clauses.where_clause {
        if let Some(preds) = pq.where_predicates.as_ref() {
            if let Some(idx) = preds.iter().position(|p| p.op.is_hole()) {
                let col = *preds[idx].col.as_ref().expect("predicate column decided first");
                let ops: Vec<CmpOp> = match schema.column(col).dtype {
                    DataType::Number => {
                        vec![CmpOp::Eq, CmpOp::Gt, CmpOp::Lt, CmpOp::Ge, CmpOp::Le, CmpOp::Between]
                    }
                    DataType::Text => vec![CmpOp::Eq, CmpOp::Like],
                };
                return Some(
                    ops.into_iter()
                        .map(|op| {
                            let mut child = pq.clone();
                            if let Slot::Filled(preds) = &mut child.where_predicates {
                                preds[idx].op = Slot::Filled(op);
                            }
                            (Choice::Operator { column: col, op }, child)
                        })
                        .collect(),
                );
            }
            // 6. Constant binding per predicate, from the tagged literals.
            if let Some(idx) = preds.iter().position(|p| p.value.is_hole()) {
                let col = *preds[idx].col.as_ref().expect("column decided");
                let op = *preds[idx].op.as_ref().expect("operator decided");
                let dtype = schema.column(col).dtype;
                let mut out = Vec::new();
                if op == CmpOp::Between {
                    let numbers: Vec<f64> = nlq
                        .literals
                        .iter()
                        .filter(|l| l.kind == LiteralKind::Number)
                        .filter_map(|l| l.value.as_number())
                        .collect();
                    for (i, lo) in numbers.iter().enumerate() {
                        for hi in numbers.iter().skip(i + 1) {
                            let (lo, hi) = if lo <= hi { (*lo, *hi) } else { (*hi, *lo) };
                            let mut child = pq.clone();
                            if let Slot::Filled(preds) = &mut child.where_predicates {
                                preds[idx].value = Slot::Filled(Value::Number(lo));
                                preds[idx].value2 = Some(Value::Number(hi));
                            }
                            out.push((
                                Choice::PredicateValue {
                                    column: col,
                                    op,
                                    value: Value::Number(lo),
                                    value2: Some(Value::Number(hi)),
                                },
                                child,
                            ));
                        }
                    }
                } else {
                    for lit in &nlq.literals {
                        let type_ok = match dtype {
                            DataType::Number => lit.kind == LiteralKind::Number,
                            DataType::Text => lit.kind == LiteralKind::Text,
                        };
                        if !type_ok && op != CmpOp::Like {
                            continue;
                        }
                        let value = if op == CmpOp::Like {
                            Value::text(format!("%{}%", lit.surface))
                        } else {
                            lit.value.clone()
                        };
                        let mut child = pq.clone();
                        if let Slot::Filled(preds) = &mut child.where_predicates {
                            preds[idx].value = Slot::Filled(value.clone());
                        }
                        out.push((
                            Choice::PredicateValue { column: col, op, value, value2: None },
                            child,
                        ));
                    }
                }
                return Some(out);
            }
            // 7. AND/OR module.
            if preds.len() > 1 && pq.where_op.is_hole() {
                return Some(
                    [LogicalOp::And, LogicalOp::Or]
                        .into_iter()
                        .map(|op| {
                            let mut child = pq.clone();
                            child.where_op = Slot::Filled(op);
                            (Choice::Connective(op), child)
                        })
                        .collect(),
                );
            }
        }
    }

    // 8. COL module (GROUP BY).
    if clauses.group_by && pq.group_by.is_hole() {
        let plain_select_cols: Vec<_> = select
            .iter()
            .filter(|i| matches!(i.agg.as_ref(), Some(None)))
            .filter_map(|i| match i.col.as_ref() {
                Some(SelectColumn::Column(c)) => Some(*c),
                _ => None,
            })
            .collect();
        let options: Vec<_> = if plain_select_cols.is_empty() {
            pq.join
                .as_ref()
                .map(|j| {
                    j.tables
                        .iter()
                        .flat_map(|t| schema.table_columns(*t))
                        .filter(|c| !schema.is_key_column(*c))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_else(|| {
                    schema.all_columns().filter(|c| !schema.is_key_column(*c)).collect()
                })
        } else {
            plain_select_cols
        };
        let mut out = Vec::new();
        for size in 1..=config.max_group_columns.min(options.len()) {
            for combo in combinations(&options, size) {
                let mut child = pq.clone();
                child.group_by = Slot::Filled(combo.clone());
                out.push((Choice::GroupBy(combo), child));
            }
        }
        return Some(out);
    }

    // 9. HAVING module.
    if clauses.group_by && pq.having.is_hole() {
        let mut out = Vec::new();
        // "No HAVING" candidate.
        let mut child = pq.clone();
        child.having = Slot::Filled(None);
        out.push((Choice::Having(None), child));
        let numbers: Vec<Value> = nlq
            .literals
            .iter()
            .filter(|l| l.kind == LiteralKind::Number)
            .map(|l| l.value.clone())
            .collect();
        if !numbers.is_empty() {
            // COUNT(*) plus aggregates over numeric projected columns.
            let mut agg_targets: Vec<(AggFunc, Option<duoquest_db::ColumnId>)> =
                vec![(AggFunc::Count, None)];
            for item in select {
                if let (Some(SelectColumn::Column(c)), Some(Some(agg))) =
                    (item.col.as_ref(), item.agg.as_ref())
                {
                    if *agg != AggFunc::Count {
                        agg_targets.push((*agg, Some(*c)));
                    }
                }
            }
            for (agg, col) in agg_targets {
                for op in [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le, CmpOp::Eq] {
                    for value in &numbers {
                        let mut child = pq.clone();
                        child.having = Slot::Filled(Some(PartialHaving {
                            agg: Slot::Filled(agg),
                            col: Slot::Filled(col),
                            op: Slot::Filled(op),
                            value: Slot::Filled(value.clone()),
                        }));
                        out.push((
                            Choice::Having(Some(HavingChoice {
                                agg,
                                col,
                                op,
                                value: value.clone(),
                            })),
                            child,
                        ));
                    }
                }
            }
        }
        return Some(out);
    }

    // 10. DESC/ASC + LIMIT module.
    if clauses.order_by && pq.order_by.is_hole() {
        let mut keys: Vec<OrderKey> = Vec::new();
        for item in select {
            match (item.col.as_ref(), item.agg.as_ref()) {
                (Some(SelectColumn::Column(c)), Some(None)) => keys.push(OrderKey::Column(*c)),
                (Some(SelectColumn::Column(c)), Some(Some(agg))) => {
                    keys.push(OrderKey::Aggregate(*agg, Some(*c)))
                }
                (Some(SelectColumn::Star), Some(Some(AggFunc::Count))) => {
                    keys.push(OrderKey::Aggregate(AggFunc::Count, None))
                }
                _ => {}
            }
        }
        keys.dedup();
        let mut limits: Vec<Option<usize>> = vec![None];
        for lit in &nlq.literals {
            if lit.kind == LiteralKind::Number {
                if let Some(n) = lit.value.as_number() {
                    if n > 0.0 && n <= 1000.0 && n.fract() == 0.0 {
                        limits.push(Some(n as usize));
                    }
                }
            }
        }
        let mut out = Vec::new();
        for key in keys {
            for desc in [false, true] {
                for limit in &limits {
                    let mut child = pq.clone();
                    child.order_by = Slot::Filled(Some(PartialOrder {
                        key: Slot::Filled(key),
                        desc: Slot::Filled(desc),
                        limit: Slot::Filled(*limit),
                    }));
                    out.push((
                        Choice::OrderBy(Some(OrderChoice { key, desc, limit: *limit })),
                        child,
                    ));
                }
            }
        }
        return Some(out);
    }

    None
}

/// All subsets of `options` of size 1..=`max_size`, each subset in canonical
/// (input) order. The projection list is therefore enumerated in schema order;
/// the TSQ synthesizer aligns its column order accordingly (see DESIGN.md).
fn column_subsets(options: &[SelectColumn], max_size: usize) -> Vec<Vec<SelectColumn>> {
    let mut out = Vec::new();
    for size in 1..=max_size.min(options.len()) {
        out.extend(combinations(options, size));
    }
    out
}

/// All `size`-element combinations *with repetition* of `items`, preserving
/// input order (used for WHERE columns, where a column may carry two predicates).
fn multiset_combinations<T: Clone>(items: &[T], size: usize) -> Vec<Vec<T>> {
    if size == 0 || items.is_empty() {
        return Vec::new();
    }
    // Enumerate non-decreasing index sequences of the requested length.
    let mut out = Vec::new();
    let mut indices = vec![0usize; size];
    loop {
        out.push(indices.iter().map(|&i| items[i].clone()).collect());
        // Advance to the next non-decreasing sequence.
        let mut pos = size;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            if indices[pos] + 1 < items.len() {
                indices[pos] += 1;
                for j in pos + 1..size {
                    indices[j] = indices[pos];
                }
                break;
            }
        }
    }
}

/// All `size`-element combinations of `items`, preserving input order.
fn combinations<T: Clone>(items: &[T], size: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut indices: Vec<usize> = (0..size).collect();
    if size == 0 || size > items.len() {
        return out;
    }
    loop {
        out.push(indices.iter().map(|&i| items[i].clone()).collect());
        // Advance the combination indices.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if indices[i] != i + items.len() - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        indices[i] += 1;
        for j in i + 1..size {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::test_fixtures::movie_db;
    use duoquest_nlq::{HeuristicGuidance, Literal, NoisyOracleGuidance, OracleConfig};
    use duoquest_sql::QueryBuilder;

    #[test]
    fn combinations_enumerate_correctly() {
        let items = vec![1, 2, 3, 4];
        assert_eq!(combinations(&items, 1).len(), 4);
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 3).len(), 4);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert_eq!(combinations(&items, 5).len(), 0);
        assert_eq!(combinations(&items, 2)[0], vec![1, 2]);
    }

    #[test]
    fn first_decision_is_the_clause_set() {
        let db = movie_db();
        let nlq = Nlq::new("movies before 1995");
        let children =
            enum_next_step(&PartialQuery::empty(), &db, &nlq, &DuoquestConfig::fast()).unwrap();
        assert_eq!(children.len(), 8);
        assert!(matches!(children[0].0, Choice::Clauses(_)));
    }

    #[test]
    fn perfect_oracle_with_tsq_finds_gold_query_first() {
        let db = movie_db();
        let schema = db.schema();
        // Gold: SELECT movies.name FROM movies WHERE movies.year < 1995
        let gold = QueryBuilder::new(schema)
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let model = NoisyOracleGuidance::with_config(gold.clone(), 1, OracleConfig::perfect());
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![crate::tsq::TsqCell::text("Forrest Gump")]);
        let mut found: Vec<SelectSpec> = Vec::new();
        let stats =
            enumerate(&db, &nlq, &model, Some(&tsq), &DuoquestConfig::fast(), |spec, _conf, _t| {
                found.push(spec);
                found.len() < 5
            });
        assert!(!found.is_empty(), "stats: {stats:?}");
        assert!(duoquest_sql::queries_equivalent(&found[0], &gold));
        assert!(stats.emitted >= 1);
        assert!(stats.expanded > 0);
        assert!(stats.rounds > 0);
        assert!(stats.total_pruned() > 0);
    }

    #[test]
    fn heuristic_guidance_also_finds_simple_query() {
        let db = movie_db();
        let schema = db.schema();
        let gold = QueryBuilder::new(schema)
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals(
            "show the names of movies from before 1995",
            vec![Literal::number(1995.0)],
        );
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![crate::tsq::TsqCell::text("Forrest Gump")]);
        let model = HeuristicGuidance::new();
        let mut matched = false;
        enumerate(&db, &nlq, &model, Some(&tsq), &DuoquestConfig::fast(), |spec, _c, _t| {
            if duoquest_sql::queries_equivalent(&spec, &gold) {
                matched = true;
                false
            } else {
                true
            }
        });
        assert!(matched);
    }

    #[test]
    fn without_tsq_more_candidates_survive() {
        let db = movie_db();
        let schema = db.schema();
        let gold = QueryBuilder::new(schema)
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let model = NoisyOracleGuidance::with_config(gold, 1, OracleConfig::perfect());
        let tsq = TableSketchQuery::with_types(vec![DataType::Text]);
        let mut config = DuoquestConfig::fast();
        config.max_candidates = 30;
        let mut with_tsq = 0usize;
        enumerate(&db, &nlq, &model, Some(&tsq), &config, |_s, _c, _t| {
            with_tsq += 1;
            true
        });
        let mut without_tsq = 0usize;
        enumerate(&db, &nlq, &model, None, &config, |_s, _c, _t| {
            without_tsq += 1;
            true
        });
        assert!(without_tsq >= with_tsq);
    }

    #[test]
    fn emitted_confidences_are_valid_probability_products() {
        let db = movie_db();
        let schema = db.schema();
        let gold = QueryBuilder::new(schema)
            .select("actor.name")
            .filter("actor.birth_yr", CmpOp::Gt, 1960)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("actors born after 1960", vec![Literal::number(1960.0)]);
        let model = NoisyOracleGuidance::new(gold, 11);
        let mut confidences: Vec<f64> = Vec::new();
        enumerate(&db, &nlq, &model, None, &DuoquestConfig::fast(), |_s, c, _t| {
            confidences.push(c);
            confidences.len() < 10
        });
        assert!(!confidences.is_empty());
        // Confidence scores are products of normalized per-decision scores, so
        // each lies in (0, 1]. Emission order follows Algorithm 1 (candidates
        // are emitted as soon as they are generated), so strict monotonicity is
        // not required — only validity of the scores.
        for c in &confidences {
            assert!(*c > 0.0 && *c <= 1.0, "invalid confidence {c}");
        }
    }

    #[test]
    fn max_candidates_budget_respected() {
        let db = movie_db();
        let schema = db.schema();
        let gold = QueryBuilder::new(schema).select("movies.name").build().unwrap();
        let nlq = Nlq::new("all movie names");
        let model = NoisyOracleGuidance::new(gold, 2);
        let mut config = DuoquestConfig::fast();
        config.max_candidates = 3;
        let mut seen = 0usize;
        let stats = enumerate(&db, &nlq, &model, None, &config, |_s, _c, _t| {
            seen += 1;
            true
        });
        assert!(seen <= 3);
        assert!(stats.emitted <= 3);
    }

    #[test]
    fn cache_counters_and_stage_timings_are_populated() {
        let db = movie_db();
        let schema = db.schema();
        let gold = QueryBuilder::new(schema)
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let model = NoisyOracleGuidance::with_config(gold, 1, OracleConfig::perfect());
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![crate::tsq::TsqCell::text("Forrest Gump")]);
        db.clear_probe_cache();
        let stats =
            enumerate(&db, &nlq, &model, Some(&tsq), &DuoquestConfig::fast(), |_s, _c, _t| true);
        // The verifier issues many structurally identical probes; the memo
        // cache must be absorbing the repeats.
        assert!(stats.cache_misses > 0, "stats: {stats:?}");
        assert!(stats.cache_hits > 0, "stats: {stats:?}");
        assert!(stats.cache_hit_rate() > 0.0);
        // The cheap stages run at least as often as the expensive probes.
        let timings = &stats.stage_timings;
        assert!(timings.calls_of(VerifyStage::Clauses) > 0);
        assert!(timings.calls_of(VerifyStage::ByColumn) > 0);
        assert!(
            timings.calls_of(VerifyStage::Clauses) >= timings.calls_of(VerifyStage::ByRow),
            "cascade should invoke cheap stages at least as often as expensive ones: {}",
            timings.summary()
        );
        assert!(timings.total() > Duration::ZERO);
    }

    /// Satellite contract: a cancellation fires **between `step()` calls**
    /// (at the next round boundary), not only inside chunks — the driver
    /// never needs a chunk in flight to notice it.
    #[test]
    fn round_driver_honors_cancel_between_steps() {
        let db = movie_db();
        let gold = QueryBuilder::new(db.schema()).select("movies.name").build().unwrap();
        let nlq = Nlq::new("all movie names");
        let model = NoisyOracleGuidance::new(gold, 2);
        let mut config = DuoquestConfig::fast();
        config.time_budget = None;
        config.max_candidates = usize::MAX;
        config.max_expansions = usize::MAX;
        let cancel = AtomicBool::new(false);
        let env = StepEnv {
            db: &db,
            nlq: &nlq,
            model: &model,
            config: &config,
            cancel: &cancel,
            clock: &SYSTEM_CLOCK,
        };
        let mut driver = RoundDriver::new(Instant::now(), None);

        // Run exactly one full round (submit + provide), then fire the token
        // with the driver idle between steps.
        let mut rounds_completed = 0;
        loop {
            match driver.step(&env) {
                StepOutcome::SubmitChunks(jobs) => {
                    let graph = JoinGraph::new(db.schema());
                    let verifier = Verifier::new(&db, None, &nlq.literals, config.semantic_rules);
                    let round_env = RoundEnv {
                        db: &db,
                        graph: &graph,
                        config: &config,
                        partial_verifier: &verifier,
                        complete_verifier: &verifier,
                        deadline: None,
                        cancel: &cancel,
                        clock: &SYSTEM_CLOCK,
                        trace: false,
                    };
                    driver.provide(vec![process_chunk(jobs, &round_env)]);
                    rounds_completed += 1;
                    if rounds_completed == 1 {
                        cancel.store(true, Ordering::SeqCst);
                    }
                }
                StepOutcome::Emit { .. } => {}
                StepOutcome::Done => break,
            }
        }
        let stats = driver.into_stats();
        assert!(stats.cancelled, "cancel must be observed at the next round boundary");
        assert!(!stats.exhausted);
        // One round ran; at most its drain could have submitted one more
        // beam, but the cancel fired before any further submit.
        assert!(rounds_completed <= 2, "cancel ignored for {rounds_completed} rounds");
    }

    /// Satellite contract: an external deadline in the past stops the driver
    /// at the next `step()`, before any further work is submitted.
    #[test]
    fn round_driver_honors_deadline_between_steps() {
        let db = movie_db();
        let gold = QueryBuilder::new(db.schema()).select("movies.name").build().unwrap();
        let nlq = Nlq::new("all movie names");
        let model = NoisyOracleGuidance::new(gold, 2);
        let mut config = DuoquestConfig::fast();
        config.time_budget = None;
        let cancel = AtomicBool::new(false);
        let env = StepEnv {
            db: &db,
            nlq: &nlq,
            model: &model,
            config: &config,
            cancel: &cancel,
            clock: &SYSTEM_CLOCK,
        };
        // A deadline that is already in the past when the first step runs.
        let start = Instant::now();
        let mut driver = RoundDriver::new(start, Some(start - Duration::from_millis(1)));
        match driver.step(&env) {
            StepOutcome::Done => {}
            _ => panic!("an expired deadline must stop the driver before any round"),
        }
        let stats = driver.into_stats();
        assert!(stats.deadline_exceeded);
        assert_eq!(stats.rounds, 0, "no round may start past the deadline");
        assert!(!stats.cancelled);
    }

    /// Protocol guard: stepping while chunk results are outstanding is a
    /// caller bug and must panic rather than corrupt the round state.
    #[test]
    fn round_driver_rejects_step_while_awaiting_results() {
        let db = movie_db();
        let gold = QueryBuilder::new(db.schema()).select("movies.name").build().unwrap();
        let nlq = Nlq::new("all movie names");
        let model = NoisyOracleGuidance::new(gold, 2);
        let config = DuoquestConfig::fast();
        let cancel = AtomicBool::new(false);
        let env = StepEnv {
            db: &db,
            nlq: &nlq,
            model: &model,
            config: &config,
            cancel: &cancel,
            clock: &SYSTEM_CLOCK,
        };
        let mut driver = RoundDriver::new(Instant::now(), None);
        let StepOutcome::SubmitChunks(_jobs) = driver.step(&env) else {
            panic!("first step submits the root expansion");
        };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            driver.step(&env);
        }));
        assert!(panicked.is_err(), "step with an outstanding round must panic");
    }

    #[test]
    fn parallel_rounds_match_sequential_exploration() {
        let db = movie_db();
        let schema = db.schema();
        let gold = QueryBuilder::new(schema)
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let model = NoisyOracleGuidance::new(gold, 9);
        let mut config = DuoquestConfig::fast();
        config.time_budget = None; // keep the comparison deterministic
        config.max_candidates = 25;

        let run = |config: &DuoquestConfig| {
            let mut emitted: Vec<(String, f64)> = Vec::new();
            enumerate(&db, &nlq, &model, None, config, |spec, conf, _t| {
                emitted.push((format!("{spec:?}"), conf));
                true
            });
            emitted
        };

        let sequential = run(&config);
        let parallel = run(&config.clone().with_parallelism(4, 1));
        // Same beam width ⇒ identical emission order, regardless of workers.
        assert_eq!(sequential, parallel);
        assert!(!sequential.is_empty());
    }
}
