//! A shared batch scheduler multiplexing many
//! [`SynthesisSession`](crate::session::SynthesisSession)s over one
//! long-lived worker pool.
//!
//! The paper's interactive setting implies many users issuing
//! dual-specification synthesis tasks concurrently. Giving every
//! [`SynthesisSession`](crate::session::SynthesisSession) its own worker
//! threads (the pre-scheduler design)
//! stalls at one-pool-per-session: N concurrent sessions on a K-core box
//! fight over cores with N×K threads, and a single expensive session can
//! monopolize the machine. The [`SessionScheduler`] instead owns **one**
//! worker pool for the whole process and serves any number of sessions from
//! it:
//!
//! * Each session's serial round loop is the `RoundDriver` **state machine**
//!   of `crate::enumerate` (beam pop, child expansion and scoring, ordered
//!   merge). A **driven** session parks that driver inside the scheduler: no
//!   OS thread exists per session, and when the driver needs to run, a pool
//!   worker resumes it inline. A blocking caller
//!   ([`SynthesisSession::run`](crate::session::SynthesisSession::run)) may
//!   instead drive the same state machine on its own thread.
//! * The expensive phase — join-path construction plus the ascending-cost
//!   verification cascade — is split into chunked **work units** and
//!   submitted to the scheduler's fairness-aware queue.
//! * Workers pull units in **weighted round-robin order across live
//!   sessions** (weight = the session's beam width times its priority
//!   multiplier), so one session with a huge fan-out cannot starve the
//!   others: every queue rotation serves each session before returning to
//!   the first.
//! * When the last outstanding chunk of a driven session's round returns,
//!   **the worker that finished it resumes the session's driver inline** —
//!   merging results, emitting candidates and submitting the next round —
//!   instead of waking a parked thread. Live-session capacity is therefore
//!   bounded by memory, not by OS thread count.
//! * A session's chunk results are reassembled **in original child order**
//!   before the merge, so its candidate emission sequence is byte-identical
//!   to a single-session run on a private pool — for any pool size
//!   (`tests/determinism.rs` asserts this under interleaved sessions).
//!
//! The pool also carries a **tick hook** ([`SchedulerHandle::set_tick`]): a
//! housekeeping callback the workers invoke at its requested time (between
//! units, or from a timed wait when the pool is idle). The service layer
//! uses it for deadline expiry of queued requests — folding what used to be
//! a dedicated housekeeper thread into the scheduler's own event loop.
//!
//! Pool-wide behaviour is observable through [`SessionScheduler::stats`]
//! (queue depth, busy workers, live sessions) and per-run through the
//! [`SchedulerRunStats`] embedded in [`EnumerationStats`].
//!
//! # Example
//!
//! Two sessions sharing one pool:
//!
//! ```
//! use duoquest_core::{DuoquestConfig, SessionScheduler, SynthesisSession};
//! use duoquest_db::{ColumnDef, Database, Schema, TableDef, Value};
//! use duoquest_nlq::{HeuristicGuidance, Literal, Nlq};
//! use std::sync::Arc;
//!
//! // A tiny in-memory database: one table of movies.
//! let mut schema = Schema::new("demo");
//! schema.add_table(TableDef::new(
//!     "movies",
//!     vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
//!     Some(0),
//! ));
//! let mut db = Database::new(schema).unwrap();
//! db.insert("movies", vec![Value::int(1), Value::text("Heat"), Value::int(1995)]).unwrap();
//! db.insert("movies", vec![Value::int(2), Value::text("Up"), Value::int(2009)]).unwrap();
//! db.rebuild_index();
//! let db = db.into_shared();
//!
//! // One pool, two concurrent sessions multiplexed over it.
//! let pool = SessionScheduler::new(2);
//! let model = Arc::new(HeuristicGuidance::new());
//! let sessions: Vec<_> = ["movie names before 2000", "movie names after 2000"]
//!     .into_iter()
//!     .map(|q| {
//!         let nlq = Nlq::with_literals(q, vec![Literal::number(2000.0)]);
//!         SynthesisSession::new(Arc::clone(&db), nlq, model.clone())
//!             .with_config(DuoquestConfig::fast())
//!             .with_scheduler(pool.handle())
//!     })
//!     .collect();
//! for session in sessions {
//!     let result = session.run();
//!     assert!(!result.candidates.is_empty());
//! }
//! assert_eq!(pool.stats().live_sessions, 0);
//! ```

use crate::clock::{system_clock, SharedClock};
use crate::config::{DuoquestConfig, EmissionPolicy};
use crate::engine::{Candidate, CandidateCollector, SynthesisResult};
use crate::enumerate::{
    drive_rounds, min_deadline, process_chunk, ChildJob, ChunkResult, EnumerationStats,
    RoundDispatcher, RoundDriver, RoundEnv, StepEnv, StepOutcome, MIN_PARALLEL_JOBS,
};
use crate::session::SessionControl;
use crate::tsq::TableSketchQuery;
use crate::verify::Verifier;
use duoquest_db::{Database, JoinGraph, RunCacheCounters, SelectSpec};
use duoquest_nlq::{GuidanceModel, Literal, Nlq};
use duoquest_obs::Trace;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A point-in-time snapshot of the pool, from [`SessionScheduler::stats`] or
/// [`SchedulerHandle::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Worker threads owned by the pool.
    pub workers: usize,
    /// Workers currently executing a unit.
    pub busy_workers: usize,
    /// Work units queued and not yet picked up.
    pub queue_depth: usize,
    /// Sessions currently registered (externally driven or scheduler-driven).
    pub live_sessions: usize,
    /// Work units executed since the pool started.
    pub units_executed: u64,
}

impl SchedulerStats {
    /// Render as a JSON object for scraping (hand-rolled; the vendored
    /// `serde` derives are no-ops).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"busy_workers\":{},\"queue_depth\":{},\"live_sessions\":{},\
             \"units_executed\":{}}}",
            self.workers,
            self.busy_workers,
            self.queue_depth,
            self.live_sessions,
            self.units_executed,
        )
    }
}

/// Shared-pool observations recorded by one synthesis run, surfaced in
/// [`EnumerationStats::scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerRunStats {
    /// Worker threads of the pool that served the run.
    pub pool_workers: usize,
    /// Work units this run submitted to the shared queue.
    pub units_submitted: u64,
    /// Work units this run executed inline (fan-outs too small to be worth
    /// the queue handoff) — on the driving thread for a blocking session, on
    /// the resuming pool worker for a driven one.
    pub units_inline: u64,
    /// Deepest shared queue observed while this run was submitting,
    /// including other sessions' units — a contention signal.
    pub queue_depth_peak: usize,
    /// Most busy workers observed while this run was submitting.
    pub busy_workers_peak: usize,
    /// Most live sessions observed while this run was submitting.
    pub live_sessions_peak: usize,
}

impl SchedulerRunStats {
    /// Render as a JSON object for scraping (hand-rolled; the vendored
    /// `serde` derives are no-ops).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"pool_workers\":{},\"units_submitted\":{},\"units_inline\":{},\
             \"queue_depth_peak\":{},\"busy_workers_peak\":{},\"live_sessions_peak\":{}}}",
            self.pool_workers,
            self.units_submitted,
            self.units_inline,
            self.queue_depth_peak,
            self.busy_workers_peak,
            self.live_sessions_peak,
        )
    }
}

/// Everything a pool worker needs to execute one of a session's work units,
/// owned (`'static`) so the long-lived pool can outlive any borrow of the
/// session's inputs. One context is built per synthesis run and shared by
/// `Arc` between the driving side and the workers.
struct SessionContext {
    db: Arc<Database>,
    tsq: Option<TableSketchQuery>,
    literals: Vec<Literal>,
    config: DuoquestConfig,
    graph: JoinGraph,
    /// Per-session probe-cache attribution: the shared database's cache is hit
    /// by every live session, these counters record only this session's
    /// traffic (partial-query and complete-query cascades separately).
    partial_counters: Arc<RunCacheCounters>,
    complete_counters: Arc<RunCacheCounters>,
    deadline: Option<Instant>,
    /// The session's cancellation token: workers check it between jobs, the
    /// fairness queue reaps queued units once it fires, and the driving side
    /// uses it to tell a cancellation disconnect from a pool shutdown.
    cancel: Arc<AtomicBool>,
    /// The pool's time source, shared by every session on it: deadline
    /// checks, emission timestamps and stage timings read this (virtual
    /// under the deterministic simulation harness).
    clock: SharedClock,
    /// Whether the session carries a request trace (chunk workers then record
    /// chunk spans into their local result buffers).
    trace: bool,
}

impl SessionContext {
    /// Run one chunk of the session's round: build borrow-scoped verifiers
    /// over the owned context (cheap — counter `Arc` clones and a few
    /// references) and hand off to the engine's chunk processor.
    fn process(&self, jobs: Vec<ChildJob>) -> ChunkResult {
        let partial_verifier = Verifier::new(
            &self.db,
            if self.config.prune_partial { self.tsq.as_ref() } else { None },
            &self.literals,
            self.config.semantic_rules && self.config.prune_partial,
        )
        .with_counters(Arc::clone(&self.partial_counters))
        .with_clock(self.clock.as_ref());
        let complete_verifier =
            Verifier::new(&self.db, self.tsq.as_ref(), &self.literals, self.config.semantic_rules)
                .with_counters(Arc::clone(&self.complete_counters))
                .with_clock(self.clock.as_ref());
        let env = RoundEnv {
            db: &self.db,
            graph: &self.graph,
            config: &self.config,
            partial_verifier: &partial_verifier,
            complete_verifier: &complete_verifier,
            deadline: self.deadline,
            cancel: &self.cancel,
            clock: self.clock.as_ref(),
            trace: self.trace,
        };
        process_chunk(jobs, &env)
    }
}

/// One queued unit of work.
enum WorkUnit {
    /// A chunk of an **externally driven** session (a blocking caller runs
    /// the round loop on its own thread and waits on `result_tx`).
    External {
        chunk_idx: usize,
        jobs: Vec<ChildJob>,
        ctx: Arc<SessionContext>,
        result_tx: Sender<(usize, std::thread::Result<ChunkResult>)>,
    },
    /// A chunk of a **scheduler-driven** session: the result is routed back
    /// into the session's parked round assembly, and the worker that
    /// completes the round resumes the session's driver inline.
    DrivenChunk { session: u64, chunk_idx: usize, jobs: Vec<ChildJob>, ctx: Arc<SessionContext> },
    /// Resume a driven session's parked driver (its initial kick, or a round
    /// completed entirely by cancellation reaping).
    Resume { session: u64 },
}

/// How a scheduler-driven session ended: the terminal value handed to its
/// completion callback (see [`crate::SynthesisSession::spawn_driven`]).
// The value moves exactly once, into the completion callback — boxing the
// result would add an allocation per completed session for no
// retained-memory win.
#[allow(clippy::large_enum_variant)]
pub enum DrivenOutcome {
    /// The run completed (including cancellation, deadline and shutdown
    /// wind-downs — those resolve through the ranked result's stats flags).
    Finished(SynthesisResult),
    /// A `step` or chunk panicked, poisoning this session alone. Carries the
    /// panic message when one could be extracted from the payload (`&str` and
    /// `String` payloads — i.e. everything `panic!` itself produces); `None`
    /// for exotic payloads or when the callback itself had to be abandoned.
    Poisoned(Option<String>),
}

/// Extract the human-readable message from a panic payload, as captured by
/// `std::panic::catch_unwind`. Covers the payloads `panic!` produces (`&str`
/// for literal messages, `String` for formatted ones); anything else — a
/// custom `panic_any` payload — yields `None`.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        return Some((*msg).to_string());
    }
    payload.downcast_ref::<String>().cloned()
}

/// The candidate sink of a driven session.
type DrivenSink = Box<dyn FnMut(&Candidate) -> bool + Send>;
/// The completion callback of a driven session, receiving how it ended.
type DrivenCompletion = Box<dyn FnOnce(DrivenOutcome) + Send>;

/// Everything a worker takes out of the slot to resume a driven session: the
/// state machine, the dedup/rank collector, the sinks' inputs and the
/// session's owned resources.
struct DrivenCore {
    driver: RoundDriver,
    collector: CandidateCollector,
    on_candidate: DrivenSink,
    ctx: Arc<SessionContext>,
    nlq: Nlq,
    model: Arc<dyn GuidanceModel>,
    run_stats: SchedulerRunStats,
    start: Instant,
}

/// The in-flight round of a parked driven session: chunk results keyed by
/// chunk index, completed when `remaining` hits zero.
struct RoundAssembly {
    results: Vec<Option<ChunkResult>>,
    remaining: usize,
    /// Streaming rounds only: the next chunk index to feed. Everything before
    /// it has already been handed to the driver and taken out of `results`.
    fed: usize,
    /// Whether this round streams contiguous chunk prefixes into the driver
    /// as they complete (any-k emission) instead of waiting for the full set.
    streaming: bool,
}

impl RoundAssembly {
    fn into_ordered_results(self) -> Vec<ChunkResult> {
        self.results.into_iter().map(|r| r.expect("every chunk reported")).collect()
    }

    /// Pull the contiguous run of completed-but-unfed chunks off a streaming
    /// round, advancing the feed cursor past them.
    fn take_contiguous(&mut self) -> Vec<ChunkResult> {
        let mut batch = Vec::new();
        while self.fed < self.results.len() {
            match self.results[self.fed].take() {
                Some(chunk) => {
                    batch.push(chunk);
                    self.fed += 1;
                }
                None => break,
            }
        }
        batch
    }
}

/// The scheduler-side state of one driven session.
struct DrivenSlot {
    /// The parked core; `None` while a worker holds it (actively stepping).
    parked: Option<DrivenCore>,
    /// The in-flight round, when chunks are outstanding.
    round: Option<RoundAssembly>,
    on_complete: Option<DrivenCompletion>,
}

/// One live session's slot in the fairness queue.
struct SessionQueue {
    id: u64,
    /// Scheduling weight — the session's beam width times its priority
    /// multiplier (interactive sessions register a larger multiplier than
    /// batch ones): units granted per round-robin rotation before the cursor
    /// moves on.
    weight: usize,
    /// Units remaining in the current rotation.
    quantum: usize,
    pending: VecDeque<WorkUnit>,
    /// The session's cancellation token: once it fires, queued units are
    /// dropped (reaped) instead of executed.
    cancel: Arc<AtomicBool>,
    /// `Some` for scheduler-driven sessions, `None` for externally driven
    /// (blocking) ones.
    driven: Option<DrivenSlot>,
}

/// The fairness-aware queue: weighted round-robin across live sessions.
#[derive(Default)]
struct QueueState {
    sessions: Vec<SessionQueue>,
    /// Rotation cursor into `sessions`.
    cursor: usize,
    /// Total queued units across all sessions.
    depth: usize,
    next_id: u64,
}

impl QueueState {
    /// The one registration path for both session kinds: allocate the next
    /// monotone id and append the slot — which is what keeps `sessions`
    /// sorted by id, the invariant [`QueueState::session_mut`]'s binary
    /// search depends on.
    fn insert_slot(
        &mut self,
        weight: usize,
        cancel: Arc<AtomicBool>,
        driven: Option<DrivenSlot>,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let weight = weight.max(1);
        self.sessions.push(SessionQueue {
            id,
            weight,
            quantum: weight,
            pending: VecDeque::new(),
            cancel,
            driven,
        });
        id
    }

    /// Slot lookup by id. Ids are handed out monotonically and `sessions`
    /// only ever appends fresh ids (removals preserve order), so the vector
    /// stays sorted by id and the lookup is a binary search — every chunk
    /// completion routes through here under the pool-wide lock, so this must
    /// not be a linear scan over a thousand live sessions.
    fn session_mut(&mut self, id: u64) -> Option<&mut SessionQueue> {
        let pos = self.sessions.binary_search_by_key(&id, |s| s.id).ok()?;
        Some(&mut self.sessions[pos])
    }

    /// Remove a session's slot entirely (its queued units drop with it),
    /// returning it so driven teardown can extract the completion callback.
    fn remove_session(&mut self, id: u64) -> Option<SessionQueue> {
        let pos = self.sessions.binary_search_by_key(&id, |s| s.id).ok()?;
        let removed = self.sessions.remove(pos);
        self.depth -= removed.pending.len();
        if pos < self.cursor {
            self.cursor -= 1;
        }
        Some(removed)
    }

    /// Drop the queued units of the session at `idx` if it has been
    /// cancelled, returning how many were reaped.
    ///
    /// For an **external** session every unit is dropped; its result senders
    /// disconnect, which the blocked driver observes as the cancellation
    /// taking effect. For a **driven** session the queued chunk units are
    /// dropped and their results fabricated as cancelled into the parked
    /// round assembly; if that completes the round, a `Resume` unit is
    /// queued so a worker winds the driver down (the driver observes the
    /// cancelled chunk flags — and the token itself — and finishes).
    fn reap_slot(&mut self, idx: usize) -> usize {
        let slot = &mut self.sessions[idx];
        if slot.pending.is_empty() || !slot.cancel.load(Ordering::Acquire) {
            return 0;
        }
        match &mut slot.driven {
            None => {
                let reaped = slot.pending.len();
                slot.pending.clear();
                self.depth -= reaped;
                reaped
            }
            Some(driven) => {
                let mut fabricated = 0usize;
                let mut kept = VecDeque::new();
                while let Some(unit) = slot.pending.pop_front() {
                    match unit {
                        WorkUnit::DrivenChunk { chunk_idx, .. } => {
                            if let Some(round) = &mut driven.round {
                                round.results[chunk_idx] =
                                    Some(ChunkResult { cancelled: true, ..ChunkResult::default() });
                                round.remaining -= 1;
                            }
                            fabricated += 1;
                        }
                        other => kept.push_back(other),
                    }
                }
                slot.pending = kept;
                self.depth -= fabricated;
                let round_complete =
                    driven.round.as_ref().map(|r| r.remaining == 0).unwrap_or(false);
                if fabricated > 0 && round_complete && driven.parked.is_some() {
                    let session = slot.id;
                    slot.pending.push_back(WorkUnit::Resume { session });
                    self.depth += 1;
                }
                fabricated
            }
        }
    }

    /// Pop the next unit in weighted round-robin order: the cursor session
    /// spends one quantum per pop and yields the cursor when its quantum (or
    /// queue) is exhausted, so a session with weight *w* gets at most *w*
    /// units per rotation and an expensive session cannot starve the rest.
    ///
    /// Cancelled sessions encountered along the way have their queued units
    /// reaped (dropped, never executed) — the unit-level half of
    /// cancellation; see [`QueueState::reap_slot`].
    fn pop(&mut self) -> Option<WorkUnit> {
        if self.depth == 0 || self.sessions.is_empty() {
            return None;
        }
        let n = self.sessions.len();
        // Two full rotations suffice: the first may only refresh exhausted
        // quanta, the second must find the queued work counted in `depth`.
        for _ in 0..(2 * n) {
            self.cursor %= n;
            self.reap_slot(self.cursor);
            let slot = &mut self.sessions[self.cursor];
            if slot.pending.is_empty() || slot.quantum == 0 {
                slot.quantum = slot.weight.max(1);
                self.cursor += 1;
                continue;
            }
            slot.quantum -= 1;
            self.depth -= 1;
            return slot.pending.pop_front();
        }
        None
    }

    /// Reap the queued units of every cancelled session (see
    /// [`QueueState::reap_slot`]); returns how many were dropped.
    fn reap_cancelled(&mut self) -> usize {
        let mut reaped = 0;
        for idx in 0..self.sessions.len() {
            reaped += self.reap_slot(idx);
        }
        reaped
    }
}

/// "No tick scheduled" sentinel for [`PoolCore::next_tick_us`].
const TICK_NONE: u64 = u64::MAX;

/// The housekeeping hook run by pool workers at its requested times.
type TickHook = Arc<dyn Fn() -> Option<Instant> + Send + Sync>;

/// Pool state shared between the scheduler owner, session handles and workers.
struct PoolCore {
    queue: Mutex<QueueState>,
    work_available: Condvar,
    workers: usize,
    busy: AtomicUsize,
    units_executed: AtomicU64,
    shutdown: AtomicBool,
    /// The pool's time source ([`crate::SystemClock`] in production; the
    /// deterministic simulation harness substitutes a
    /// [`crate::SimClock`]).
    clock: SharedClock,
    /// Anchor for the tick clock (ticks are stored as µs offsets from here).
    epoch: Instant,
    /// Next tick time in µs since `epoch`; [`TICK_NONE`] when unscheduled.
    next_tick_us: AtomicU64,
    tick_hook: Mutex<Option<TickHook>>,
}

impl PoolCore {
    fn stats(&self) -> SchedulerStats {
        let queue = self.queue.lock().expect("scheduler queue poisoned");
        SchedulerStats {
            workers: self.workers,
            busy_workers: self.busy.load(Ordering::Relaxed),
            queue_depth: queue.depth,
            live_sessions: queue.sessions.len(),
            units_executed: self.units_executed.load(Ordering::Relaxed),
        }
    }

    fn register(&self, weight: usize, cancel: Arc<AtomicBool>) -> u64 {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        queue.insert_slot(weight, cancel, None)
    }

    fn deregister(&self, id: u64) {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        queue.remove_session(id);
    }

    fn submit(&self, id: u64, units: Vec<WorkUnit>) {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        // After shutdown no worker will ever pop again: drop the units here
        // (disconnecting their result senders) so the submitting session gets
        // a disconnect — and the documented panic — instead of a silent hang.
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        let count = units.len();
        let Some(slot) = queue.session_mut(id) else { return };
        // A cancelled session's units are dropped instead of queued: the
        // submitting driver observes the disconnected result senders and
        // winds the session down.
        if slot.cancel.load(Ordering::Acquire) {
            return;
        }
        slot.pending.extend(units);
        queue.depth += count;
        drop(queue);
        self.work_available.notify_all();
    }

    /// Drop the queued units of every cancelled session; returns how many
    /// were reaped.
    fn reap_cancelled(&self) -> usize {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        queue.reap_cancelled()
    }

    /// Microseconds since the pool's epoch, per the pool's clock.
    fn now_us(&self) -> u64 {
        self.clock.now().saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Claim the tick if it is due: returns the hook to run (outside the
    /// queue lock) after atomically unscheduling it, so exactly one worker
    /// runs each due tick.
    fn claim_due_tick(&self) -> Option<TickHook> {
        let next = self.next_tick_us.load(Ordering::Acquire);
        if next == TICK_NONE || next > self.now_us() {
            return None;
        }
        if self
            .next_tick_us
            .compare_exchange(next, TICK_NONE, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        self.tick_hook.lock().expect("tick hook poisoned").clone()
    }

    /// Pull the next tick earlier (or schedule one): the hook will run at
    /// `at` or before. Wakes a sleeping worker so its timed wait re-anchors.
    fn request_tick(&self, at: Instant) {
        let at_us = at.saturating_duration_since(self.epoch).as_micros() as u64;
        let _ = self.next_tick_us.fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
            (at_us < cur).then_some(at_us)
        });
        // Take the lock so no worker can compute its wait timeout between
        // our store and the notify.
        let _guard = self.queue.lock().expect("scheduler queue poisoned");
        self.work_available.notify_all();
    }

    /// How long a sleeping worker may wait before the next tick is due.
    fn tick_timeout(&self) -> Option<Duration> {
        let next = self.next_tick_us.load(Ordering::Acquire);
        if next == TICK_NONE {
            return None;
        }
        Some(Duration::from_micros(next.saturating_sub(self.now_us())))
    }

    /// Worker side: block until a unit is available or the pool shuts down,
    /// running the housekeeping tick at its due times along the way.
    fn next_unit(&self) -> Option<WorkUnit> {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            // The tick runs between units even on a saturated pool — and
            // from a timed wait on an idle one — always outside the lock.
            if let Some(hook) = self.claim_due_tick() {
                drop(queue);
                // A panicking hook must not kill a fixed-pool worker: swallow
                // the unwind (the tick just stays unscheduled until the next
                // `request_tick`).
                let next = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook()))
                    .unwrap_or(None);
                if let Some(next) = next {
                    self.request_tick(next);
                }
                queue = self.queue.lock().expect("scheduler queue poisoned");
                continue;
            }
            if let Some(unit) = queue.pop() {
                return Some(unit);
            }
            queue = match self.tick_timeout() {
                // Under a simulated clock a *timed* wait would fire ticks on
                // real time passing — meaningless in simulation, and a real
                // sleep besides. Idle workers block untimed instead; the
                // clock's `advance` fires the waker registered at pool
                // construction, which notifies `work_available` so the loop
                // re-examines `claim_due_tick` against the advanced time.
                Some(timeout) if !self.clock.is_simulated() => {
                    self.work_available
                        .wait_timeout(queue, timeout)
                        .expect("scheduler queue poisoned")
                        .0
                }
                _ => self.work_available.wait(queue).expect("scheduler queue poisoned"),
            };
        }
    }
}

/// Record the pool's current contention into a run's stats. Caller holds the
/// queue lock (the snapshot is a couple of loads).
fn observe_into(run_stats: &mut SchedulerRunStats, depth: usize, live: usize, busy: usize) {
    run_stats.queue_depth_peak = run_stats.queue_depth_peak.max(depth);
    run_stats.busy_workers_peak = run_stats.busy_workers_peak.max(busy);
    run_stats.live_sessions_peak = run_stats.live_sessions_peak.max(live);
}

fn worker_loop(core: Arc<PoolCore>) {
    while let Some(unit) = core.next_unit() {
        core.busy.fetch_add(1, Ordering::Relaxed);
        execute_unit(&core, unit);
        core.busy.fetch_sub(1, Ordering::Relaxed);
        core.units_executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Run one popped unit on this worker.
fn execute_unit(core: &Arc<PoolCore>, unit: WorkUnit) {
    match unit {
        WorkUnit::External { chunk_idx, jobs, ctx, result_tx } => {
            // Catch panics so a poisoned unit kills its session (which
            // rethrows), not the shared worker serving every other session.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.process(jobs)));
            // A dropped receiver means the session abandoned the round; fine.
            let _ = result_tx.send((chunk_idx, outcome));
        }
        WorkUnit::DrivenChunk { session, chunk_idx, jobs, ctx } => {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.process(jobs))) {
                Ok(result) => complete_chunk(core, session, chunk_idx, result),
                // A chunk panic poisons only its own session: the slot is
                // torn down and the completion callback observes `Poisoned`,
                // carrying the panic message for the session's post-mortem.
                Err(payload) => complete_driven(
                    core,
                    session,
                    DrivenOutcome::Poisoned(panic_message(payload.as_ref())),
                ),
            }
        }
        WorkUnit::Resume { session } => {
            let taken = {
                let mut queue = core.queue.lock().expect("scheduler queue poisoned");
                let Some(slot) = queue.session_mut(session) else { return };
                let Some(driven) = &mut slot.driven else { return };
                // A stale resume (the core is held by another worker, or the
                // round is still in flight) is dropped harmlessly.
                if driven.round.as_ref().is_some_and(|r| r.remaining > 0) {
                    return;
                }
                driven.parked.take().map(|core_state| (core_state, driven.round.take()))
            };
            if let Some((mut core_state, round)) = taken {
                if let Some(round) = round {
                    if round.streaming {
                        // A streaming round resumed here was completed by
                        // cancellation reaping: feed the unfed suffix (the
                        // fabricated cancelled chunks) so the driver observes
                        // the cancellation and winds down.
                        let fed = round.fed;
                        let batch: Vec<ChunkResult> = round
                            .results
                            .into_iter()
                            .skip(fed)
                            .map(|r| r.expect("every chunk reported"))
                            .collect();
                        if !feed_driven_checked(core, session, &mut core_state, batch, true) {
                            return;
                        }
                    } else {
                        core_state.driver.provide(round.into_ordered_results());
                    }
                }
                resume_driven(core, session, core_state);
            }
        }
    }
}

/// What [`complete_chunk`] found ready to run once the queue lock dropped.
#[allow(clippy::large_enum_variant)]
enum ChunkReady {
    /// Barrier round completed: provide the full ordered set and resume.
    Barrier(DrivenCore, RoundAssembly),
    /// Streaming round grew its contiguous fed prefix: feed the new chunks
    /// (`last` when the prefix now covers the whole round).
    Stream { core_state: DrivenCore, batch: Vec<ChunkResult>, last: bool },
}

/// Route a driven chunk's result into its session's round assembly; when the
/// round completes (barrier) or its contiguous prefix grows (streaming), this
/// worker feeds/resumes the session's driver inline.
fn complete_chunk(core: &Arc<PoolCore>, session: u64, chunk_idx: usize, result: ChunkResult) {
    let ready = {
        let mut queue = core.queue.lock().expect("scheduler queue poisoned");
        let (depth, live) = (queue.depth, queue.sessions.len());
        let busy = core.busy.load(Ordering::Relaxed);
        let Some(slot) = queue.session_mut(session) else { return };
        let Some(driven) = &mut slot.driven else { return };
        let Some(round) = &mut driven.round else { return };
        round.results[chunk_idx] = Some(result);
        round.remaining -= 1;
        if let Some(parked) = &mut driven.parked {
            // Mid-round contention sample (mirrors the blocking path's
            // per-chunk observation).
            observe_into(&mut parked.run_stats, depth, live, busy);
        }
        if round.streaming {
            // Streaming (any-k): feed the new contiguous prefix — unless
            // another worker holds the core mid-feed (`parked` empty), in
            // which case its repark loop re-checks under this lock and picks
            // the chunk up.
            if driven.parked.is_none() {
                None
            } else {
                let batch = round.take_contiguous();
                if batch.is_empty() {
                    None
                } else {
                    let last = round.fed == round.results.len();
                    let core_state = driven.parked.take().expect("checked parked above");
                    if last {
                        driven.round = None;
                    }
                    Some(ChunkReady::Stream { core_state, batch, last })
                }
            }
        } else if round.remaining == 0 {
            let core_state = driven.parked.take().expect("round in flight with no parked driver");
            let round = driven.round.take().expect("round checked above");
            Some(ChunkReady::Barrier(core_state, round))
        } else {
            None
        }
    };
    match ready {
        Some(ChunkReady::Barrier(mut core_state, round)) => {
            core_state.driver.provide(round.into_ordered_results());
            resume_driven(core, session, core_state);
        }
        Some(ChunkReady::Stream { mut core_state, batch, last }) => {
            if !feed_driven_checked(core, session, &mut core_state, batch, last) {
                return;
            }
            if last {
                resume_driven(core, session, core_state);
            } else {
                repark_after_feed(core, session, core_state);
            }
        }
        None => {}
    }
}

/// Feed a batch of streamed chunk results into a driven session's driver,
/// delivering any candidates the dominance gate releases through the
/// session's collector and sink (exactly the emission path `resume_driven`
/// uses for barrier rounds).
fn feed_driven(s: &mut DrivenCore, batch: Vec<ChunkResult>, last: bool) {
    let DrivenCore { driver, collector, on_candidate, ctx, nlq, model, .. } = s;
    let env = StepEnv {
        db: &ctx.db,
        nlq,
        model: model.as_ref(),
        config: &ctx.config,
        cancel: &ctx.cancel,
        clock: ctx.clock.as_ref(),
    };
    driver.feed(batch, last, &env, &mut |spec, confidence, emitted_at| {
        collector.offer(spec, confidence, emitted_at, on_candidate.as_mut())
    });
}

/// [`feed_driven`] under the same panic isolation as a resume: a panicking
/// consumer sink poisons only this session, never the pool worker. Returns
/// whether the session survived the feed.
fn feed_driven_checked(
    core: &Arc<PoolCore>,
    session: u64,
    s: &mut DrivenCore,
    batch: Vec<ChunkResult>,
    last: bool,
) -> bool {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| feed_driven(s, batch, last))) {
        Ok(()) => true,
        Err(payload) => {
            complete_driven(
                core,
                session,
                DrivenOutcome::Poisoned(panic_message(payload.as_ref())),
            );
            false
        }
    }
}

/// Re-park a streaming driven core after a mid-round feed — or keep feeding:
/// chunks that completed while this worker held the core were stored without
/// being fed (their workers saw `parked` empty), so re-check under the lock
/// until nothing new is waiting, then park.
fn repark_after_feed(core: &Arc<PoolCore>, session: u64, mut s: DrivenCore) {
    loop {
        let (batch, last) = {
            let mut queue = core.queue.lock().expect("scheduler queue poisoned");
            let Some(slot) = queue.session_mut(session) else {
                // The slot is gone only on teardown races; drop the session.
                return;
            };
            let Some(driven) = &mut slot.driven else { return };
            let Some(round) = &mut driven.round else {
                driven.parked = Some(s);
                return;
            };
            let batch = round.take_contiguous();
            if batch.is_empty() {
                driven.parked = Some(s);
                return;
            }
            let last = round.fed == round.results.len();
            if last {
                driven.round = None;
            }
            (batch, last)
        };
        if !feed_driven_checked(core, session, &mut s, batch, last) {
            return;
        }
        if last {
            resume_driven(core, session, s);
            return;
        }
    }
}

/// What a resume run left behind.
// Transient return value, consumed immediately by `resume_driven`'s caller —
// boxing the result would add an allocation per completed session for no
// retained-memory win.
#[allow(clippy::large_enum_variant)]
enum ResumeExit {
    /// The driver submitted a round too big to run inline: park it.
    Park(Box<DrivenCore>, Vec<ChildJob>),
    /// The resume ran [`INLINE_ROUND_YIELD`] consecutive small rounds:
    /// requeue a `Resume` and give the fairness queue (and the tick) a turn.
    Yield(Box<DrivenCore>),
    /// The run finished; the final ranked result is ready.
    Done(SynthesisResult),
}

/// Consecutive sub-[`MIN_PARALLEL_JOBS`] rounds a resume may run before it
/// must yield the worker back to the fairness queue. Without this bound, a
/// driven session whose every round is tiny would run to completion inside
/// one `Resume` unit — monopolizing a pool worker past the weighted
/// round-robin, delaying the tick hook, and (on a 1-worker pool) starving
/// every other session for its whole runtime. Yielding is pure scheduling:
/// it never changes what the session emits.
const INLINE_ROUND_YIELD: u32 = 32;

/// The shared end-of-run epilogue of every scheduled run (driven or
/// blocking): fold the session's cache/scan counters and its pool
/// observations into the engine stats. One copy, so driven-session stats
/// can never silently diverge from blocking-session stats.
fn fill_run_counters(
    stats: &mut EnumerationStats,
    ctx: &SessionContext,
    run_stats: SchedulerRunStats,
) {
    let (partial_hits, partial_misses) = ctx.partial_counters.snapshot();
    let (complete_hits, complete_misses) = ctx.complete_counters.snapshot();
    stats.cache_hits = partial_hits + complete_hits;
    stats.cache_misses = partial_misses + complete_misses;
    stats.cache_bytes = ctx.db.cache_stats().bytes;
    let (partial_scanned, partial_short) = ctx.partial_counters.scan_snapshot();
    let (complete_scanned, complete_short) = ctx.complete_counters.scan_snapshot();
    stats.rows_scanned = partial_scanned + complete_scanned;
    stats.rows_short_circuited = partial_short + complete_short;
    let (partial_lk, partial_via, partial_bail) = ctx.partial_counters.index_snapshot();
    let (complete_lk, complete_via, complete_bail) = ctx.complete_counters.index_snapshot();
    stats.index_lookups = partial_lk + complete_lk;
    stats.rows_via_index = partial_via + complete_via;
    stats.probes_bailed_empty = partial_bail + complete_bail;
    let (partial_sf_hits, partial_sf_leaders, partial_sf_wait) =
        ctx.partial_counters.single_flight_snapshot();
    let (complete_sf_hits, complete_sf_leaders, complete_sf_wait) =
        ctx.complete_counters.single_flight_snapshot();
    stats.single_flight_hits = partial_sf_hits + complete_sf_hits;
    stats.single_flight_leaders = partial_sf_leaders + complete_sf_leaders;
    stats.single_flight_wait_us = partial_sf_wait + complete_sf_wait;
    stats.scheduler = Some(run_stats);
}

/// Final stats assembly of a driven run (mirrors the blocking paths'
/// epilogue). `force_cancelled` marks runs wound down by a scheduler
/// shutdown that never reached a cooperative check.
fn finalize_driven(s: DrivenCore, force_cancelled: bool) -> SynthesisResult {
    let DrivenCore { driver, collector, ctx, run_stats, start, .. } = s;
    let mut stats = driver.into_stats();
    if force_cancelled {
        stats.cancelled = true;
    }
    stats.elapsed = ctx.clock.now().saturating_duration_since(start);
    fill_run_counters(&mut stats, &ctx, run_stats);
    collector.finish(stats)
}

/// Step a driven session's driver until it parks a round, yields the worker
/// (after [`INLINE_ROUND_YIELD`] consecutive small rounds), or finishes.
/// Candidates are delivered to the session's sink from here — i.e. on a pool
/// worker — and small fan-outs run inline without touching the queue.
fn resume_driven(core: &Arc<PoolCore>, session: u64, s: DrivenCore) {
    let exit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut s = s;
        // One `resume` span per worker occupancy: how long this worker held
        // the session's driver (stepping, emitting, running small rounds
        // inline) before parking, yielding or finishing.
        let resume_trace = s
            .driver
            .trace()
            .cloned()
            .map(|trace| (trace, s.ctx.clock.now(), Arc::clone(&s.ctx.clock)));
        let record_exit = |exit: ResumeExit| {
            if let Some((trace, started, clock)) = &resume_trace {
                trace.record_span("resume", *started, clock.now());
            }
            exit
        };
        let mut inline_streak = 0u32;
        loop {
            let action = {
                let DrivenCore { driver, collector, on_candidate, ctx, nlq, model, .. } = &mut s;
                let env = StepEnv {
                    db: &ctx.db,
                    nlq,
                    model: model.as_ref(),
                    config: &ctx.config,
                    cancel: &ctx.cancel,
                    clock: ctx.clock.as_ref(),
                };
                match driver.step(&env) {
                    StepOutcome::Emit { spec, confidence, emitted_at } => {
                        if !collector.offer(spec, confidence, emitted_at, on_candidate.as_mut()) {
                            driver.halt();
                        }
                        None
                    }
                    StepOutcome::SubmitChunks(jobs) => Some(jobs),
                    StepOutcome::Done => {
                        return record_exit(ResumeExit::Done(finalize_driven(s, false)))
                    }
                }
            };
            if let Some(jobs) = action {
                if jobs.len() < MIN_PARALLEL_JOBS {
                    s.run_stats.units_inline += 1;
                    let result = s.ctx.process(jobs);
                    s.driver.provide(vec![result]);
                    inline_streak += 1;
                    if inline_streak >= INLINE_ROUND_YIELD {
                        return record_exit(ResumeExit::Yield(Box::new(s)));
                    }
                    continue;
                }
                return record_exit(ResumeExit::Park(Box::new(s), jobs));
            }
        }
    }));
    match exit {
        Ok(ResumeExit::Park(core_state, jobs)) => park_round(core, session, *core_state, jobs),
        Ok(ResumeExit::Yield(core_state)) => yield_resume(core, session, *core_state),
        Ok(ResumeExit::Done(result)) => {
            complete_driven(core, session, DrivenOutcome::Finished(result))
        }
        // A panic inside `step` (a guidance model or consumer-sink bug)
        // poisons only this session; the worker survives. The payload's
        // message travels with the outcome so the serving layer can put it
        // in the request's terminal event.
        Err(payload) => {
            complete_driven(core, session, DrivenOutcome::Poisoned(panic_message(payload.as_ref())))
        }
    }
}

/// Split one round's jobs into the pool's contiguous scheduling chunks:
/// ~2 per worker so the fairness queue can interleave sessions mid-round.
/// Chunk size only affects scheduling granularity, never results (chunk
/// results are reassembled in job order on merge). Shared by the driven
/// ([`park_round`]) and blocking ([`dispatch_round`]) paths so their
/// scheduling behaviour cannot silently diverge.
fn chunk_jobs(jobs: Vec<ChildJob>, workers: usize) -> Vec<Vec<ChildJob>> {
    let chunk_size = jobs.len().div_ceil(workers * 2).max(MIN_PARALLEL_JOBS / 2);
    let mut chunks: Vec<Vec<ChildJob>> = Vec::new();
    let mut remaining = jobs;
    while !remaining.is_empty() {
        let tail = remaining.split_off(remaining.len().min(chunk_size));
        chunks.push(remaining);
        remaining = tail;
    }
    chunks
}

/// Park a driven session's round: chunk the jobs into the fairness queue and
/// store the driver back in its slot until the last chunk returns.
fn park_round(core: &Arc<PoolCore>, session: u64, mut s: DrivenCore, jobs: Vec<ChildJob>) {
    let chunks = chunk_jobs(jobs, core.workers);
    let sent = chunks.len();
    s.run_stats.units_submitted += sent as u64;
    if let Some(trace) = s.driver.trace() {
        trace.event("dispatch", s.ctx.clock.now(), Some(format!("chunks={sent}")));
    }

    let mut queue = core.queue.lock().expect("scheduler queue poisoned");
    let (depth, live) = (queue.depth + sent, queue.sessions.len());
    observe_into(&mut s.run_stats, depth, live, core.busy.load(Ordering::Relaxed));
    let Some(slot) = queue.session_mut(session) else {
        // The slot is gone only on teardown races; drop the round.
        return;
    };
    let ctx = Arc::clone(&s.ctx);
    slot.driven.as_mut().expect("driven slot").round = Some(RoundAssembly {
        results: (0..sent).map(|_| None).collect(),
        remaining: sent,
        fed: 0,
        streaming: ctx.config.emission == EmissionPolicy::AnyK,
    });
    for (chunk_idx, chunk_jobs) in chunks.into_iter().enumerate() {
        slot.pending.push_back(WorkUnit::DrivenChunk {
            session,
            chunk_idx,
            jobs: chunk_jobs,
            ctx: Arc::clone(&ctx),
        });
    }
    slot.driven.as_mut().expect("driven slot").parked = Some(s);
    queue.depth += sent;
    drop(queue);
    core.work_available.notify_all();
}

/// Re-park a driven session between rounds (no chunks outstanding) and
/// requeue its `Resume`, so the fairness queue decides — in weighted
/// round-robin order, alongside every other session's units — when its next
/// burst of small rounds runs. See [`INLINE_ROUND_YIELD`].
fn yield_resume(core: &Arc<PoolCore>, session: u64, s: DrivenCore) {
    let mut queue = core.queue.lock().expect("scheduler queue poisoned");
    let Some(slot) = queue.session_mut(session) else {
        // The slot is gone only on teardown races; drop the session.
        return;
    };
    let driven = slot.driven.as_mut().expect("driven slot");
    driven.parked = Some(s);
    slot.pending.push_back(WorkUnit::Resume { session });
    queue.depth += 1;
    drop(queue);
    core.work_available.notify_all();
}

/// Tear a driven session down and deliver its completion:
/// [`DrivenOutcome::Finished`] for a completed (or cancelled) run,
/// [`DrivenOutcome::Poisoned`] for a panicked one.
fn complete_driven(core: &Arc<PoolCore>, session: u64, outcome: DrivenOutcome) {
    let on_complete = {
        let mut queue = core.queue.lock().expect("scheduler queue poisoned");
        queue
            .remove_session(session)
            .and_then(|slot| slot.driven)
            .and_then(|driven| driven.on_complete)
    };
    if let Some(cb) = on_complete {
        // The completion callback is arbitrary consumer code running on a
        // fixed-pool worker: a panic in it must poison only this delivery,
        // never the worker (other sessions' parked drivers depend on it).
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cb(outcome)));
    }
}

/// Register a fully owned session to be driven by the pool: no OS thread is
/// created — pool workers resume the session's `RoundDriver` as its chunks
/// complete, deliver candidates through `on_candidate` (return `false` to
/// stop early) and hand the session's [`DrivenOutcome`] to `on_complete`
/// ([`DrivenOutcome::Poisoned`] if the session panicked). Called via
/// [`SynthesisSession::spawn_driven`](crate::session::SynthesisSession::spawn_driven).
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_driven_session(
    handle: &SchedulerHandle,
    db: Arc<Database>,
    nlq: Nlq,
    tsq: Option<TableSketchQuery>,
    model: Arc<dyn GuidanceModel>,
    config: DuoquestConfig,
    control: SessionControl,
    priority_weight: usize,
    trace: Option<Arc<Trace>>,
    on_candidate: DrivenSink,
    on_complete: DrivenCompletion,
) {
    let clock = Arc::clone(&handle.core.clock);
    let start = clock.now();
    let deadline =
        min_deadline(config.time_budget.map(|budget| start + budget), control.deadline());
    let graph = JoinGraph::new(db.schema());
    let literals = nlq.literals.clone();
    let weight = config.beam_width.max(1).saturating_mul(priority_weight.max(1));
    let ctx = Arc::new(SessionContext {
        db,
        tsq,
        literals,
        config,
        graph,
        partial_counters: Arc::new(RunCacheCounters::default()),
        complete_counters: Arc::new(RunCacheCounters::default()),
        deadline,
        cancel: control.flag(),
        clock,
        trace: trace.is_some(),
    });
    let core_state = DrivenCore {
        driver: RoundDriver::new(start, deadline).with_trace(trace),
        collector: CandidateCollector::new(),
        on_candidate,
        ctx,
        nlq,
        model,
        run_stats: SchedulerRunStats {
            pool_workers: handle.core.workers,
            ..SchedulerRunStats::default()
        },
        start,
    };
    let core = &handle.core;
    let mut queue = core.queue.lock().expect("scheduler queue poisoned");
    if core.shutdown.load(Ordering::Acquire) {
        drop(queue);
        // The pool will never run this session: resolve it as cancelled
        // instead of stranding the completion callback.
        on_complete(DrivenOutcome::Finished(finalize_driven(core_state, true)));
        return;
    }
    let id = queue.insert_slot(
        weight,
        control.flag(),
        Some(DrivenSlot { parked: Some(core_state), round: None, on_complete: Some(on_complete) }),
    );
    let slot = queue.session_mut(id).expect("slot just inserted");
    slot.pending.push_back(WorkUnit::Resume { session: id });
    queue.depth += 1;
    drop(queue);
    core.work_available.notify_all();
}

/// A shared, long-lived worker pool serving any number of concurrent
/// [`SynthesisSession`](crate::session::SynthesisSession)s (see the
/// [module docs](self) for the design).
///
/// Dropping the scheduler shuts the pool down and joins its workers.
/// Scheduler-**driven** sessions still parked at that point are wound down
/// as cancelled (their completion callbacks fire with the candidates found
/// so far); a **blocking** session still running on the pool will panic on
/// its next round, so keep the scheduler alive for as long as any blocking
/// caller holds a [`SchedulerHandle`] to it.
pub struct SessionScheduler {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
}

impl SessionScheduler {
    /// Spawn a pool of `workers` threads (minimum 1). The typical process
    /// creates exactly one scheduler, sized to the machine, and hands
    /// [`SessionScheduler::handle`] clones to every session.
    pub fn new(workers: usize) -> Self {
        SessionScheduler::new_with_clock(workers, system_clock())
    }

    /// Spawn a pool whose time source is `clock` instead of the real clock.
    /// Under a simulated clock ([`crate::SimClock`]) idle workers never
    /// perform timed waits — the clock's `advance` wakes them (via a waker
    /// registered here) so due ticks run immediately in simulated time.
    pub fn new_with_clock(workers: usize, clock: SharedClock) -> Self {
        let workers = workers.max(1);
        let epoch = clock.now();
        let core = Arc::new(PoolCore {
            queue: Mutex::new(QueueState::default()),
            work_available: Condvar::new(),
            workers,
            busy: AtomicUsize::new(0),
            units_executed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            clock,
            epoch,
            next_tick_us: AtomicU64::new(TICK_NONE),
            tick_hook: Mutex::new(None),
        });
        // A simulated clock advancing may make the scheduled tick due: wake
        // the idle workers so one claims it. Weak, so the waker (owned by the
        // clock, which the pool owns) cannot keep the pool core alive.
        let waker_core = Arc::downgrade(&core);
        core.clock.register_waker(Arc::new(move || {
            if let Some(core) = waker_core.upgrade() {
                // Take the lock so no worker can compute its wait decision
                // between the clock's advance and this notify.
                let _guard = core.queue.lock().expect("scheduler queue poisoned");
                core.work_available.notify_all();
            }
        }));
        let handles = (0..workers)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("duoquest-pool-{i}"))
                    .spawn(move || worker_loop(core))
                    .expect("failed to spawn scheduler worker")
            })
            .collect();
        SessionScheduler { core, workers: handles }
    }

    /// Size the pool to the machine (one worker per available CPU).
    pub fn for_machine() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        SessionScheduler::new(n)
    }

    /// A cloneable handle sessions use to submit work to this pool.
    pub fn handle(&self) -> SchedulerHandle {
        SchedulerHandle { core: Arc::clone(&self.core) }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// Snapshot the pool's current load.
    pub fn stats(&self) -> SchedulerStats {
        self.core.stats()
    }
}

impl Drop for SessionScheduler {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.work_available_broadcast();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With every worker joined, finalize what's left behind:
        //
        // * **Driven** sessions still parked are wound down as cancelled —
        //   their completion callbacks fire with the candidates found so far
        //   (the moral equivalent of joining per-session driver threads,
        //   without the threads).
        // * **External** sessions' queued units drop with their slots:
        //   dropping a unit drops its result sender, so a blocked driver
        //   observes a disconnect (and panics, per the struct docs) instead
        //   of hanging forever. Units submitted after this point are dropped
        //   by `submit` itself, which checks `shutdown` under the same lock.
        let sessions = {
            let mut queue = self.core.queue.lock().expect("scheduler queue poisoned");
            queue.depth = 0;
            std::mem::take(&mut queue.sessions)
        };
        for slot in sessions {
            let Some(mut driven) = slot.driven else { continue };
            match (driven.parked.take(), driven.on_complete.take()) {
                // A panicking completion callback must not abort the sweep
                // and strand the remaining sessions' consumers.
                (Some(core_state), Some(cb)) => {
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cb(DrivenOutcome::Finished(finalize_driven(core_state, true)))
                    }));
                }
                (None, Some(cb)) => {
                    // A session mid-resume during the sweep (its core is out
                    // on a worker) has no result to deliver: resolve it as
                    // poisoned without a message.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cb(DrivenOutcome::Poisoned(None))
                    }));
                }
                _ => {}
            }
        }
    }
}

impl SessionScheduler {
    fn work_available_broadcast(&self) {
        // Take the lock so no worker can check `shutdown` and block between
        // our store and the notify.
        let _guard = self.core.queue.lock().expect("scheduler queue poisoned");
        self.core.work_available.notify_all();
    }
}

impl std::fmt::Debug for SessionScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionScheduler").field("stats", &self.stats()).finish()
    }
}

/// A cloneable handle to a [`SessionScheduler`]'s pool. Attach one to a
/// session with
/// [`SynthesisSession::with_scheduler`](crate::session::SynthesisSession::with_scheduler).
#[derive(Clone)]
pub struct SchedulerHandle {
    core: Arc<PoolCore>,
}

impl SchedulerHandle {
    /// Snapshot the pool's current load.
    pub fn stats(&self) -> SchedulerStats {
        self.core.stats()
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// Eagerly reap the queued (session, round-chunk) units of every
    /// cancelled session, returning how many were dropped. Workers also reap
    /// lazily whenever they pop, so calling this is an optimization — it
    /// frees the queue immediately instead of at the next pop — not a
    /// requirement for correctness. Fired automatically when a
    /// [`CandidateStream`](crate::session::CandidateStream) is dropped.
    pub fn reap_cancelled(&self) -> usize {
        self.core.reap_cancelled()
    }

    /// Install the pool's housekeeping **tick hook**: pool workers call it
    /// at (or after) each requested time — between work units on a busy
    /// pool, from a timed wait on an idle one — with no scheduler lock held.
    /// The hook returns the next time it wants to run, or `None` to sleep
    /// until the next [`SchedulerHandle::request_tick`].
    ///
    /// One hook per pool: installing a new one replaces the previous. The
    /// serving layer uses this for deadline expiry of queued requests,
    /// folding its former housekeeper thread into the pool's event loop.
    pub fn set_tick(&self, hook: impl Fn() -> Option<Instant> + Send + Sync + 'static) {
        *self.core.tick_hook.lock().expect("tick hook poisoned") = Some(Arc::new(hook));
    }

    /// Ask the tick hook to run at `at` or earlier (monotone: an earlier
    /// pending request wins). Safe to call from any thread, including hook
    /// and sink callbacks.
    pub fn request_tick(&self, at: Instant) {
        self.core.request_tick(at);
    }

    /// The clock this pool schedules against — [`SystemClock`](crate::SystemClock)
    /// unless the pool was built with [`SessionScheduler::new_with_clock`].
    /// Layers above the pool (e.g. the serving layer) should read time from
    /// here so simulated runs stay on the simulated timeline.
    pub fn clock(&self) -> SharedClock {
        Arc::clone(&self.core.clock)
    }
}

impl std::fmt::Debug for SchedulerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerHandle").field("stats", &self.stats()).finish()
    }
}

/// Run one session's synthesis over the shared pool **from the calling
/// thread**: the round loop's state machine is driven here, phase-2 chunks
/// go through the scheduler's fairness queue, and chunk results are
/// reassembled in original child order before the merge — so emission is
/// byte-identical to a private-pool run. (Scheduler-driven sessions use
/// [`spawn_driven_session`] instead and occupy no thread at all.)
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_rounds_scheduled(
    handle: &SchedulerHandle,
    db: &Arc<Database>,
    nlq: &Nlq,
    model: &dyn GuidanceModel,
    tsq: Option<&TableSketchQuery>,
    config: &DuoquestConfig,
    control: &SessionControl,
    priority_weight: usize,
    trace: Option<Arc<Trace>>,
    on_candidate: &mut dyn FnMut(SelectSpec, f64, Duration) -> bool,
) -> EnumerationStats {
    let clock = Arc::clone(&handle.core.clock);
    let start = clock.now();
    let mut stats = EnumerationStats::default();
    let deadline =
        min_deadline(config.time_budget.map(|budget| start + budget), control.deadline());
    let ctx = Arc::new(SessionContext {
        db: Arc::clone(db),
        tsq: tsq.cloned(),
        literals: nlq.literals.clone(),
        config: config.clone(),
        graph: JoinGraph::new(db.schema()),
        partial_counters: Arc::new(RunCacheCounters::default()),
        complete_counters: Arc::new(RunCacheCounters::default()),
        deadline,
        cancel: control.flag(),
        clock: Arc::clone(&clock),
        trace: trace.is_some(),
    });

    let core = &handle.core;
    // The guard deregisters on drop, so a panicking session (e.g. a rethrown
    // worker panic) cannot leak its queue slot and distort fairness forever.
    // Fairness weight = beam width × priority multiplier: a session's share
    // of each round-robin rotation scales with both how much work a round
    // exposes and how urgent its requester is.
    let weight = config.beam_width.max(1).saturating_mul(priority_weight.max(1));
    let registration = SessionRegistration { core, id: core.register(weight, control.flag()) };
    let session_id = registration.id;
    let mut run_stats =
        SchedulerRunStats { pool_workers: core.workers, ..SchedulerRunStats::default() };

    let mut dispatcher =
        ScheduledDispatcher { core, session_id, ctx: &ctx, run_stats: &mut run_stats };
    drive_rounds(
        db,
        nlq,
        model,
        config,
        deadline,
        control.flag_ref(),
        start,
        clock.as_ref(),
        trace,
        &mut stats,
        on_candidate,
        &mut dispatcher,
    );

    drop(registration);

    stats.elapsed = clock.now().saturating_duration_since(start);
    fill_run_counters(&mut stats, &ctx, run_stats);
    stats
}

/// Deregisters a session's queue slot on drop (panic-safe).
struct SessionRegistration<'a> {
    core: &'a Arc<PoolCore>,
    id: u64,
}

impl Drop for SessionRegistration<'_> {
    fn drop(&mut self) {
        self.core.deregister(self.id);
    }
}

/// [`RoundDispatcher`] over the shared pool for a **blocking** scheduled
/// session: barrier rounds go through [`dispatch_round`], streaming (any-k)
/// rounds through [`dispatch_round_streaming`].
struct ScheduledDispatcher<'a> {
    core: &'a Arc<PoolCore>,
    session_id: u64,
    ctx: &'a Arc<SessionContext>,
    run_stats: &'a mut SchedulerRunStats,
}

impl RoundDispatcher for ScheduledDispatcher<'_> {
    fn run(&mut self, jobs: Vec<ChildJob>) -> Vec<ChunkResult> {
        dispatch_round(self.core, self.session_id, self.ctx, jobs, self.run_stats)
    }

    fn run_streaming(&mut self, jobs: Vec<ChildJob>, feed: &mut dyn FnMut(Vec<ChunkResult>, bool)) {
        dispatch_round_streaming(self.core, self.session_id, self.ctx, jobs, self.run_stats, feed)
    }
}

/// Submit one round's jobs as chunked work units and wait for every chunk,
/// returning results in original job order. Small fan-outs run inline on the
/// driving thread — the queue handoff costs more than it saves. Everything
/// else goes through the queue even on a 1-worker pool: the pool *is* the
/// process's compute budget, so heavy work must serialize through it rather
/// than spill onto N session driver threads.
fn dispatch_round(
    core: &Arc<PoolCore>,
    session_id: u64,
    ctx: &Arc<SessionContext>,
    jobs: Vec<ChildJob>,
    run_stats: &mut SchedulerRunStats,
) -> Vec<ChunkResult> {
    if jobs.len() < MIN_PARALLEL_JOBS {
        run_stats.units_inline += 1;
        return vec![ctx.process(jobs)];
    }

    let (result_tx, result_rx) = mpsc::channel();
    let units: Vec<WorkUnit> = chunk_jobs(jobs, core.workers)
        .into_iter()
        .enumerate()
        .map(|(chunk_idx, chunk)| WorkUnit::External {
            chunk_idx,
            jobs: chunk,
            ctx: Arc::clone(ctx),
            result_tx: result_tx.clone(),
        })
        .collect();
    drop(result_tx);
    let sent = units.len();
    run_stats.units_submitted += sent as u64;
    core.submit(session_id, units);

    // Observe pool-wide contention while our units are in flight: once right
    // after the submit (queue at its deepest) and once after each chunk
    // completes (workers mid-execution on the remaining chunks) — a single
    // post-submit sample would systematically read the workers as idle.
    let observe = |run_stats: &mut SchedulerRunStats| {
        let snapshot = core.stats();
        observe_into(
            run_stats,
            snapshot.queue_depth,
            snapshot.live_sessions,
            snapshot.busy_workers,
        );
    };
    observe(run_stats);

    let mut results: Vec<Option<ChunkResult>> = (0..sent).map(|_| None).collect();
    for received in 0..sent {
        let Ok((idx, outcome)) = result_rx.recv() else {
            // Every remaining sender is gone before reporting. Either the
            // session was cancelled and its queued units were reaped (their
            // senders dropped with them) — wind the round down — or the pool
            // was shut down under a live session, which is a caller bug.
            assert!(
                ctx.cancel.load(Ordering::Acquire),
                "scheduler shut down while a session was running on it"
            );
            return vec![ChunkResult { cancelled: true, ..ChunkResult::default() }];
        };
        if received + 1 < sent {
            observe(run_stats);
        }
        match outcome {
            Ok(result) => results[idx] = Some(result),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    results.into_iter().map(|r| r.expect("every chunk reported")).collect()
}

/// Streaming variant of [`dispatch_round`] for any-k emission: chunk results
/// are fed onward as contiguous job-order prefixes the moment they complete,
/// instead of waiting for the whole round. The delivered chunk sequence is
/// exactly [`dispatch_round`]'s, just incremental — emission identity is the
/// driver's dominance gate's job, not this function's.
fn dispatch_round_streaming(
    core: &Arc<PoolCore>,
    session_id: u64,
    ctx: &Arc<SessionContext>,
    jobs: Vec<ChildJob>,
    run_stats: &mut SchedulerRunStats,
    feed: &mut dyn FnMut(Vec<ChunkResult>, bool),
) {
    if jobs.len() < MIN_PARALLEL_JOBS {
        run_stats.units_inline += 1;
        feed(vec![ctx.process(jobs)], true);
        return;
    }

    let (result_tx, result_rx) = mpsc::channel();
    let units: Vec<WorkUnit> = chunk_jobs(jobs, core.workers)
        .into_iter()
        .enumerate()
        .map(|(chunk_idx, chunk)| WorkUnit::External {
            chunk_idx,
            jobs: chunk,
            ctx: Arc::clone(ctx),
            result_tx: result_tx.clone(),
        })
        .collect();
    drop(result_tx);
    let sent = units.len();
    run_stats.units_submitted += sent as u64;
    core.submit(session_id, units);

    // Same contention sampling as the barrier path (see `dispatch_round`).
    let observe = |run_stats: &mut SchedulerRunStats| {
        let snapshot = core.stats();
        observe_into(
            run_stats,
            snapshot.queue_depth,
            snapshot.live_sessions,
            snapshot.busy_workers,
        );
    };
    observe(run_stats);

    let mut results: Vec<Option<ChunkResult>> = (0..sent).map(|_| None).collect();
    let mut fed = 0usize;
    for received in 0..sent {
        let Ok((idx, outcome)) = result_rx.recv() else {
            assert!(
                ctx.cancel.load(Ordering::Acquire),
                "scheduler shut down while a session was running on it"
            );
            // Cancellation reaped the remaining chunks: a fabricated
            // cancelled chunk closes the round so the driver winds down
            // (mirrors the barrier path's single cancelled result).
            feed(vec![ChunkResult { cancelled: true, ..ChunkResult::default() }], true);
            return;
        };
        if received + 1 < sent {
            observe(run_stats);
        }
        match outcome {
            Ok(result) => results[idx] = Some(result),
            Err(panic) => std::panic::resume_unwind(panic),
        }
        let mut batch = Vec::new();
        while fed < sent {
            match results[fed].take() {
                Some(chunk) => {
                    batch.push(chunk);
                    fed += 1;
                }
                None => break,
            }
        }
        if !batch.is_empty() {
            feed(batch, fed == sent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SynthesisSession;
    use crate::tsq::{TableSketchQuery, TsqCell};
    use crate::verify::test_fixtures::movie_db;
    use duoquest_db::{CmpOp, DataType};
    use duoquest_nlq::{Literal, NoisyOracleGuidance, OracleConfig};
    use duoquest_sql::QueryBuilder;

    fn fixture() -> (Arc<Database>, Nlq, Arc<dyn GuidanceModel>, duoquest_db::SelectSpec) {
        let db = movie_db().into_shared();
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let model: Arc<dyn GuidanceModel> =
            Arc::new(NoisyOracleGuidance::with_config(gold.clone(), 3, OracleConfig::perfect()));
        (db, nlq, model, gold)
    }

    #[test]
    fn weighted_round_robin_interleaves_sessions() {
        // Session A (id 0): weight 1, 4 units tagged 0..4.
        // Session B (id 1): weight 2, 4 units tagged 100..104.
        let mut queue = QueueState::default();
        let (tx, _rx) = mpsc::channel();
        let ctx = test_ctx();
        for (id, weight, tag_base) in [(0u64, 1usize, 0usize), (1, 2, 100)] {
            queue.next_id = queue.next_id.max(id + 1);
            let mut pending = VecDeque::new();
            for i in 0..4 {
                pending.push_back(WorkUnit::External {
                    chunk_idx: tag_base + i,
                    jobs: Vec::new(),
                    ctx: Arc::clone(&ctx),
                    result_tx: tx.clone(),
                });
            }
            queue.depth += pending.len();
            queue.sessions.push(SessionQueue {
                id,
                weight,
                quantum: weight,
                pending,
                cancel: Arc::new(AtomicBool::new(false)),
                driven: None,
            });
        }
        let mut order = Vec::new();
        while let Some(unit) = queue.pop() {
            let WorkUnit::External { chunk_idx, .. } = unit else { panic!("external unit") };
            order.push(chunk_idx);
        }
        assert_eq!(queue.depth, 0);
        // Weight-proportional service: one A unit, then two B units, per
        // rotation, until a side drains; then the remainder streams out.
        assert_eq!(order, vec![0, 100, 101, 1, 102, 103, 2, 3]);
    }

    fn test_ctx() -> Arc<SessionContext> {
        let db = movie_db().into_shared();
        let graph = JoinGraph::new(db.schema());
        Arc::new(SessionContext {
            db,
            tsq: None,
            literals: Vec::new(),
            config: DuoquestConfig::fast(),
            graph,
            partial_counters: Arc::new(RunCacheCounters::default()),
            complete_counters: Arc::new(RunCacheCounters::default()),
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
            clock: system_clock(),
            trace: false,
        })
    }

    fn expect_finished(outcome: DrivenOutcome) -> crate::engine::SynthesisResult {
        match outcome {
            DrivenOutcome::Finished(result) => result,
            DrivenOutcome::Poisoned(msg) => panic!("session poisoned: {msg:?}"),
        }
    }

    #[test]
    fn scheduled_session_matches_private_pool_session() {
        let (db, nlq, model, _gold) = fixture();
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![TsqCell::text("Forrest Gump")]);
        let mut config = DuoquestConfig::fast();
        config.time_budget = None;
        config.max_candidates = 30;

        let private = SynthesisSession::new(Arc::clone(&db), nlq.clone(), Arc::clone(&model))
            .with_tsq(tsq.clone())
            .with_config(config.clone())
            .run();

        let pool = SessionScheduler::new(3);
        let shared = SynthesisSession::new(db, nlq, model)
            .with_tsq(tsq)
            .with_config(config)
            .with_scheduler(pool.handle())
            .run();

        let render = |r: &crate::engine::SynthesisResult| {
            r.candidates.iter().map(|c| (format!("{:?}", c.spec), c.confidence)).collect::<Vec<_>>()
        };
        assert_eq!(render(&private), render(&shared));
        assert_eq!(private.stats.emitted, shared.stats.emitted);
        assert_eq!(private.stats.expanded, shared.stats.expanded);
        assert_eq!(private.stats.total_pruned(), shared.stats.total_pruned());
        // The shared run reports pool observations; this private run does not,
        // because `fast()` keeps `workers = 1` and the session ran inline.
        // (A private run with `workers > 1` would route through a
        // compatibility pool and also set `stats.scheduler`.)
        assert!(private.stats.scheduler.is_none());
        let run = shared.stats.scheduler.expect("shared run records scheduler stats");
        assert_eq!(run.pool_workers, 3);
        assert!(run.units_submitted + run.units_inline > 0);
    }

    /// The tentpole path: a session driven entirely by the pool (no session
    /// thread) emits byte-identically to a private blocking run.
    #[test]
    fn driven_session_matches_private_pool_session() {
        let (db, nlq, model, _gold) = fixture();
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![TsqCell::text("Forrest Gump")]);
        let mut config = DuoquestConfig::fast();
        config.time_budget = None;
        config.max_candidates = 30;

        let private = SynthesisSession::new(Arc::clone(&db), nlq.clone(), Arc::clone(&model))
            .with_tsq(tsq.clone())
            .with_config(config.clone())
            .run();

        for pool_workers in [1usize, 2, 4] {
            let pool = SessionScheduler::new(pool_workers);
            let (tx, rx) = mpsc::channel();
            let (seen_tx, seen_rx) = mpsc::channel();
            SynthesisSession::new(Arc::clone(&db), nlq.clone(), Arc::clone(&model))
                .with_tsq(tsq.clone())
                .with_config(config.clone())
                .spawn_driven(
                    &pool.handle(),
                    Box::new(move |c: &Candidate| seen_tx.send(c.clone()).is_ok()),
                    Box::new(move |result| {
                        let _ = tx.send(result);
                    }),
                );
            let result = expect_finished(
                rx.recv_timeout(Duration::from_secs(30)).expect("driven session completed"),
            );
            let render = |r: &crate::engine::SynthesisResult| {
                r.candidates
                    .iter()
                    .map(|c| (format!("{:?}", c.spec), c.confidence))
                    .collect::<Vec<_>>()
            };
            assert_eq!(render(&private), render(&result), "{pool_workers}-worker pool diverged");
            assert_eq!(private.stats.emitted, result.stats.emitted);
            assert_eq!(private.stats.expanded, result.stats.expanded);
            assert_eq!(private.stats.total_pruned(), result.stats.total_pruned());
            // Candidates streamed through the sink in emission order, and the
            // candidate channel closed before the completion fired.
            let streamed: Vec<Candidate> = seen_rx.try_iter().collect();
            assert_eq!(streamed.len(), result.candidates.len());
            let stats = pool.stats();
            assert_eq!(stats.live_sessions, 0, "driven session must deregister");
            assert_eq!(stats.queue_depth, 0, "no orphaned units");
        }
    }

    /// A driven session's sink returning `false` stops the run (the
    /// consumer-halt half of the state-machine protocol).
    #[test]
    fn driven_session_sink_can_stop_early() {
        let (db, nlq, model, _gold) = fixture();
        let mut config = DuoquestConfig::fast();
        config.time_budget = None;
        config.max_candidates = 10_000;
        config.max_expansions = 1_000_000;
        let pool = SessionScheduler::new(1);
        let (tx, rx) = mpsc::channel();
        SynthesisSession::new(db, nlq, model).with_config(config).spawn_driven(
            &pool.handle(),
            Box::new(|_c: &Candidate| false), // stop at the first candidate
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        let result = expect_finished(
            rx.recv_timeout(Duration::from_secs(30)).expect("driven session completed"),
        );
        assert_eq!(result.candidates.len(), 1, "halt after the first candidate");
        assert_eq!(pool.stats().live_sessions, 0);
    }

    #[test]
    fn shutdown_disconnects_queued_units_instead_of_stranding_sessions() {
        let pool = SessionScheduler::new(1);
        let core = Arc::clone(&pool.core);
        let id = core.register(1, Arc::new(AtomicBool::new(false)));
        drop(pool); // shutdown: workers joined, queue drained
        let (tx, rx) = mpsc::channel();
        let unit =
            WorkUnit::External { chunk_idx: 0, jobs: Vec::new(), ctx: test_ctx(), result_tx: tx };
        core.submit(id, vec![unit]);
        // A post-shutdown submit must drop the unit so the session's receiver
        // disconnects (turning into the documented panic) rather than block
        // forever on a queue no worker will ever pop.
        assert!(rx.recv().is_err(), "unit must be dropped, not stranded");
        assert_eq!(core.stats().queue_depth, 0);
    }

    /// Dropping the pool under a live driven session resolves it (cancelled,
    /// best-so-far) instead of stranding its completion callback.
    #[test]
    fn shutdown_finalizes_parked_driven_sessions() {
        let (db, nlq, model, _gold) = fixture();
        let mut config = DuoquestConfig::fast();
        config.time_budget = Some(Duration::from_secs(60));
        config.max_candidates = usize::MAX;
        config.max_expansions = usize::MAX;
        let pool = SessionScheduler::new(1);
        let (tx, rx) = mpsc::channel();
        SynthesisSession::new(db, nlq, model).with_config(config).spawn_driven(
            &pool.handle(),
            Box::new(|_c: &Candidate| true),
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        // Give the pool a moment to start the session, then tear it down.
        std::thread::sleep(Duration::from_millis(30));
        drop(pool);
        let result = expect_finished(
            rx.recv_timeout(Duration::from_secs(10))
                .expect("shutdown must resolve the driven session"),
        );
        assert!(result.stats.cancelled, "shutdown winds driven sessions down as cancelled");
    }

    #[test]
    fn pool_stats_track_registration() {
        let pool = SessionScheduler::new(2);
        assert_eq!(pool.workers(), 2);
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.live_sessions, 0);
        assert_eq!(stats.queue_depth, 0);
        let id = pool.core.register(4, Arc::new(AtomicBool::new(false)));
        assert_eq!(pool.stats().live_sessions, 1);
        pool.core.deregister(id);
        assert_eq!(pool.stats().live_sessions, 0);
    }

    #[test]
    fn many_sessions_share_one_pool_concurrently() {
        let (db, nlq, model, gold) = fixture();
        let pool = SessionScheduler::new(2);
        let mut config = DuoquestConfig::fast();
        config.time_budget = None;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = SynthesisSession::new(Arc::clone(&db), nlq.clone(), model.clone())
                    .with_config(config.clone())
                    .with_scheduler(pool.handle());
                std::thread::spawn(move || session.run())
            })
            .collect();
        for handle in handles {
            let result = handle.join().expect("session thread panicked");
            assert_eq!(result.rank_of(&gold), Some(1));
        }
        let stats = pool.stats();
        assert_eq!(stats.live_sessions, 0, "all sessions deregistered");
        assert_eq!(stats.queue_depth, 0, "no orphaned units");
    }

    /// The fairness half of the yield bound: a single long-running driven
    /// session on a 1-worker pool must not pin the worker — the tick hook
    /// still fires at (about) its requested time while the session grinds,
    /// because resumes park between rounds and yield after bursts of
    /// inline-sized rounds.
    #[test]
    fn grinding_driven_session_does_not_starve_the_tick() {
        let (db, nlq, model, _gold) = fixture();
        let mut config = DuoquestConfig::fast();
        config.time_budget = Some(Duration::from_secs(30));
        config.max_candidates = usize::MAX;
        config.max_expansions = usize::MAX;
        let pool = SessionScheduler::new(1);
        let fired = Arc::new(AtomicBool::new(false));
        let fired_hook = Arc::clone(&fired);
        pool.handle().set_tick(move || {
            fired_hook.store(true, Ordering::SeqCst);
            None
        });
        let control = SessionControl::new();
        let (tx, rx) = mpsc::channel();
        SynthesisSession::new(db, nlq, model)
            .with_config(config)
            .with_control(control.clone())
            .spawn_driven(
                &pool.handle(),
                Box::new(|_c: &Candidate| true),
                Box::new(move |result| {
                    let _ = tx.send(result);
                }),
            );
        pool.handle().request_tick(Instant::now() + Duration::from_millis(30));
        let deadline = Instant::now() + Duration::from_secs(10);
        while !fired.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "tick starved by the driven session");
            std::thread::sleep(Duration::from_millis(5));
        }
        control.cancel();
        pool.handle().reap_cancelled();
        let result = expect_finished(
            rx.recv_timeout(Duration::from_secs(10)).expect("cancelled session resolves"),
        );
        assert!(result.stats.cancelled);
        assert_eq!(pool.stats().live_sessions, 0);
    }

    /// The scheduler tick: the hook runs at its requested time on an idle
    /// pool (from a worker's timed wait) and can reschedule itself.
    #[test]
    fn tick_hook_fires_on_an_idle_pool() {
        let pool = SessionScheduler::new(1);
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_hook = Arc::clone(&fired);
        pool.handle().set_tick(move || {
            fired_hook.fetch_add(1, Ordering::SeqCst);
            None
        });
        pool.handle().request_tick(Instant::now() + Duration::from_millis(20));
        let deadline = Instant::now() + Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "tick never fired on the idle pool");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "one request fires one tick");
    }
}
