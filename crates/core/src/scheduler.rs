//! A shared batch scheduler multiplexing many
//! [`SynthesisSession`](crate::session::SynthesisSession)s over one
//! long-lived worker pool.
//!
//! The paper's interactive setting implies many users issuing
//! dual-specification synthesis tasks concurrently. Giving every
//! [`SynthesisSession`](crate::session::SynthesisSession) its own worker
//! threads (the pre-scheduler design)
//! stalls at one-pool-per-session: N concurrent sessions on a K-core box
//! fight over cores with N×K threads, and a single expensive session can
//! monopolize the machine. The [`SessionScheduler`] instead owns **one**
//! worker pool for the whole process and serves any number of sessions from
//! it:
//!
//! * Each session runs its serial round loop (beam pop, child expansion and
//!   scoring, ordered merge) on its own driver thread, exactly as before.
//! * The expensive phase — join-path construction plus the ascending-cost
//!   verification cascade — is split into chunked **work units** and
//!   submitted to the scheduler's fairness-aware queue.
//! * Workers pull units in **weighted round-robin order across live
//!   sessions** (weight = the session's beam width), so one session with a
//!   huge fan-out cannot starve the others: every queue rotation serves each
//!   session before returning to the first.
//! * A session's chunk results are reassembled **in original child order**
//!   before the merge, so its candidate emission sequence is byte-identical
//!   to a single-session run on a private pool — for any pool size
//!   (`tests/determinism.rs` asserts this under 2–8 interleaved sessions).
//!
//! Pool-wide behaviour is observable through [`SessionScheduler::stats`]
//! (queue depth, busy workers, live sessions) and per-run through the
//! [`SchedulerRunStats`] embedded in [`EnumerationStats`].
//!
//! # Example
//!
//! Two sessions sharing one pool:
//!
//! ```
//! use duoquest_core::{DuoquestConfig, SessionScheduler, SynthesisSession};
//! use duoquest_db::{ColumnDef, Database, Schema, TableDef, Value};
//! use duoquest_nlq::{HeuristicGuidance, Literal, Nlq};
//! use std::sync::Arc;
//!
//! // A tiny in-memory database: one table of movies.
//! let mut schema = Schema::new("demo");
//! schema.add_table(TableDef::new(
//!     "movies",
//!     vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
//!     Some(0),
//! ));
//! let mut db = Database::new(schema).unwrap();
//! db.insert("movies", vec![Value::int(1), Value::text("Heat"), Value::int(1995)]).unwrap();
//! db.insert("movies", vec![Value::int(2), Value::text("Up"), Value::int(2009)]).unwrap();
//! db.rebuild_index();
//! let db = db.into_shared();
//!
//! // One pool, two concurrent sessions multiplexed over it.
//! let pool = SessionScheduler::new(2);
//! let model = Arc::new(HeuristicGuidance::new());
//! let sessions: Vec<_> = ["movie names before 2000", "movie names after 2000"]
//!     .into_iter()
//!     .map(|q| {
//!         let nlq = Nlq::with_literals(q, vec![Literal::number(2000.0)]);
//!         SynthesisSession::new(Arc::clone(&db), nlq, model.clone())
//!             .with_config(DuoquestConfig::fast())
//!             .with_scheduler(pool.handle())
//!     })
//!     .collect();
//! for session in sessions {
//!     let result = session.run();
//!     assert!(!result.candidates.is_empty());
//! }
//! assert_eq!(pool.stats().live_sessions, 0);
//! ```

use crate::config::DuoquestConfig;
use crate::enumerate::{
    drive_rounds, min_deadline, process_chunk, ChildJob, ChunkResult, EnumerationStats, RoundEnv,
    MIN_PARALLEL_JOBS,
};
use crate::session::SessionControl;
use crate::tsq::TableSketchQuery;
use crate::verify::Verifier;
use duoquest_db::{Database, JoinGraph, RunCacheCounters, SelectSpec};
use duoquest_nlq::{GuidanceModel, Literal, Nlq};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A point-in-time snapshot of the pool, from [`SessionScheduler::stats`] or
/// [`SchedulerHandle::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Worker threads owned by the pool.
    pub workers: usize,
    /// Workers currently executing a unit.
    pub busy_workers: usize,
    /// Work units queued and not yet picked up.
    pub queue_depth: usize,
    /// Sessions currently registered (running a synthesis round loop).
    pub live_sessions: usize,
    /// Work units executed since the pool started.
    pub units_executed: u64,
}

impl SchedulerStats {
    /// Render as a JSON object for scraping (hand-rolled; the vendored
    /// `serde` derives are no-ops).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"busy_workers\":{},\"queue_depth\":{},\"live_sessions\":{},\
             \"units_executed\":{}}}",
            self.workers,
            self.busy_workers,
            self.queue_depth,
            self.live_sessions,
            self.units_executed,
        )
    }
}

/// Shared-pool observations recorded by one synthesis run, surfaced in
/// [`EnumerationStats::scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerRunStats {
    /// Worker threads of the pool that served the run.
    pub pool_workers: usize,
    /// Work units this run submitted to the shared queue.
    pub units_submitted: u64,
    /// Work units this run executed inline on its driver thread (fan-outs
    /// too small to be worth the queue handoff).
    pub units_inline: u64,
    /// Deepest shared queue observed while this run was submitting,
    /// including other sessions' units — a contention signal.
    pub queue_depth_peak: usize,
    /// Most busy workers observed while this run was submitting.
    pub busy_workers_peak: usize,
    /// Most live sessions observed while this run was submitting.
    pub live_sessions_peak: usize,
}

impl SchedulerRunStats {
    /// Render as a JSON object for scraping (hand-rolled; the vendored
    /// `serde` derives are no-ops).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"pool_workers\":{},\"units_submitted\":{},\"units_inline\":{},\
             \"queue_depth_peak\":{},\"busy_workers_peak\":{},\"live_sessions_peak\":{}}}",
            self.pool_workers,
            self.units_submitted,
            self.units_inline,
            self.queue_depth_peak,
            self.busy_workers_peak,
            self.live_sessions_peak,
        )
    }
}

/// Everything a pool worker needs to execute one of a session's work units,
/// owned (`'static`) so the long-lived pool can outlive any borrow of the
/// session's inputs. One context is built per synthesis run and shared by
/// `Arc` between the driver thread and the workers.
struct SessionContext {
    db: Arc<Database>,
    tsq: Option<TableSketchQuery>,
    literals: Vec<Literal>,
    config: DuoquestConfig,
    graph: JoinGraph,
    /// Per-session probe-cache attribution: the shared database's cache is hit
    /// by every live session, these counters record only this session's
    /// traffic (partial-query and complete-query cascades separately).
    partial_counters: Arc<RunCacheCounters>,
    complete_counters: Arc<RunCacheCounters>,
    deadline: Option<Instant>,
    /// The session's cancellation token: workers check it between jobs, the
    /// fairness queue reaps queued units once it fires, and the driver uses
    /// it to tell a cancellation disconnect from a pool shutdown.
    cancel: Arc<AtomicBool>,
}

impl SessionContext {
    /// Run one chunk of the session's round: build borrow-scoped verifiers
    /// over the owned context (cheap — counter `Arc` clones and a few
    /// references) and hand off to the engine's chunk processor.
    fn process(&self, jobs: Vec<ChildJob>) -> ChunkResult {
        let partial_verifier = Verifier::new(
            &self.db,
            if self.config.prune_partial { self.tsq.as_ref() } else { None },
            &self.literals,
            self.config.semantic_rules && self.config.prune_partial,
        )
        .with_counters(Arc::clone(&self.partial_counters));
        let complete_verifier =
            Verifier::new(&self.db, self.tsq.as_ref(), &self.literals, self.config.semantic_rules)
                .with_counters(Arc::clone(&self.complete_counters));
        let env = RoundEnv {
            db: &self.db,
            graph: &self.graph,
            config: &self.config,
            partial_verifier: &partial_verifier,
            complete_verifier: &complete_verifier,
            deadline: self.deadline,
            cancel: &self.cancel,
        };
        process_chunk(jobs, &env)
    }
}

/// One queued unit of work: a contiguous chunk of a session's round.
struct WorkUnit {
    chunk_idx: usize,
    jobs: Vec<ChildJob>,
    ctx: Arc<SessionContext>,
    result_tx: Sender<(usize, std::thread::Result<ChunkResult>)>,
}

/// One live session's slot in the fairness queue.
struct SessionQueue {
    id: u64,
    /// Scheduling weight — the session's beam width times its priority
    /// multiplier (interactive sessions register a larger multiplier than
    /// batch ones): units granted per round-robin rotation before the cursor
    /// moves on.
    weight: usize,
    /// Units remaining in the current rotation.
    quantum: usize,
    pending: VecDeque<WorkUnit>,
    /// The session's cancellation token: once it fires, queued units are
    /// dropped (reaped) instead of executed.
    cancel: Arc<AtomicBool>,
}

impl SessionQueue {
    /// Drop every queued unit if the session has been cancelled, returning
    /// how many were reaped. Dropping a unit disconnects its result sender,
    /// which the session's driver observes as the cancellation taking effect.
    fn reap_if_cancelled(&mut self) -> usize {
        if self.pending.is_empty() || !self.cancel.load(Ordering::Acquire) {
            return 0;
        }
        let reaped = self.pending.len();
        self.pending.clear();
        reaped
    }
}

/// The fairness-aware queue: weighted round-robin across live sessions.
#[derive(Default)]
struct QueueState {
    sessions: Vec<SessionQueue>,
    /// Rotation cursor into `sessions`.
    cursor: usize,
    /// Total queued units across all sessions.
    depth: usize,
    next_id: u64,
}

impl QueueState {
    fn session_mut(&mut self, id: u64) -> Option<&mut SessionQueue> {
        self.sessions.iter_mut().find(|s| s.id == id)
    }

    /// Pop the next unit in weighted round-robin order: the cursor session
    /// spends one quantum per pop and yields the cursor when its quantum (or
    /// queue) is exhausted, so a session with weight *w* gets at most *w*
    /// units per rotation and an expensive session cannot starve the rest.
    ///
    /// Cancelled sessions encountered along the way have their queued units
    /// reaped (dropped, never executed) — the unit-level half of
    /// cancellation; the session's driver exits at its next cooperative
    /// check and deregisters the slot itself.
    fn pop(&mut self) -> Option<WorkUnit> {
        if self.depth == 0 || self.sessions.is_empty() {
            return None;
        }
        let n = self.sessions.len();
        // Two full rotations suffice: the first may only refresh exhausted
        // quanta, the second must find the queued work counted in `depth`.
        for _ in 0..(2 * n) {
            self.cursor %= n;
            let slot = &mut self.sessions[self.cursor];
            self.depth -= slot.reap_if_cancelled();
            if slot.pending.is_empty() || slot.quantum == 0 {
                slot.quantum = slot.weight.max(1);
                self.cursor += 1;
                continue;
            }
            slot.quantum -= 1;
            self.depth -= 1;
            return slot.pending.pop_front();
        }
        None
    }

    /// Reap the queued units of every cancelled session (see
    /// [`SessionQueue::reap_if_cancelled`]); returns how many were dropped.
    fn reap_cancelled(&mut self) -> usize {
        let mut reaped = 0;
        for slot in self.sessions.iter_mut() {
            reaped += slot.reap_if_cancelled();
        }
        self.depth -= reaped;
        reaped
    }
}

/// Pool state shared between the scheduler owner, session handles and workers.
struct PoolCore {
    queue: Mutex<QueueState>,
    work_available: Condvar,
    workers: usize,
    busy: AtomicUsize,
    units_executed: AtomicU64,
    shutdown: AtomicBool,
}

impl PoolCore {
    fn stats(&self) -> SchedulerStats {
        let queue = self.queue.lock().expect("scheduler queue poisoned");
        SchedulerStats {
            workers: self.workers,
            busy_workers: self.busy.load(Ordering::Relaxed),
            queue_depth: queue.depth,
            live_sessions: queue.sessions.len(),
            units_executed: self.units_executed.load(Ordering::Relaxed),
        }
    }

    fn register(&self, weight: usize, cancel: Arc<AtomicBool>) -> u64 {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        let id = queue.next_id;
        queue.next_id += 1;
        let weight = weight.max(1);
        queue.sessions.push(SessionQueue {
            id,
            weight,
            quantum: weight,
            pending: VecDeque::new(),
            cancel,
        });
        id
    }

    fn deregister(&self, id: u64) {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        if let Some(pos) = queue.sessions.iter().position(|s| s.id == id) {
            let removed = queue.sessions.remove(pos);
            queue.depth -= removed.pending.len();
            if pos < queue.cursor {
                queue.cursor -= 1;
            }
        }
    }

    fn submit(&self, id: u64, units: Vec<WorkUnit>) {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        // After shutdown no worker will ever pop again: drop the units here
        // (disconnecting their result senders) so the submitting session gets
        // a disconnect — and the documented panic — instead of a silent hang.
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        let count = units.len();
        let Some(slot) = queue.session_mut(id) else { return };
        // A cancelled session's units are dropped instead of queued: the
        // submitting driver observes the disconnected result senders and
        // winds the session down.
        if slot.cancel.load(Ordering::Acquire) {
            return;
        }
        slot.pending.extend(units);
        queue.depth += count;
        drop(queue);
        self.work_available.notify_all();
    }

    /// Drop the queued units of every cancelled session; returns how many
    /// were reaped.
    fn reap_cancelled(&self) -> usize {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        queue.reap_cancelled()
    }

    /// Worker side: block until a unit is available or the pool shuts down.
    fn next_unit(&self) -> Option<WorkUnit> {
        let mut queue = self.queue.lock().expect("scheduler queue poisoned");
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if let Some(unit) = queue.pop() {
                return Some(unit);
            }
            queue = self.work_available.wait(queue).expect("scheduler queue poisoned");
        }
    }
}

fn worker_loop(core: Arc<PoolCore>) {
    while let Some(unit) = core.next_unit() {
        let WorkUnit { chunk_idx, jobs, ctx, result_tx } = unit;
        core.busy.fetch_add(1, Ordering::Relaxed);
        // Catch panics so a poisoned unit kills its session (which rethrows),
        // not the shared worker serving every other session.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.process(jobs)));
        core.busy.fetch_sub(1, Ordering::Relaxed);
        core.units_executed.fetch_add(1, Ordering::Relaxed);
        // A dropped receiver means the session abandoned the round; fine.
        let _ = result_tx.send((chunk_idx, outcome));
    }
}

/// A shared, long-lived worker pool serving any number of concurrent
/// [`SynthesisSession`](crate::session::SynthesisSession)s (see the
/// [module docs](self) for the design).
///
/// Dropping the scheduler shuts the pool down and joins its workers; sessions
/// still running on it will panic on their next round, so keep the scheduler
/// alive for as long as any session holds a [`SchedulerHandle`] to it.
pub struct SessionScheduler {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
}

impl SessionScheduler {
    /// Spawn a pool of `workers` threads (minimum 1). The typical process
    /// creates exactly one scheduler, sized to the machine, and hands
    /// [`SessionScheduler::handle`] clones to every session.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let core = Arc::new(PoolCore {
            queue: Mutex::new(QueueState::default()),
            work_available: Condvar::new(),
            workers,
            busy: AtomicUsize::new(0),
            units_executed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("duoquest-pool-{i}"))
                    .spawn(move || worker_loop(core))
                    .expect("failed to spawn scheduler worker")
            })
            .collect();
        SessionScheduler { core, workers: handles }
    }

    /// Size the pool to the machine (one worker per available CPU).
    pub fn for_machine() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        SessionScheduler::new(n)
    }

    /// A cloneable handle sessions use to submit work to this pool.
    pub fn handle(&self) -> SchedulerHandle {
        SchedulerHandle { core: Arc::clone(&self.core) }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// Snapshot the pool's current load.
    pub fn stats(&self) -> SchedulerStats {
        self.core.stats()
    }
}

impl Drop for SessionScheduler {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.work_available_broadcast();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Drain whatever was still queued: dropping a unit drops its result
        // sender, so a session blocked on its round's results observes a
        // disconnect (and panics, per the struct docs) instead of hanging
        // forever. Units submitted after this point are dropped by `submit`
        // itself, which checks `shutdown` under the same lock.
        let mut queue = self.core.queue.lock().expect("scheduler queue poisoned");
        for slot in queue.sessions.iter_mut() {
            slot.pending.clear();
        }
        queue.depth = 0;
    }
}

impl SessionScheduler {
    fn work_available_broadcast(&self) {
        // Take the lock so no worker can check `shutdown` and block between
        // our store and the notify.
        let _guard = self.core.queue.lock().expect("scheduler queue poisoned");
        self.core.work_available.notify_all();
    }
}

impl std::fmt::Debug for SessionScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionScheduler").field("stats", &self.stats()).finish()
    }
}

/// A cloneable handle to a [`SessionScheduler`]'s pool. Attach one to a
/// session with
/// [`SynthesisSession::with_scheduler`](crate::session::SynthesisSession::with_scheduler).
#[derive(Clone)]
pub struct SchedulerHandle {
    core: Arc<PoolCore>,
}

impl SchedulerHandle {
    /// Snapshot the pool's current load.
    pub fn stats(&self) -> SchedulerStats {
        self.core.stats()
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// Eagerly drop the queued (session, round-chunk) units of every
    /// cancelled session, returning how many were reaped. Workers also reap
    /// lazily whenever they pop, so calling this is an optimization — it
    /// frees the queue immediately instead of at the next pop — not a
    /// requirement for correctness. Fired automatically when a
    /// [`CandidateStream`](crate::session::CandidateStream) is dropped.
    pub fn reap_cancelled(&self) -> usize {
        self.core.reap_cancelled()
    }
}

impl std::fmt::Debug for SchedulerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerHandle").field("stats", &self.stats()).finish()
    }
}

/// Run one session's synthesis over the shared pool: the round loop runs on
/// the calling thread, phase-2 chunks go through the scheduler's fairness
/// queue, and chunk results are reassembled in original child order before
/// the merge — so emission is byte-identical to a private-pool run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_rounds_scheduled(
    handle: &SchedulerHandle,
    db: &Arc<Database>,
    nlq: &Nlq,
    model: &dyn GuidanceModel,
    tsq: Option<&TableSketchQuery>,
    config: &DuoquestConfig,
    control: &SessionControl,
    priority_weight: usize,
    on_candidate: &mut dyn FnMut(SelectSpec, f64, Duration) -> bool,
) -> EnumerationStats {
    let start = Instant::now();
    let mut stats = EnumerationStats::default();
    let deadline =
        min_deadline(config.time_budget.map(|budget| start + budget), control.deadline());
    let ctx = Arc::new(SessionContext {
        db: Arc::clone(db),
        tsq: tsq.cloned(),
        literals: nlq.literals.clone(),
        config: config.clone(),
        graph: JoinGraph::new(db.schema()),
        partial_counters: Arc::new(RunCacheCounters::default()),
        complete_counters: Arc::new(RunCacheCounters::default()),
        deadline,
        cancel: control.flag(),
    });

    let core = &handle.core;
    // The guard deregisters on drop, so a panicking session (e.g. a rethrown
    // worker panic) cannot leak its queue slot and distort fairness forever.
    // Fairness weight = beam width × priority multiplier: a session's share
    // of each round-robin rotation scales with both how much work a round
    // exposes and how urgent its requester is.
    let weight = config.beam_width.max(1).saturating_mul(priority_weight.max(1));
    let registration = SessionRegistration { core, id: core.register(weight, control.flag()) };
    let session_id = registration.id;
    let mut run_stats =
        SchedulerRunStats { pool_workers: core.workers, ..SchedulerRunStats::default() };

    drive_rounds(
        db,
        nlq,
        model,
        config,
        deadline,
        control.flag_ref(),
        start,
        &mut stats,
        on_candidate,
        &mut |jobs| dispatch_round(core, session_id, &ctx, jobs, &mut run_stats),
    );

    drop(registration);

    stats.elapsed = start.elapsed();
    let (partial_hits, partial_misses) = ctx.partial_counters.snapshot();
    let (complete_hits, complete_misses) = ctx.complete_counters.snapshot();
    stats.cache_hits = partial_hits + complete_hits;
    stats.cache_misses = partial_misses + complete_misses;
    stats.cache_bytes = db.cache_stats().bytes;
    let (partial_scanned, partial_short) = ctx.partial_counters.scan_snapshot();
    let (complete_scanned, complete_short) = ctx.complete_counters.scan_snapshot();
    stats.rows_scanned = partial_scanned + complete_scanned;
    stats.rows_short_circuited = partial_short + complete_short;
    stats.scheduler = Some(run_stats);
    stats
}

/// Deregisters a session's queue slot on drop (panic-safe).
struct SessionRegistration<'a> {
    core: &'a Arc<PoolCore>,
    id: u64,
}

impl Drop for SessionRegistration<'_> {
    fn drop(&mut self) {
        self.core.deregister(self.id);
    }
}

/// Submit one round's jobs as chunked work units and wait for every chunk,
/// returning results in original job order. Small fan-outs run inline on the
/// driver thread — the queue handoff costs more than it saves. Everything
/// else goes through the queue even on a 1-worker pool: the pool *is* the
/// process's compute budget, so heavy work must serialize through it rather
/// than spill onto N session driver threads.
fn dispatch_round(
    core: &Arc<PoolCore>,
    session_id: u64,
    ctx: &Arc<SessionContext>,
    jobs: Vec<ChildJob>,
    run_stats: &mut SchedulerRunStats,
) -> Vec<ChunkResult> {
    if jobs.len() < MIN_PARALLEL_JOBS {
        run_stats.units_inline += 1;
        return vec![ctx.process(jobs)];
    }

    // Aim for ~2 chunks per worker so the fairness queue can interleave
    // sessions mid-round; chunk size only affects scheduling granularity,
    // never results (chunk results are reassembled in job order below).
    let chunk_size = jobs.len().div_ceil(core.workers * 2).max(MIN_PARALLEL_JOBS / 2);
    let (result_tx, result_rx) = mpsc::channel();
    let mut units = Vec::new();
    let mut remaining = jobs;
    while !remaining.is_empty() {
        let tail = remaining.split_off(remaining.len().min(chunk_size));
        units.push(WorkUnit {
            chunk_idx: units.len(),
            jobs: remaining,
            ctx: Arc::clone(ctx),
            result_tx: result_tx.clone(),
        });
        remaining = tail;
    }
    drop(result_tx);
    let sent = units.len();
    run_stats.units_submitted += sent as u64;
    core.submit(session_id, units);

    // Observe pool-wide contention while our units are in flight: once right
    // after the submit (queue at its deepest) and once after each chunk
    // completes (workers mid-execution on the remaining chunks) — a single
    // post-submit sample would systematically read the workers as idle.
    let observe = |run_stats: &mut SchedulerRunStats| {
        let snapshot = core.stats();
        run_stats.queue_depth_peak = run_stats.queue_depth_peak.max(snapshot.queue_depth);
        run_stats.busy_workers_peak = run_stats.busy_workers_peak.max(snapshot.busy_workers);
        run_stats.live_sessions_peak = run_stats.live_sessions_peak.max(snapshot.live_sessions);
    };
    observe(run_stats);

    let mut results: Vec<Option<ChunkResult>> = (0..sent).map(|_| None).collect();
    for received in 0..sent {
        let Ok((idx, outcome)) = result_rx.recv() else {
            // Every remaining sender is gone before reporting. Either the
            // session was cancelled and its queued units were reaped (their
            // senders dropped with them) — wind the round down — or the pool
            // was shut down under a live session, which is a caller bug.
            assert!(
                ctx.cancel.load(Ordering::Acquire),
                "scheduler shut down while a session was running on it"
            );
            return vec![ChunkResult { cancelled: true, ..ChunkResult::default() }];
        };
        if received + 1 < sent {
            observe(run_stats);
        }
        match outcome {
            Ok(result) => results[idx] = Some(result),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    results.into_iter().map(|r| r.expect("every chunk reported")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SynthesisSession;
    use crate::tsq::{TableSketchQuery, TsqCell};
    use crate::verify::test_fixtures::movie_db;
    use duoquest_db::{CmpOp, DataType};
    use duoquest_nlq::{Literal, NoisyOracleGuidance, OracleConfig};
    use duoquest_sql::QueryBuilder;

    fn fixture() -> (Arc<Database>, Nlq, Arc<dyn GuidanceModel>, duoquest_db::SelectSpec) {
        let db = movie_db().into_shared();
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let model: Arc<dyn GuidanceModel> =
            Arc::new(NoisyOracleGuidance::with_config(gold.clone(), 3, OracleConfig::perfect()));
        (db, nlq, model, gold)
    }

    #[test]
    fn weighted_round_robin_interleaves_sessions() {
        // Session A (id 0): weight 1, 4 units tagged 0..4.
        // Session B (id 1): weight 2, 4 units tagged 100..104.
        let mut queue = QueueState::default();
        let (tx, _rx) = mpsc::channel();
        let ctx = test_ctx();
        for (id, weight, tag_base) in [(0u64, 1usize, 0usize), (1, 2, 100)] {
            queue.next_id = queue.next_id.max(id + 1);
            let mut pending = VecDeque::new();
            for i in 0..4 {
                pending.push_back(WorkUnit {
                    chunk_idx: tag_base + i,
                    jobs: Vec::new(),
                    ctx: Arc::clone(&ctx),
                    result_tx: tx.clone(),
                });
            }
            queue.depth += pending.len();
            queue.sessions.push(SessionQueue {
                id,
                weight,
                quantum: weight,
                pending,
                cancel: Arc::new(AtomicBool::new(false)),
            });
        }
        let mut order = Vec::new();
        while let Some(unit) = queue.pop() {
            order.push(unit.chunk_idx);
        }
        assert_eq!(queue.depth, 0);
        // Weight-proportional service: one A unit, then two B units, per
        // rotation, until a side drains; then the remainder streams out.
        assert_eq!(order, vec![0, 100, 101, 1, 102, 103, 2, 3]);
    }

    fn test_ctx() -> Arc<SessionContext> {
        let db = movie_db().into_shared();
        let graph = JoinGraph::new(db.schema());
        Arc::new(SessionContext {
            db,
            tsq: None,
            literals: Vec::new(),
            config: DuoquestConfig::fast(),
            graph,
            partial_counters: Arc::new(RunCacheCounters::default()),
            complete_counters: Arc::new(RunCacheCounters::default()),
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
        })
    }

    #[test]
    fn scheduled_session_matches_private_pool_session() {
        let (db, nlq, model, _gold) = fixture();
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![TsqCell::text("Forrest Gump")]);
        let mut config = DuoquestConfig::fast();
        config.time_budget = None;
        config.max_candidates = 30;

        let private = SynthesisSession::new(Arc::clone(&db), nlq.clone(), Arc::clone(&model))
            .with_tsq(tsq.clone())
            .with_config(config.clone())
            .run();

        let pool = SessionScheduler::new(3);
        let shared = SynthesisSession::new(db, nlq, model)
            .with_tsq(tsq)
            .with_config(config)
            .with_scheduler(pool.handle())
            .run();

        let render = |r: &crate::engine::SynthesisResult| {
            r.candidates.iter().map(|c| (format!("{:?}", c.spec), c.confidence)).collect::<Vec<_>>()
        };
        assert_eq!(render(&private), render(&shared));
        assert_eq!(private.stats.emitted, shared.stats.emitted);
        assert_eq!(private.stats.expanded, shared.stats.expanded);
        assert_eq!(private.stats.total_pruned(), shared.stats.total_pruned());
        // The shared run reports pool observations; this private run does not,
        // because `fast()` keeps `workers = 1` and the session ran inline.
        // (A private run with `workers > 1` would route through a
        // compatibility pool and also set `stats.scheduler`.)
        assert!(private.stats.scheduler.is_none());
        let run = shared.stats.scheduler.expect("shared run records scheduler stats");
        assert_eq!(run.pool_workers, 3);
        assert!(run.units_submitted + run.units_inline > 0);
    }

    #[test]
    fn shutdown_disconnects_queued_units_instead_of_stranding_sessions() {
        let pool = SessionScheduler::new(1);
        let core = Arc::clone(&pool.core);
        let id = core.register(1, Arc::new(AtomicBool::new(false)));
        drop(pool); // shutdown: workers joined, queue drained
        let (tx, rx) = mpsc::channel();
        let unit = WorkUnit { chunk_idx: 0, jobs: Vec::new(), ctx: test_ctx(), result_tx: tx };
        core.submit(id, vec![unit]);
        // A post-shutdown submit must drop the unit so the session's receiver
        // disconnects (turning into the documented panic) rather than block
        // forever on a queue no worker will ever pop.
        assert!(rx.recv().is_err(), "unit must be dropped, not stranded");
        assert_eq!(core.stats().queue_depth, 0);
    }

    #[test]
    fn pool_stats_track_registration() {
        let pool = SessionScheduler::new(2);
        assert_eq!(pool.workers(), 2);
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.live_sessions, 0);
        assert_eq!(stats.queue_depth, 0);
        let id = pool.core.register(4, Arc::new(AtomicBool::new(false)));
        assert_eq!(pool.stats().live_sessions, 1);
        pool.core.deregister(id);
        assert_eq!(pool.stats().live_sessions, 0);
    }

    #[test]
    fn many_sessions_share_one_pool_concurrently() {
        let (db, nlq, model, gold) = fixture();
        let pool = SessionScheduler::new(2);
        let mut config = DuoquestConfig::fast();
        config.time_budget = None;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = SynthesisSession::new(Arc::clone(&db), nlq.clone(), model.clone())
                    .with_config(config.clone())
                    .with_scheduler(pool.handle());
                std::thread::spawn(move || session.run())
            })
            .collect();
        for handle in handles {
            let result = handle.join().expect("session thread panicked");
            assert_eq!(result.rank_of(&gold), Some(1));
        }
        let stats = pool.stats();
        assert_eq!(stats.live_sessions, 0, "all sessions deregistered");
        assert_eq!(stats.queue_depth, 0, "no orphaned units");
    }
}
