//! TSQ synthesis from gold queries (paper §5.4.1 and §5.4.4).
//!
//! For the simulation study each task's TSQ is synthesized from the gold query:
//! type annotations for every projected column, two example tuples drawn at
//! random from the gold query's result set, and the sorting flag / limit of the
//! gold query. Three detail levels are used in §5.4.4: *Full* (everything),
//! *Partial* (all values of one randomly selected column erased, for tasks with
//! at least two projected columns) and *Minimal* (type annotations only).
//!
//! Enumeration produces projection lists in canonical schema order (see
//! `duoquest-core`), so the synthesizer first canonicalizes the gold query's
//! projection order and emits the TSQ in the same order.

use crate::Difficulty;
use duoquest_core::{TableSketchQuery, TsqCell};
use duoquest_db::{execute, Database, SelectSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// TSQ detail levels of paper §5.4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TsqDetail {
    /// Type annotations, two example tuples, sorting flag and limit.
    Full,
    /// Full, with every value of one randomly chosen column erased.
    Partial,
    /// Type annotations only.
    Minimal,
}

/// Reorder the projection of a query into canonical order: plain/aggregated
/// column items sorted by column id, `COUNT(*)` items last. Canonical order is
/// what the enumerator produces, and canonical equivalence ignores projection
/// order, so evaluation results are unaffected.
pub fn canonicalize_select(spec: &SelectSpec) -> SelectSpec {
    let mut out = spec.clone();
    out.select.sort_by_key(|item| match item.col {
        Some(c) => (0, c.table.0, c.column),
        None => (1, usize::MAX, usize::MAX),
    });
    out
}

/// Synthesize a TSQ for a gold query at the given detail level. Returns the
/// canonicalized gold query together with the TSQ (whose column order matches
/// it). `n_tuples` bounds the number of example tuples (the paper uses 2).
pub fn synthesize_tsq(
    db: &Database,
    gold: &SelectSpec,
    detail: TsqDetail,
    n_tuples: usize,
    seed: u64,
) -> (SelectSpec, TableSketchQuery) {
    let gold = canonicalize_select(gold);
    let result = execute(db, &gold).unwrap_or_default();
    let mut tsq = TableSketchQuery {
        types: Some(result.types.clone()),
        tuples: Vec::new(),
        sorted: gold.order_by.is_some(),
        limit: gold.limit.unwrap_or(0),
    };
    if detail == TsqDetail::Minimal || result.is_empty() {
        return (gold, tsq);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let take = n_tuples.min(result.len());
    // Sample distinct row indices and keep them in result order (Definition 2.4
    // requires example tuples of a sorted TSQ to appear in the same order).
    let mut indices: Vec<usize> = Vec::new();
    while indices.len() < take {
        let idx = rng.gen_range(0..result.len());
        if !indices.contains(&idx) {
            indices.push(idx);
        }
    }
    indices.sort_unstable();

    // For the Partial detail level, erase one randomly selected column.
    let erase_column = if detail == TsqDetail::Partial && gold.select.len() >= 2 {
        Some(rng.gen_range(0..gold.select.len()))
    } else {
        None
    };

    for idx in indices {
        let row = &result.rows[idx];
        let tuple: Vec<TsqCell> = row
            .0
            .iter()
            .enumerate()
            .map(|(ci, v)| {
                if Some(ci) == erase_column || v.is_null() {
                    TsqCell::Empty
                } else {
                    TsqCell::Exact(v.clone())
                }
            })
            .collect();
        tsq.tuples.push(tuple);
    }
    (gold, tsq)
}

/// Convenience: the example count the user studies observed (1–2 examples per
/// task, paper §5.2) scaled by difficulty — used by the simulated user.
pub fn typical_example_count(level: Difficulty) -> usize {
    match level {
        Difficulty::Easy => 1,
        Difficulty::Medium => 1,
        Difficulty::Hard => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{CmpOp, ColumnDef, DataType, Schema, TableDef, Value};
    use duoquest_sql::QueryBuilder;

    fn db() -> Database {
        let mut s = Schema::new("m");
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        let mut d = Database::new(s).unwrap();
        for i in 0..10 {
            d.insert(
                "movies",
                vec![Value::int(i), Value::text(format!("Movie {i}")), Value::int(1990 + i)],
            )
            .unwrap();
        }
        d.rebuild_index();
        d
    }

    #[test]
    fn full_tsq_has_types_tuples_and_flags() {
        let db = db();
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .select("movies.year")
            .filter("movies.year", CmpOp::Gt, 1995)
            .order_by("movies.year", false)
            .build()
            .unwrap();
        let (canonical, tsq) = synthesize_tsq(&db, &gold, TsqDetail::Full, 2, 7);
        assert_eq!(tsq.types, Some(vec![DataType::Text, DataType::Number]));
        assert_eq!(tsq.tuples.len(), 2);
        assert!(tsq.sorted);
        assert_eq!(tsq.limit, 0);
        assert!(duoquest_sql::queries_equivalent(&canonical, &gold));
        // Every exact cell comes from the gold result.
        let result = execute(&db, &canonical).unwrap();
        for tuple in &tsq.tuples {
            assert!(result
                .rows
                .iter()
                .any(|r| tuple.iter().zip(&r.0).all(|(c, v)| c.matches(v) || !c.is_constrained())));
        }
    }

    #[test]
    fn partial_erases_one_column() {
        let db = db();
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .select("movies.year")
            .build()
            .unwrap();
        let (_, tsq) = synthesize_tsq(&db, &gold, TsqDetail::Partial, 2, 11);
        let empty_per_column: Vec<usize> =
            (0..2).map(|c| tsq.tuples.iter().filter(|t| !t[c].is_constrained()).count()).collect();
        assert!(empty_per_column.contains(&2), "{empty_per_column:?}");
    }

    #[test]
    fn minimal_has_no_tuples() {
        let db = db();
        let gold = QueryBuilder::new(db.schema()).select("movies.name").build().unwrap();
        let (_, tsq) = synthesize_tsq(&db, &gold, TsqDetail::Minimal, 2, 3);
        assert!(tsq.tuples.is_empty());
        assert!(tsq.types.is_some());
    }

    #[test]
    fn canonicalization_sorts_projection() {
        let db = db();
        let gold = QueryBuilder::new(db.schema())
            .select("movies.year")
            .select("movies.name")
            .build()
            .unwrap();
        let canon = canonicalize_select(&gold);
        assert_eq!(canon.select[0].col, Some(db.schema().column_id("movies", "name").unwrap()));
        assert!(duoquest_sql::queries_equivalent(&canon, &gold));
    }

    #[test]
    fn sorted_tsq_preserves_result_order() {
        let db = db();
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .select("movies.year")
            .order_by("movies.year", true)
            .build()
            .unwrap();
        let (canonical, tsq) = synthesize_tsq(&db, &gold, TsqDetail::Full, 2, 5);
        let result = execute(&db, &canonical).unwrap();
        // Example tuple 0 must appear no later than example tuple 1.
        let pos = |tuple: &Vec<TsqCell>| {
            result
                .rows
                .iter()
                .position(|r| tuple.iter().zip(&r.0).all(|(c, v)| c.matches(v)))
                .unwrap()
        };
        assert!(pos(&tsq.tuples[0]) <= pos(&tsq.tuples[1]));
        assert_eq!(typical_example_count(Difficulty::Hard), 2);
    }
}
