//! A parameterized simulated user.
//!
//! The paper's user studies (16 participants, 5-minute budget per task) measure
//! task success rate, time per trial and number of examples entered. Those
//! quantities are functions of (a) how many candidates the participant must
//! inspect before reaching the desired query, (b) how long it takes to type the
//! NLQ and enter examples, and (c) a patience/fatigue threshold. The simulator
//! models exactly those mechanisms; its parameters are documented here rather
//! than hidden in human variability (DESIGN.md §3).

use serde::{Deserialize, Serialize};

/// Timing and patience parameters of the simulated participant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserModel {
    /// Seconds to articulate and type the NLQ.
    pub nlq_typing_secs: f64,
    /// Seconds to enter one example tuple (autocomplete-assisted).
    pub example_entry_secs: f64,
    /// Seconds to inspect one candidate query (reading the SQL and/or the
    /// 20-row result preview).
    pub candidate_inspect_secs: f64,
    /// Seconds spent reviewing the PBE system's filter checkboxes.
    pub pbe_review_secs: f64,
    /// The participant gives up after inspecting this many candidates.
    pub patience_candidates: usize,
    /// Per-trial wall-clock budget (the studies use 5 minutes).
    pub time_limit_secs: f64,
}

impl Default for UserModel {
    fn default() -> Self {
        UserModel {
            nlq_typing_secs: 30.0,
            example_entry_secs: 15.0,
            candidate_inspect_secs: 12.0,
            pbe_review_secs: 45.0,
            patience_candidates: 12,
            time_limit_secs: 300.0,
        }
    }
}

/// The outcome of one simulated trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Whether the participant selected the desired query within the budget.
    pub success: bool,
    /// Total trial time in seconds (capped at the time limit).
    pub time_secs: f64,
    /// Number of example tuples the participant entered.
    pub examples_used: usize,
}

impl UserModel {
    /// Simulate a Duoquest trial: the participant types the NLQ, enters
    /// `examples` tuples, waits for the system and inspects candidates in rank
    /// order until the desired query appears (rank is `None` when the system
    /// never produced it).
    pub fn duoquest_trial(
        &self,
        gold_rank: Option<usize>,
        system_secs: f64,
        examples: usize,
    ) -> TrialOutcome {
        let setup = self.nlq_typing_secs + examples as f64 * self.example_entry_secs + system_secs;
        self.inspect(gold_rank, setup, examples)
    }

    /// Simulate an NLI trial: NLQ typing only, then candidate inspection.
    pub fn nli_trial(&self, gold_rank: Option<usize>, system_secs: f64) -> TrialOutcome {
        let setup = self.nlq_typing_secs + system_secs;
        self.inspect(gold_rank, setup, 0)
    }

    /// Simulate a PBE trial: the participant enters examples, the system runs,
    /// and the participant reviews the proposed filters. Success requires the
    /// task to be supported and the abduced filters to cover the gold query.
    pub fn pbe_trial(
        &self,
        supported: bool,
        correct: bool,
        examples: usize,
        system_secs: f64,
    ) -> TrialOutcome {
        let time = examples as f64 * self.example_entry_secs + system_secs + self.pbe_review_secs;
        let time = time.min(self.time_limit_secs);
        TrialOutcome {
            success: supported && correct && time < self.time_limit_secs,
            time_secs: time,
            examples_used: examples,
        }
    }

    fn inspect(&self, gold_rank: Option<usize>, setup_secs: f64, examples: usize) -> TrialOutcome {
        match gold_rank {
            Some(rank) if rank <= self.patience_candidates => {
                let time = setup_secs + rank as f64 * self.candidate_inspect_secs;
                if time <= self.time_limit_secs {
                    TrialOutcome { success: true, time_secs: time, examples_used: examples }
                } else {
                    TrialOutcome {
                        success: false,
                        time_secs: self.time_limit_secs,
                        examples_used: examples,
                    }
                }
            }
            _ => {
                // The participant exhausts their patience (or the list) and gives up.
                let time = (setup_secs
                    + self.patience_candidates as f64 * self.candidate_inspect_secs)
                    .min(self.time_limit_secs);
                TrialOutcome { success: false, time_secs: time, examples_used: examples }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duoquest_trial_succeeds_on_good_rank() {
        let user = UserModel::default();
        let t = user.duoquest_trial(Some(1), 2.0, 1);
        assert!(t.success);
        assert!(t.time_secs < 120.0);
        assert_eq!(t.examples_used, 1);
    }

    #[test]
    fn deep_rank_exhausts_patience() {
        let user = UserModel::default();
        let t = user.nli_trial(Some(25), 2.0);
        assert!(!t.success);
        let t = user.nli_trial(None, 2.0);
        assert!(!t.success);
        assert!(t.time_secs <= user.time_limit_secs);
    }

    #[test]
    fn nli_trials_take_longer_for_deeper_ranks() {
        let user = UserModel::default();
        let fast = user.nli_trial(Some(1), 1.0);
        let slow = user.nli_trial(Some(10), 1.0);
        assert!(slow.time_secs > fast.time_secs);
    }

    #[test]
    fn pbe_trial_outcomes() {
        let user = UserModel::default();
        assert!(user.pbe_trial(true, true, 3, 1.0).success);
        assert!(!user.pbe_trial(true, false, 3, 1.0).success);
        assert!(!user.pbe_trial(false, true, 3, 1.0).success);
        assert_eq!(user.pbe_trial(true, true, 4, 1.0).examples_used, 4);
    }

    #[test]
    fn time_budget_is_a_hard_cap() {
        let user = UserModel { candidate_inspect_secs: 100.0, ..Default::default() };
        let t = user.duoquest_trial(Some(10), 0.0, 2);
        assert!(!t.success);
        assert!(t.time_secs <= user.time_limit_secs);
    }
}
