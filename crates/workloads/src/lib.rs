//! # duoquest-workloads
//!
//! Synthetic workloads, task sets and simulated users for the Duoquest
//! evaluation:
//!
//! * [`mas`] — a seeded generator for a Microsoft-Academic-Search-like
//!   database (the user studies of paper §5.2/§5.3 run on MAS);
//! * [`mas_tasks`] — the 14 user-study tasks of paper Tables 7 and 8;
//! * [`spider`] — a synthetic cross-domain benchmark generator standing in for
//!   the Spider dev/test sets (paper §5.4, Table 5);
//! * [`tsq_synth`] — TSQ synthesis from gold queries at the Full / Partial /
//!   Minimal detail levels of §5.4.4;
//! * [`user_sim`] — the simulated user used to reproduce the user-study figures;
//! * [`stats`] — dataset statistics (paper Table 5).

pub mod mas;
pub mod mas_tasks;
pub mod spider;
pub mod stats;
pub mod tsq_synth;
pub mod user_sim;

pub use mas::MasDataset;
pub use mas_tasks::{mas_nli_tasks, mas_pbe_tasks, MasTask};
pub use spider::{SpiderDataset, SpiderTask};
pub use stats::DatasetStats;
pub use tsq_synth::{canonicalize_select, synthesize_tsq, TsqDetail};
pub use user_sim::{TrialOutcome, UserModel};

use duoquest_db::SelectSpec;
use serde::{Deserialize, Serialize};

/// Task difficulty, following the definitions of paper Table 5: *Easy* tasks
/// are project-join queries (possibly with aggregates, sorting and limits),
/// *Medium* tasks add selection predicates, and *Hard* tasks add grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Difficulty {
    /// Project-join queries including aggregates, sorting and limit operators.
    Easy,
    /// Easy plus selection predicates.
    Medium,
    /// Medium plus grouping operators.
    Hard,
}

impl Difficulty {
    /// Classify a gold query according to the Table 5 definitions.
    pub fn classify(spec: &SelectSpec) -> Difficulty {
        if !spec.group_by.is_empty() || !spec.having.is_empty() {
            Difficulty::Hard
        } else if !spec.predicates.is_empty() {
            Difficulty::Medium
        } else {
            Difficulty::Easy
        }
    }
}

impl std::fmt::Display for Difficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Difficulty::Easy => write!(f, "easy"),
            Difficulty::Medium => write!(f, "medium"),
            Difficulty::Hard => write!(f, "hard"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{CmpOp, ColumnDef, Schema, TableDef};
    use duoquest_sql::QueryBuilder;

    #[test]
    fn difficulty_classification() {
        let mut s = Schema::new("m");
        s.add_table(TableDef::new(
            "t",
            vec![ColumnDef::number("id"), ColumnDef::text("name"), ColumnDef::number("x")],
            Some(0),
        ));
        let easy = QueryBuilder::new(&s).select("t.name").build().unwrap();
        assert_eq!(Difficulty::classify(&easy), Difficulty::Easy);
        let medium =
            QueryBuilder::new(&s).select("t.name").filter("t.x", CmpOp::Gt, 3).build().unwrap();
        assert_eq!(Difficulty::classify(&medium), Difficulty::Medium);
        let hard = QueryBuilder::new(&s)
            .select("t.name")
            .select_count_star()
            .group_by("t.name")
            .build()
            .unwrap();
        assert_eq!(Difficulty::classify(&hard), Difficulty::Hard);
        assert_eq!(hard.group_by.len(), 1);
        assert_eq!(
            format!("{} {} {}", Difficulty::Easy, Difficulty::Medium, Difficulty::Hard),
            "easy medium hard"
        );
    }
}
