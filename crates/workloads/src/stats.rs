//! Dataset statistics (paper Table 5).

use crate::spider::SpiderDataset;
use crate::Difficulty;
use duoquest_db::Database;
use std::fmt;

/// Summary statistics of one experiment dataset, matching the columns of
/// paper Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of distinct databases.
    pub databases: usize,
    /// Task counts per difficulty level.
    pub easy: usize,
    /// Medium tasks.
    pub medium: usize,
    /// Hard tasks.
    pub hard: usize,
    /// Average number of tables per schema.
    pub avg_tables: f64,
    /// Average number of columns per schema.
    pub avg_columns: f64,
    /// Average number of FK-PK relationships per schema.
    pub avg_fk_pk: f64,
}

impl DatasetStats {
    /// Total number of tasks.
    pub fn total(&self) -> usize {
        self.easy + self.medium + self.hard
    }

    /// Compute statistics for an arbitrary set of databases and task difficulties.
    pub fn compute(name: &str, databases: &[&Database], levels: &[Difficulty]) -> Self {
        let n = databases.len().max(1) as f64;
        DatasetStats {
            name: name.to_string(),
            databases: databases.len(),
            easy: levels.iter().filter(|l| **l == Difficulty::Easy).count(),
            medium: levels.iter().filter(|l| **l == Difficulty::Medium).count(),
            hard: levels.iter().filter(|l| **l == Difficulty::Hard).count(),
            avg_tables: databases.iter().map(|d| d.schema().table_count() as f64).sum::<f64>() / n,
            avg_columns: databases.iter().map(|d| d.schema().column_count() as f64).sum::<f64>()
                / n,
            avg_fk_pk: databases.iter().map(|d| d.schema().foreign_key_count() as f64).sum::<f64>()
                / n,
        }
    }

    /// Compute statistics for a generated Spider-like split.
    pub fn of_spider(dataset: &SpiderDataset) -> Self {
        let dbs: Vec<&Database> = dataset.databases.iter().map(|d| d.as_ref()).collect();
        let levels: Vec<Difficulty> = dataset.tasks.iter().map(|t| t.level).collect();
        Self::compute(&format!("Spider {}", dataset.name), &dbs, &levels)
    }

    /// The table header matching Table 5.
    pub fn header() -> String {
        format!(
            "{:<18} {:>9} {:>6} {:>6} {:>6} {:>6} {:>8} {:>9} {:>7}",
            "Dataset", "Databases", "Easy", "Med", "Hard", "Total", "Tables", "Columns", "FK-PK"
        )
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} {:>9} {:>6} {:>6} {:>6} {:>6} {:>8.1} {:>9.1} {:>7.1}",
            self.name,
            self.databases,
            self.easy,
            self.medium,
            self.hard,
            self.total(),
            self.avg_tables,
            self.avg_columns,
            self.avg_fk_pk
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mas::MasDataset;
    use crate::spider::generate_small;

    #[test]
    fn mas_statistics_match_table_5_shape() {
        let mas = MasDataset::standard();
        let stats = DatasetStats::compute(
            "MAS",
            &[&mas.db],
            &[Difficulty::Medium, Difficulty::Hard, Difficulty::Hard],
        );
        assert_eq!(stats.databases, 1);
        assert_eq!(stats.total(), 3);
        assert_eq!(stats.avg_tables, 15.0);
        assert_eq!(stats.avg_fk_pk, 19.0);
        assert!(stats.to_string().contains("MAS"));
        assert!(DatasetStats::header().contains("FK-PK"));
    }

    #[test]
    fn spider_statistics() {
        let ds = generate_small(2);
        let stats = DatasetStats::of_spider(&ds);
        assert_eq!(stats.databases, 4);
        assert_eq!(stats.total(), ds.tasks.len());
        assert!(stats.avg_tables >= 3.0);
        assert!(stats.avg_columns > 8.0);
    }
}
