//! The user-study tasks of paper Tables 7 and 8, instantiated against the
//! synthetic MAS dataset.
//!
//! Task sets A and B are used in the study against the NLI baseline; task sets
//! C and D in the study against the PBE baseline (which does not support
//! projected numeric columns or aggregates).

use crate::mas::MasDataset;
use crate::Difficulty;
use duoquest_db::SelectSpec;
use duoquest_nlq::{extract_literals, Nlq};
use duoquest_sql::parse_query;

/// One user-study task.
#[derive(Debug, Clone)]
pub struct MasTask {
    /// Task identifier ("A1" … "D3").
    pub id: &'static str,
    /// Difficulty level (Table 7/8 column "Level").
    pub level: Difficulty,
    /// The English task description shown to study participants.
    pub description: String,
    /// The natural language query a participant would issue (with literals tagged).
    pub nlq: Nlq,
    /// The gold SQL query.
    pub gold: SelectSpec,
}

fn task(
    mas: &MasDataset,
    id: &'static str,
    description: String,
    nlq_text: String,
    sql: String,
) -> MasTask {
    let gold = parse_query(mas.db.schema(), &sql)
        .unwrap_or_else(|e| panic!("task {id}: failed to parse gold SQL ({e}): {sql}"));
    let literals = extract_literals(&nlq_text, Some(&mas.db));
    let nlq = Nlq::with_literals(nlq_text, literals);
    MasTask { id, level: Difficulty::classify(&gold), description, nlq, gold }
}

/// The eight tasks of the user study against the NLI baseline (paper Table 7).
pub fn mas_nli_tasks(mas: &MasDataset) -> Vec<MasTask> {
    let c = &mas.conference_c;
    let a = &mas.author_a;
    let r = &mas.organization_r;
    let d = &mas.domain_d;
    vec![
        task(
            mas,
            "A1",
            format!("List all publications in conference {c} and their year of publication."),
            format!("List all publications in conference \"{c}\" and their year of publication"),
            format!(
                "SELECT t2.title, t2.year FROM conference AS t1 JOIN publication AS t2 \
                 ON t1.cid = t2.cid WHERE t1.name = '{c}'"
            ),
        ),
        task(
            mas,
            "A2",
            "List keywords and the number of publications containing each, ordered from most to least publications.".to_string(),
            "List keywords and the number of publications containing each, ordered from most to least publications".to_string(),
            "SELECT t1.keyword, COUNT(*) FROM keyword AS t1 JOIN publication_keyword AS t2 \
             ON t1.kid = t2.kid JOIN publication AS t3 ON t2.pid = t3.pid \
             GROUP BY t1.keyword ORDER BY COUNT(*) DESC"
                .to_string(),
        ),
        task(
            mas,
            "A3",
            format!("How many publications has each author from organization {r} published?"),
            format!("How many publications has each author from \"{r}\" published"),
            format!(
                "SELECT t1.name, COUNT(*) FROM author AS t1 JOIN writes AS t2 ON t2.aid = t1.aid \
                 JOIN organization AS t3 ON t3.oid = t1.oid JOIN publication AS t4 ON t4.pid = t2.pid \
                 WHERE t3.name = '{r}' GROUP BY t1.name"
            ),
        ),
        task(
            mas,
            "A4",
            format!(
                "List journals with more than {} publications and the publication count for each.",
                mas.journal_pub_threshold
            ),
            format!(
                "List journals with more than {} publications and the publication count for each",
                mas.journal_pub_threshold
            ),
            format!(
                "SELECT t1.name, COUNT(*) FROM journal AS t1 JOIN publication AS t2 ON t1.jid = t2.jid \
                 GROUP BY t1.name HAVING COUNT(*) > {}",
                mas.journal_pub_threshold
            ),
        ),
        task(
            mas,
            "B1",
            format!("List the titles and years of publications by author {a}."),
            format!("List the titles and years of publications by \"{a}\""),
            format!(
                "SELECT t1.title, t1.year FROM publication AS t1 JOIN writes AS t2 ON t2.pid = t1.pid \
                 JOIN author AS t3 ON t3.aid = t2.aid WHERE t3.name = '{a}'"
            ),
        ),
        task(
            mas,
            "B2",
            format!("List the conferences and homepages in the {d} domain."),
            format!("List the conferences and homepages in the \"{d}\" domain"),
            format!(
                "SELECT t1.name, t1.homepage FROM conference AS t1 JOIN domain_conference AS t2 \
                 ON t2.cid = t1.cid JOIN domain AS t3 ON t3.did = t2.did WHERE t3.name = '{d}'"
            ),
        ),
        task(
            mas,
            "B3",
            format!(
                "List organizations with more than {} authors and the number of authors for each.",
                mas.org_author_threshold
            ),
            format!(
                "List organizations with more than {} authors and the number of authors for each",
                mas.org_author_threshold
            ),
            format!(
                "SELECT t2.name, COUNT(*) FROM author AS t1 JOIN organization AS t2 ON t1.oid = t2.oid \
                 GROUP BY t2.name HAVING COUNT(*) > {}",
                mas.org_author_threshold
            ),
        ),
        task(
            mas,
            "B4",
            format!(
                "List authors from organization {r} with more than {} publications and the number of publications for each author.",
                mas.author_pub_threshold
            ),
            format!(
                "List authors from \"{r}\" with more than {} publications and the number of publications for each author",
                mas.author_pub_threshold
            ),
            format!(
                "SELECT t1.name, COUNT(*) FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid \
                 JOIN organization AS t3 ON t1.oid = t3.oid JOIN publication AS t4 ON t2.pid = t4.pid \
                 WHERE t3.name = '{r}' GROUP BY t1.name HAVING COUNT(*) > {}",
                mas.author_pub_threshold
            ),
        ),
    ]
}

/// The six tasks of the user study against the PBE baseline (paper Table 8).
pub fn mas_pbe_tasks(mas: &MasDataset) -> Vec<MasTask> {
    let c = &mas.conference_c;
    let a = &mas.author_a;
    let d = &mas.domain_d;
    let continent = &mas.continent;
    vec![
        task(
            mas,
            "C1",
            format!("List all publications in conference {c}."),
            format!("List all publications in conference \"{c}\""),
            format!(
                "SELECT t2.title FROM conference AS t1 JOIN publication AS t2 ON t1.cid = t2.cid \
                 WHERE t1.name = '{c}'"
            ),
        ),
        task(
            mas,
            "C2",
            format!("List authors in domain {d}."),
            format!("List authors in domain \"{d}\""),
            format!(
                "SELECT t1.name FROM author AS t1 JOIN domain_author AS t2 ON t1.aid = t2.aid \
                 JOIN domain AS t3 ON t2.did = t3.did WHERE t3.name = '{d}'"
            ),
        ),
        task(
            mas,
            "C3",
            format!("List authors with more than {} papers in conference {c}.", mas.conf_paper_threshold_c3),
            format!("List authors with more than {} papers in conference \"{c}\"", mas.conf_paper_threshold_c3),
            format!(
                "SELECT t1.name FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid \
                 JOIN publication AS t3 ON t2.pid = t3.pid JOIN conference AS t4 ON t3.cid = t4.cid \
                 WHERE t4.name = '{c}' GROUP BY t1.name HAVING COUNT(*) > {}",
                mas.conf_paper_threshold_c3
            ),
        ),
        task(
            mas,
            "D1",
            format!("List the titles of publications published by author {a}."),
            format!("List the titles of publications published by \"{a}\""),
            format!(
                "SELECT t3.title FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid \
                 JOIN publication AS t3 ON t2.pid = t3.pid WHERE t1.name = '{a}'"
            ),
        ),
        task(
            mas,
            "D2",
            format!("List the names of organizations in continent {continent}."),
            format!("List the names of organizations in continent \"{continent}\""),
            format!("SELECT name FROM organization WHERE continent = '{continent}'"),
        ),
        task(
            mas,
            "D3",
            format!("List authors with more than {} papers in conference {c}.", mas.conf_paper_threshold_d3),
            format!("List authors with more than {} papers in conference \"{c}\"", mas.conf_paper_threshold_d3),
            format!(
                "SELECT t1.name FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid \
                 JOIN publication AS t3 ON t2.pid = t3.pid JOIN conference AS t4 ON t3.cid = t4.cid \
                 WHERE t4.name = '{c}' GROUP BY t1.name HAVING COUNT(*) > {}",
                mas.conf_paper_threshold_d3
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::execute;

    #[test]
    fn all_tasks_parse_and_have_results() {
        let mas = MasDataset::standard();
        let mut all = mas_nli_tasks(&mas);
        all.extend(mas_pbe_tasks(&mas));
        assert_eq!(all.len(), 14);
        for t in &all {
            let rs = execute(&mas.db, &t.gold).unwrap();
            assert!(!rs.is_empty(), "task {} has an empty gold result", t.id);
            assert!(!t.nlq.tokens.is_empty());
        }
    }

    #[test]
    fn difficulty_mix_matches_paper() {
        let mas = MasDataset::standard();
        let nli = mas_nli_tasks(&mas);
        // Table 5: the NLI study has 3 medium and 5 hard tasks.
        let medium = nli.iter().filter(|t| t.level == Difficulty::Medium).count();
        let hard = nli.iter().filter(|t| t.level == Difficulty::Hard).count();
        assert_eq!(medium, 3);
        assert_eq!(hard, 5);
        // Table 5: the PBE study has 4 medium and 2 hard tasks.
        let pbe = mas_pbe_tasks(&mas);
        let medium = pbe.iter().filter(|t| t.level == Difficulty::Medium).count();
        let hard = pbe.iter().filter(|t| t.level == Difficulty::Hard).count();
        assert_eq!(medium, 4);
        assert_eq!(hard, 2);
    }

    #[test]
    fn literals_are_tagged_from_descriptions() {
        let mas = MasDataset::standard();
        let tasks = mas_nli_tasks(&mas);
        let a1 = &tasks[0];
        assert!(a1.nlq.literals.iter().any(|l| l.surface.eq_ignore_ascii_case("sigmod")));
        let a4 = &tasks[3];
        assert!(a4
            .nlq
            .literals
            .iter()
            .any(|l| l.value.as_number() == Some(mas.journal_pub_threshold as f64)));
    }
}
