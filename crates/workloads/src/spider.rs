//! A synthetic cross-domain benchmark standing in for Spider (paper §5.4).
//!
//! The real Spider benchmark is a human-annotated corpus; this generator
//! produces databases whose schema statistics match the paper's Table 5
//! (≈4–5 tables, ≈20 columns, ≈3–4 FK-PK relationships per database) together
//! with gold SQL queries at the paper's easy/medium/hard mix, template NLQs and
//! tagged literals. See DESIGN.md §3 for why this substitution preserves the
//! evaluated behaviour.

use crate::Difficulty;
use duoquest_db::{
    execute, AggFunc, CmpOp, ColumnDef, ColumnId, DataType, Database, Schema, SelectSpec, TableDef,
    Value,
};
use duoquest_nlq::{Literal, Nlq};
use duoquest_sql::QueryBuilder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One benchmark task: a database index, an NLQ with literals, and a gold query.
#[derive(Debug, Clone)]
pub struct SpiderTask {
    /// Task identifier.
    pub id: String,
    /// Index into [`SpiderDataset::databases`].
    pub db_index: usize,
    /// Difficulty level.
    pub level: Difficulty,
    /// The natural language query (with tagged literals).
    pub nlq: Nlq,
    /// The gold query.
    pub gold: SelectSpec,
}

/// A generated benchmark split.
#[derive(Debug, Clone)]
pub struct SpiderDataset {
    /// Split name ("dev" or "test").
    pub name: String,
    /// The generated databases, `Arc`-shared so per-task synthesis sessions
    /// can reference them without copying rows.
    pub databases: Vec<std::sync::Arc<Database>>,
    /// The generated tasks.
    pub tasks: Vec<SpiderTask>,
}

impl SpiderDataset {
    /// The database a task runs against (clone the `Arc` to share it with a
    /// synthesis session).
    pub fn database(&self, task: &SpiderTask) -> &std::sync::Arc<Database> {
        &self.databases[task.db_index]
    }

    /// Number of tasks per difficulty level.
    pub fn difficulty_counts(&self) -> (usize, usize, usize) {
        let easy = self.tasks.iter().filter(|t| t.level == Difficulty::Easy).count();
        let medium = self.tasks.iter().filter(|t| t.level == Difficulty::Medium).count();
        let hard = self.tasks.iter().filter(|t| t.level == Difficulty::Hard).count();
        (easy, medium, hard)
    }
}

/// Generate the development split (paper Table 5: 20 databases, 589 tasks —
/// 239 easy, 252 medium, 98 hard).
pub fn generate_dev(seed: u64) -> SpiderDataset {
    generate("dev", 20, 239, 252, 98, seed)
}

/// Generate the test split (paper Table 5: 40 databases, 1247 tasks —
/// 524 easy, 481 medium, 242 hard).
pub fn generate_test(seed: u64) -> SpiderDataset {
    generate("test", 40, 524, 481, 242, seed)
}

/// A reduced split for quick experiments and tests.
pub fn generate_small(seed: u64) -> SpiderDataset {
    generate("small", 4, 20, 20, 10, seed)
}

/// Generate a split with explicit sizes.
pub fn generate(
    name: &str,
    n_databases: usize,
    n_easy: usize,
    n_medium: usize,
    n_hard: usize,
    seed: u64,
) -> SpiderDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let databases: Vec<std::sync::Arc<Database>> =
        (0..n_databases).map(|i| generate_database(&mut rng, i).into_shared()).collect();
    let mut tasks = Vec::with_capacity(n_easy + n_medium + n_hard);
    let mut task_no = 0usize;
    for (level, count) in
        [(Difficulty::Easy, n_easy), (Difficulty::Medium, n_medium), (Difficulty::Hard, n_hard)]
    {
        let mut made = 0usize;
        let mut attempts = 0usize;
        while made < count && attempts < count * 60 {
            attempts += 1;
            let db_index = task_no % databases.len();
            let db = &databases[db_index];
            if let Some((gold, nlq)) = generate_task(&mut rng, db, level) {
                tasks.push(SpiderTask {
                    id: format!("{name}-{level}-{made:04}"),
                    db_index,
                    level,
                    nlq,
                    gold,
                });
                made += 1;
                task_no += 1;
            } else {
                task_no += 1; // move on to another database
            }
        }
    }
    SpiderDataset { name: name.to_string(), databases, tasks }
}

// ---------------------------------------------------------------------------
// Schema and data generation
// ---------------------------------------------------------------------------

const DOMAINS: &[(&str, &[&str], &[&str])] = &[
    // (entity, text attributes, numeric attributes)
    ("student", &["name", "major", "city"], &["age", "gpa"]),
    ("course", &["title", "department"], &["credits", "enrollment"]),
    ("employee", &["name", "city", "position"], &["salary", "age"]),
    ("department", &["name", "building"], &["budget", "staff_count"]),
    ("customer", &["name", "country", "segment"], &["credit_limit", "age"]),
    ("product", &["title", "category"], &["price", "stock"]),
    ("flight", &["origin", "destination"], &["duration", "price"]),
    ("airport", &["name", "city", "country"], &["elevation", "gates"]),
    ("singer", &["name", "country"], &["age", "net_worth"]),
    ("concert", &["title", "venue"], &["year", "attendance"]),
    ("team", &["name", "city"], &["founded_year", "wins"]),
    ("player", &["name", "position", "nationality"], &["age", "goals"]),
    ("movie", &["title", "director", "genre"], &["year", "rating"]),
    ("actor", &["name", "nationality"], &["birth_year", "awards"]),
    ("book", &["title", "publisher", "language"], &["year", "pages"]),
    ("author", &["name", "country"], &["birth_year", "works"]),
    ("hospital", &["name", "city"], &["beds", "founded_year"]),
    ("doctor", &["name", "specialty"], &["experience_years", "salary"]),
];

const TEXT_VALUES: &[&str] = &[
    "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta", "Eta", "Theta", "Iota", "Kappa",
    "Lambda", "Sigma", "Omega", "Aurora", "Borealis", "Cascade", "Dynamo", "Eclipse", "Fusion",
    "Granite", "Horizon", "Indigo", "Jupiter", "Krypton", "Lumen", "Meridian", "Nimbus", "Orion",
    "Pinnacle", "Quartz", "Raven", "Summit", "Tundra", "Umbra", "Vertex", "Willow", "Xenon",
    "Yonder", "Zephyr", "Amber", "Basil", "Cedar", "Dahlia", "Ember", "Fern", "Grove", "Hazel",
];

/// Generate one database: two related entity tables, a bridge table, and one or
/// two extra entity tables, matching the Table 5 schema statistics on average.
fn generate_database(rng: &mut StdRng, index: usize) -> Database {
    let mut picks: Vec<usize> = (0..DOMAINS.len()).collect();
    picks.shuffle(rng);
    let n_entities = rng.gen_range(3..=4);
    let mut schema = Schema::new(format!("spider_db_{index:03}"));

    let mut entity_tables = Vec::new();
    for &pick in picks.iter().take(n_entities) {
        let (entity, text_attrs, num_attrs) = DOMAINS[pick];
        let mut columns = vec![ColumnDef::number(format!("{entity}_id"))];
        for t in text_attrs.iter().take(rng.gen_range(2..=text_attrs.len())) {
            columns.push(ColumnDef::text(*t));
        }
        for n in num_attrs.iter().take(rng.gen_range(1..=num_attrs.len())) {
            columns.push(ColumnDef::number(*n));
        }
        let name = entity.to_string();
        schema.add_table(TableDef::new(name.clone(), columns, Some(0)));
        entity_tables.push(name);
    }

    // FK from entity 1 to entity 0 (a child-parent relationship) and a bridge
    // table linking entity 0 and the last entity.
    let child = entity_tables[1].clone();
    let parent = entity_tables[0].clone();
    let parent_fk_col = format!("{parent}_id");
    {
        // Add the FK column to the child table.
        let child_id = schema.table_id(&child).unwrap();
        schema.tables[child_id.0].columns.push(ColumnDef::number(parent_fk_col.clone()));
        schema.add_foreign_key(&child, &parent_fk_col, &parent, &parent_fk_col).unwrap();
    }
    let last = entity_tables[entity_tables.len() - 1].clone();
    let bridge_name = format!("{parent}_{last}");
    if last != parent {
        schema.add_table(TableDef::new(
            bridge_name.clone(),
            vec![
                ColumnDef::number(format!("{parent}_id")),
                ColumnDef::number(format!("{last}_id")),
            ],
            None,
        ));
        schema
            .add_foreign_key(
                &bridge_name,
                &format!("{parent}_id"),
                &parent,
                &format!("{parent}_id"),
            )
            .unwrap();
        schema
            .add_foreign_key(&bridge_name, &format!("{last}_id"), &last, &format!("{last}_id"))
            .unwrap();
    }

    let mut db = Database::new(schema).expect("generated schema is valid");

    // Populate the entity tables.
    let mut row_counts = Vec::new();
    for table_name in &entity_tables {
        let tid = db.schema().table_id(table_name).unwrap();
        let columns = db.schema().table(tid).columns.clone();
        let n_rows = rng.gen_range(30..=70);
        row_counts.push((table_name.clone(), n_rows));
        for r in 0..n_rows {
            let mut row = Vec::with_capacity(columns.len());
            for (ci, col) in columns.iter().enumerate() {
                if ci == 0 {
                    row.push(Value::int(r as i64 + 1));
                } else if col.name.ends_with("_id") {
                    // FK column: point at a parent row (parent has ≥30 rows).
                    row.push(Value::int(rng.gen_range(1..=30)));
                } else {
                    match col.dtype {
                        // Low-cardinality text values so grouping produces
                        // multi-row groups (needed for HAVING tasks).
                        DataType::Text => {
                            let base = TEXT_VALUES[rng.gen_range(0..16)];
                            row.push(Value::text(base));
                        }
                        DataType::Number => row.push(Value::int(rng.gen_range(1..=250))),
                    }
                }
            }
            db.insert_by_id(tid, row).unwrap();
        }
    }
    // Populate the bridge table.
    if last != parent {
        let tid = db.schema().table_id(&bridge_name).unwrap();
        for _ in 0..rng.gen_range(60..=120) {
            db.insert_by_id(
                tid,
                vec![Value::int(rng.gen_range(1..=30)), Value::int(rng.gen_range(1..=30))],
            )
            .unwrap();
        }
    }
    db.rebuild_index();
    db
}

// ---------------------------------------------------------------------------
// Task generation
// ---------------------------------------------------------------------------

/// Generate one task of the requested difficulty against a database, or `None`
/// if the sampled query shape has an empty result (the paper removed such tasks).
fn generate_task(rng: &mut StdRng, db: &Database, level: Difficulty) -> Option<(SelectSpec, Nlq)> {
    let schema = db.schema();
    // Pick a base table with at least one text and one numeric non-key column.
    let tables: Vec<_> = (0..schema.table_count())
        .map(duoquest_db::TableId)
        .filter(|t| schema.table(*t).primary_key.is_some())
        .collect();
    let base = *tables.get(rng.gen_range(0..tables.len()))?;
    let text_cols: Vec<ColumnId> = schema
        .table_columns(base)
        .filter(|c| schema.column(*c).dtype == DataType::Text && !schema.is_key_column(*c))
        .collect();
    let num_cols: Vec<ColumnId> = schema
        .table_columns(base)
        .filter(|c| schema.column(*c).dtype == DataType::Number && !schema.is_key_column(*c))
        .collect();
    if text_cols.is_empty() || num_cols.is_empty() {
        return None;
    }
    let text_col = text_cols[rng.gen_range(0..text_cols.len())];
    let num_col = num_cols[rng.gen_range(0..num_cols.len())];
    let table_name = schema.table(base).name.clone();
    let text_name = qualified(schema, text_col);
    let num_name = qualified(schema, num_col);

    let mut builder = QueryBuilder::new(schema);
    let mut text_parts: Vec<String> = Vec::new();
    let mut literals: Vec<Literal> = Vec::new();

    // Projection shape.
    let shape = rng.gen_range(0..3);
    match (level, shape) {
        (Difficulty::Hard, _) => {
            builder = builder.select(&text_name).select_count_star().group_by(&text_name);
            text_parts.push(format!(
                "how many {table_name} records are there for each {}",
                schema.column(text_col).name
            ));
        }
        (_, 0) => {
            builder = builder.select(&text_name).select(&num_name);
            text_parts.push(format!(
                "show the {} and {} of all {table_name}s",
                schema.column(text_col).name,
                schema.column(num_col).name
            ));
        }
        (_, 1) => {
            builder = builder.select(&text_name);
            text_parts
                .push(format!("list the {} of all {table_name}s", schema.column(text_col).name));
        }
        _ => {
            let agg = [AggFunc::Max, AggFunc::Min, AggFunc::Avg][rng.gen_range(0..3)];
            builder = builder.select_agg(agg, &num_name);
            text_parts.push(format!(
                "what is the {} {} of {table_name}s",
                match agg {
                    AggFunc::Max => "maximum",
                    AggFunc::Min => "minimum",
                    _ => "average",
                },
                schema.column(num_col).name
            ));
        }
    }

    // Selection predicates (medium and optionally hard).
    if level != Difficulty::Easy && (level == Difficulty::Medium || rng.gen_bool(0.5)) {
        // Value predicate over a different column than the projected text column
        // so the "constant output column" semantic rule is not violated.
        let candidates: Vec<ColumnId> =
            text_cols.iter().chain(num_cols.iter()).copied().filter(|c| *c != text_col).collect();
        let pred_col = if candidates.is_empty() {
            num_col
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        let pred_name = qualified(schema, pred_col);
        match schema.column(pred_col).dtype {
            DataType::Text => {
                let value = sample_value(rng, db, pred_col)?;
                let Value::Text(s) = &value else { return None };
                builder = builder.filter(&pred_name, CmpOp::Eq, value.clone());
                text_parts.push(format!("whose {} is \"{s}\"", schema.column(pred_col).name));
                literals.push(Literal::text(s.clone(), value.clone()));
            }
            DataType::Number => {
                let (lo, hi) = db.numeric_range(pred_col)?;
                let threshold = (lo + (hi - lo) * rng.gen_range(0.2..0.8)).round();
                let op = if rng.gen_bool(0.5) { CmpOp::Gt } else { CmpOp::Lt };
                builder = builder.filter(&pred_name, op, threshold);
                text_parts.push(format!(
                    "with {} {} than {threshold}",
                    schema.column(pred_col).name,
                    if op == CmpOp::Gt { "greater" } else { "less" }
                ));
                literals.push(Literal::number(threshold));
            }
        }
    }

    // Grouping extras for hard tasks.
    if level == Difficulty::Hard && rng.gen_bool(0.5) {
        let threshold = rng.gen_range(1..=3) as i64;
        builder = builder.having(AggFunc::Count, None, CmpOp::Gt, threshold);
        text_parts.push(format!("keeping only groups with more than {threshold} records"));
        literals.push(Literal::number(threshold as f64));
    }

    // Ordering / limit.
    let wants_order = match level {
        Difficulty::Easy => shape == 1 && rng.gen_bool(0.4),
        Difficulty::Medium => rng.gen_bool(0.25),
        Difficulty::Hard => rng.gen_bool(0.4),
    };
    if wants_order {
        let desc = rng.gen_bool(0.5);
        if level == Difficulty::Hard {
            builder = builder.order_by_agg(AggFunc::Count, None, desc);
            text_parts.push(format!(
                "ordered from {} records",
                if desc { "most to least" } else { "least to most" }
            ));
        } else {
            builder = builder.order_by(&num_name, desc);
            text_parts.push(format!(
                "ordered by {} {}",
                schema.column(num_col).name,
                if desc { "from most to least" } else { "from least to most" }
            ));
        }
        if rng.gen_bool(0.3) {
            let k = rng.gen_range(3..=10) as i64;
            builder = builder.limit(k as usize);
            text_parts.push(format!("top {k} only"));
            literals.push(Literal::number(k as f64));
        }
    }

    let gold = builder.build().ok()?;
    // The paper removed tasks whose gold SQL produces an empty result.
    let result = execute(db, &gold).ok()?;
    if result.is_empty() {
        return None;
    }
    if Difficulty::classify(&gold) != level {
        return None;
    }
    let nlq = Nlq::with_literals(text_parts.join(", "), literals);
    Some((gold, nlq))
}

fn qualified(schema: &Schema, col: ColumnId) -> String {
    schema.qualified_name(col)
}

/// Sample an existing value from a column.
fn sample_value(rng: &mut StdRng, db: &Database, col: ColumnId) -> Option<Value> {
    let values: Vec<Value> = db.column_values(col).filter(|v| !v.is_null()).cloned().collect();
    if values.is_empty() {
        None
    } else {
        Some(values[rng.gen_range(0..values.len())].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_split_generates_requested_mix() {
        let ds = generate_small(3);
        let (easy, medium, hard) = ds.difficulty_counts();
        assert_eq!(ds.databases.len(), 4);
        assert_eq!(easy, 20);
        assert_eq!(medium, 20);
        assert_eq!(hard, 10);
        assert_eq!(ds.tasks.len(), 50);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_small(9);
        let b = generate_small(9);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.id, y.id);
            assert!(duoquest_sql::queries_equivalent(&x.gold, &y.gold));
        }
    }

    #[test]
    fn every_task_has_nonempty_result_and_matching_level() {
        let ds = generate_small(11);
        for t in &ds.tasks {
            let db = ds.database(t);
            let rs = execute(db, &t.gold).unwrap();
            assert!(!rs.is_empty(), "task {} has empty result", t.id);
            assert_eq!(Difficulty::classify(&t.gold), t.level);
            // Literal set covers every predicate constant.
            for p in &t.gold.predicates {
                assert!(
                    t.nlq.literals.iter().any(|l| l.value.sql_eq(&p.value)),
                    "task {} misses literal for predicate",
                    t.id
                );
            }
        }
    }

    #[test]
    fn schema_statistics_are_in_the_table5_ballpark() {
        let ds = generate_small(5);
        let avg_tables: f64 =
            ds.databases.iter().map(|d| d.schema().table_count() as f64).sum::<f64>()
                / ds.databases.len() as f64;
        let avg_fks: f64 =
            ds.databases.iter().map(|d| d.schema().foreign_key_count() as f64).sum::<f64>()
                / ds.databases.len() as f64;
        assert!((3.0..=6.0).contains(&avg_tables), "{avg_tables}");
        assert!((2.0..=5.0).contains(&avg_fks), "{avg_fks}");
    }
}
