//! A seeded generator for a Microsoft-Academic-Search-like database.
//!
//! The user studies of the paper run on the MAS database (15 tables,
//! 44 columns, 19 FK-PK relationships after the authors' trimming — paper
//! Table 5). The real MAS snapshot is not redistributable, so this module
//! generates a synthetic database with the same schema shape and with data
//! engineered so that every user-study task of Tables 7/8 has a non-empty
//! result (see DESIGN.md §3).

use duoquest_db::{ColumnDef, Database, Schema, TableDef, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generated MAS-like dataset: the loaded database plus the entity names
/// the user-study tasks refer to. The database is `Arc`-shared so synthesis
/// sessions (and their worker pools) can reference it without copying rows.
#[derive(Debug, Clone)]
pub struct MasDataset {
    /// The loaded, indexed database, shared across sessions.
    pub db: std::sync::Arc<Database>,
    /// The conference used as "conference C" in the tasks.
    pub conference_c: String,
    /// The author used as "author A".
    pub author_a: String,
    /// The organization used as "organization R".
    pub organization_r: String,
    /// The domain used as "domain D".
    pub domain_d: String,
    /// The continent used in task D2.
    pub continent: String,
    /// HAVING threshold for "journals with more than N publications" (A4).
    pub journal_pub_threshold: i64,
    /// HAVING threshold for "organizations with more than N authors" (B3).
    pub org_author_threshold: i64,
    /// HAVING threshold for "authors ... with more than N publications" (B4).
    pub author_pub_threshold: i64,
    /// HAVING threshold for "authors with more than N papers in conference C" (C3).
    pub conf_paper_threshold_c3: i64,
    /// HAVING threshold for task D3.
    pub conf_paper_threshold_d3: i64,
}

/// Build the MAS schema (15 tables, 19 FK-PK relationships).
pub fn mas_schema() -> Schema {
    let mut s = Schema::new("mas");
    s.add_table(TableDef::new(
        "author",
        vec![
            ColumnDef::number("aid"),
            ColumnDef::text("name"),
            ColumnDef::text("homepage"),
            ColumnDef::number("oid"),
        ],
        Some(0),
    ));
    s.add_table(TableDef::new(
        "conference",
        vec![ColumnDef::number("cid"), ColumnDef::text("name"), ColumnDef::text("homepage")],
        Some(0),
    ));
    s.add_table(TableDef::new(
        "domain",
        vec![ColumnDef::number("did"), ColumnDef::text("name")],
        Some(0),
    ));
    s.add_table(TableDef::new(
        "domain_author",
        vec![ColumnDef::number("aid"), ColumnDef::number("did")],
        None,
    ));
    s.add_table(TableDef::new(
        "domain_conference",
        vec![ColumnDef::number("cid"), ColumnDef::number("did")],
        None,
    ));
    s.add_table(TableDef::new(
        "domain_journal",
        vec![ColumnDef::number("jid"), ColumnDef::number("did")],
        None,
    ));
    s.add_table(TableDef::new(
        "domain_keyword",
        vec![ColumnDef::number("kid"), ColumnDef::number("did")],
        None,
    ));
    s.add_table(TableDef::new(
        "domain_publication",
        vec![ColumnDef::number("did"), ColumnDef::number("pid")],
        None,
    ));
    s.add_table(TableDef::new(
        "journal",
        vec![ColumnDef::number("jid"), ColumnDef::text("name"), ColumnDef::text("homepage")],
        Some(0),
    ));
    s.add_table(TableDef::new(
        "keyword",
        vec![ColumnDef::number("kid"), ColumnDef::text("keyword")],
        Some(0),
    ));
    s.add_table(TableDef::new(
        "organization",
        vec![
            ColumnDef::number("oid"),
            ColumnDef::text("name"),
            ColumnDef::text("continent"),
            ColumnDef::text("homepage"),
        ],
        Some(0),
    ));
    s.add_table(TableDef::new(
        "publication",
        vec![
            ColumnDef::number("pid"),
            ColumnDef::text("title"),
            ColumnDef::text("abstract"),
            ColumnDef::number("year"),
            ColumnDef::number("citation_num"),
            ColumnDef::number("reference_num"),
            ColumnDef::number("cid"),
            ColumnDef::number("jid"),
        ],
        Some(0),
    ));
    s.add_table(TableDef::new(
        "publication_keyword",
        vec![ColumnDef::number("pid"), ColumnDef::number("kid")],
        None,
    ));
    s.add_table(TableDef::new(
        "writes",
        vec![ColumnDef::number("aid"), ColumnDef::number("pid")],
        None,
    ));
    s.add_table(TableDef::new(
        "cite",
        vec![ColumnDef::number("citing"), ColumnDef::number("cited")],
        None,
    ));

    for (ft, fc, tt, tc) in [
        ("author", "oid", "organization", "oid"),
        ("domain_author", "aid", "author", "aid"),
        ("domain_author", "did", "domain", "did"),
        ("domain_conference", "cid", "conference", "cid"),
        ("domain_conference", "did", "domain", "did"),
        ("domain_journal", "jid", "journal", "jid"),
        ("domain_journal", "did", "domain", "did"),
        ("domain_keyword", "kid", "keyword", "kid"),
        ("domain_keyword", "did", "domain", "did"),
        ("domain_publication", "did", "domain", "did"),
        ("domain_publication", "pid", "publication", "pid"),
        ("publication", "cid", "conference", "cid"),
        ("publication", "jid", "journal", "jid"),
        ("publication_keyword", "pid", "publication", "pid"),
        ("publication_keyword", "kid", "keyword", "kid"),
        ("writes", "aid", "author", "aid"),
        ("writes", "pid", "publication", "pid"),
        ("cite", "citing", "publication", "pid"),
        ("cite", "cited", "publication", "pid"),
    ] {
        s.add_foreign_key(ft, fc, tt, tc).expect("valid MAS foreign key");
    }
    s
}

/// Generate the MAS-like dataset. `scale` multiplies the entity counts
/// (1.0 ≈ a few hundred publications; large enough to exercise verification,
/// small enough for interactive experiments).
pub fn generate(seed: u64, scale: f64) -> MasDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = mas_schema();
    let mut db = Database::new(schema).expect("MAS schema is valid");

    let n = |base: usize| ((base as f64 * scale).round() as usize).max(4);

    let domains = [
        "Databases",
        "Machine Learning",
        "Systems",
        "Theory",
        "Networking",
        "Graphics",
        "Security",
        "Human Computer Interaction",
    ];
    for (i, d) in domains.iter().enumerate() {
        db.insert("domain", vec![Value::int(i as i64 + 1), Value::text(*d)]).unwrap();
    }

    let continents = ["North America", "Europe", "Asia"];
    let n_orgs = n(8);
    for i in 0..n_orgs {
        let name = if i == 0 {
            "University of Michigan".to_string()
        } else {
            format!("Research Institute {i:02}")
        };
        let continent = continents[i % continents.len()];
        db.insert(
            "organization",
            vec![
                Value::int(i as i64 + 1),
                Value::text(name),
                Value::text(continent),
                Value::text(format!("http://org{i}.example.edu")),
            ],
        )
        .unwrap();
    }

    let n_authors = n(40);
    for i in 0..n_authors {
        let name = if i == 0 { "Alice Smith".to_string() } else { format!("Author {i:03}") };
        // The first 12 authors belong to organization R (University of Michigan).
        let oid = if i < 12 { 1 } else { (rng.gen_range(0..n_orgs) + 1) as i64 };
        db.insert(
            "author",
            vec![
                Value::int(i as i64 + 1),
                Value::text(name),
                Value::text(format!("http://people.example.edu/a{i}")),
                Value::int(oid),
            ],
        )
        .unwrap();
        // Domain membership: authors 0..20 are in "Databases".
        let did = if i < 20 { 1 } else { (rng.gen_range(0..domains.len()) + 1) as i64 };
        db.insert("domain_author", vec![Value::int(i as i64 + 1), Value::int(did)]).unwrap();
    }

    let conferences = ["SIGMOD", "VLDB", "ICDE", "KDD", "SOSP", "NSDI", "CHI", "S&P"];
    let n_confs = conferences.len();
    for (i, c) in conferences.iter().enumerate() {
        db.insert(
            "conference",
            vec![
                Value::int(i as i64 + 1),
                Value::text(*c),
                Value::text(format!("http://{}.example.org", c.to_ascii_lowercase())),
            ],
        )
        .unwrap();
        let did = if i < 3 { 1 } else { (i % domains.len()) as i64 + 1 };
        db.insert("domain_conference", vec![Value::int(i as i64 + 1), Value::int(did)]).unwrap();
    }

    let journals = ["TODS", "TKDE", "VLDB Journal", "JMLR"];
    for (i, j) in journals.iter().enumerate() {
        db.insert(
            "journal",
            vec![
                Value::int(i as i64 + 1),
                Value::text(*j),
                Value::text(format!("http://journal{i}.example.org")),
            ],
        )
        .unwrap();
        let did = if i < 3 { 1 } else { 2 };
        db.insert("domain_journal", vec![Value::int(i as i64 + 1), Value::int(did)]).unwrap();
    }

    let keywords = [
        "query processing",
        "machine learning",
        "transactions",
        "indexing",
        "natural language",
        "program synthesis",
        "distributed systems",
        "privacy",
        "data integration",
        "crowdsourcing",
    ];
    for (i, k) in keywords.iter().enumerate() {
        db.insert("keyword", vec![Value::int(i as i64 + 1), Value::text(*k)]).unwrap();
        let did = if i < 5 { 1 } else { (i % domains.len()) as i64 + 1 };
        db.insert("domain_keyword", vec![Value::int(i as i64 + 1), Value::int(did)]).unwrap();
    }

    // Publications: the first journal (TODS) receives a guaranteed block so the
    // "more than N publications" journal task (A4) is non-empty, and SIGMOD
    // (conference 1) receives a large block for the conference tasks.
    let n_pubs = n(240);
    let journal_block = 18usize;
    for i in 0..n_pubs {
        let pid = i as i64 + 1;
        let year = rng.gen_range(1985..=2022);
        let (cid, jid) = if i < journal_block {
            (Value::Null, Value::int(1))
        } else if i < journal_block + 60 {
            (Value::int(1), Value::Null) // SIGMOD block
        } else if rng.gen_bool(0.8) {
            (Value::int(rng.gen_range(1..=n_confs as i64)), Value::Null)
        } else {
            (Value::Null, Value::int(rng.gen_range(1..=journals.len() as i64)))
        };
        db.insert(
            "publication",
            vec![
                Value::int(pid),
                Value::text(format!("Paper {pid:04}")),
                Value::text(format!("Abstract of paper {pid:04}")),
                Value::int(year),
                Value::int(rng.gen_range(0..400)),
                Value::int(rng.gen_range(5..60)),
                cid,
                jid,
            ],
        )
        .unwrap();
        // Keywords and domain membership.
        let kid = rng.gen_range(1..=keywords.len() as i64);
        db.insert("publication_keyword", vec![Value::int(pid), Value::int(kid)]).unwrap();
        db.insert(
            "domain_publication",
            vec![Value::int(rng.gen_range(1..=domains.len() as i64)), Value::int(pid)],
        )
        .unwrap();
    }

    // Authorship: the first 6 authors (all from organization R, all in the
    // Databases domain, Alice Smith among them) each write a guaranteed block
    // of SIGMOD papers so the HAVING tasks (B4, C3, D3) are non-empty.
    let sigmod_start = journal_block as i64 + 1;
    for a in 0..6i64 {
        for k in 0..6i64 {
            let pid = sigmod_start + a * 6 + k;
            db.insert("writes", vec![Value::int(a + 1), Value::int(pid)]).unwrap();
        }
    }
    // Remaining publications get 1–3 random authors.
    for pid in 1..=n_pubs as i64 {
        if pid >= sigmod_start && pid < sigmod_start + 36 {
            continue; // already assigned above
        }
        let n_auth = rng.gen_range(1..=3);
        for _ in 0..n_auth {
            let aid = rng.gen_range(1..=n_authors as i64);
            db.insert("writes", vec![Value::int(aid), Value::int(pid)]).unwrap();
        }
    }

    // Citations.
    for _ in 0..n_pubs {
        let citing = rng.gen_range(1..=n_pubs as i64);
        let cited = rng.gen_range(1..=n_pubs as i64);
        if citing != cited {
            db.insert("cite", vec![Value::int(citing), Value::int(cited)]).unwrap();
        }
    }

    db.rebuild_index();
    MasDataset {
        db: db.into_shared(),
        conference_c: "SIGMOD".to_string(),
        author_a: "Alice Smith".to_string(),
        organization_r: "University of Michigan".to_string(),
        domain_d: "Databases".to_string(),
        continent: "North America".to_string(),
        journal_pub_threshold: 10,
        org_author_threshold: 8,
        author_pub_threshold: 3,
        conf_paper_threshold_c3: 2,
        conf_paper_threshold_d3: 3,
    }
}

impl MasDataset {
    /// Generate with the default seed and scale.
    pub fn standard() -> Self {
        generate(42, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::execute;
    use duoquest_sql::parse_query;

    #[test]
    fn schema_shape_matches_table_5() {
        let s = mas_schema();
        assert_eq!(s.table_count(), 15);
        assert_eq!(s.foreign_key_count(), 19);
        assert!(s.column_count() >= 40 && s.column_count() <= 48, "{}", s.column_count());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, 0.5);
        let b = generate(7, 0.5);
        assert_eq!(a.db.total_rows(), b.db.total_rows());
        assert_ne!(a.db.total_rows(), generate(8, 0.5).db.total_rows());
    }

    #[test]
    fn focus_entities_exist_and_tasks_are_satisfiable() {
        let mas = MasDataset::standard();
        let db = &mas.db;
        assert!(db.index().contains(&mas.conference_c));
        assert!(db.index().contains(&mas.author_a));
        assert!(db.index().contains(&mas.organization_r));
        assert!(db.index().contains(&mas.domain_d));

        // Task B4-style query must be non-empty with the configured threshold.
        let sql = format!(
            "SELECT t1.name, COUNT(*) FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid \
             JOIN organization AS t3 ON t1.oid = t3.oid JOIN publication AS t4 ON t2.pid = t4.pid \
             WHERE t3.name = '{}' GROUP BY t1.name HAVING COUNT(*) > {}",
            mas.organization_r, mas.author_pub_threshold
        );
        let spec = parse_query(db.schema(), &sql).unwrap();
        let rs = execute(db, &spec).unwrap();
        assert!(!rs.is_empty());

        // Journals with more than N publications (A4).
        let sql = format!(
            "SELECT t1.name, COUNT(*) FROM journal AS t1 JOIN publication AS t2 ON t1.jid = t2.jid \
             GROUP BY t1.name HAVING COUNT(*) > {}",
            mas.journal_pub_threshold
        );
        let spec = parse_query(db.schema(), &sql).unwrap();
        assert!(!execute(db, &spec).unwrap().is_empty());

        // Organizations with more than N authors (B3).
        let sql = format!(
            "SELECT t2.name, COUNT(*) FROM author AS t1 JOIN organization AS t2 ON t1.oid = t2.oid \
             GROUP BY t2.name HAVING COUNT(*) > {}",
            mas.org_author_threshold
        );
        let spec = parse_query(db.schema(), &sql).unwrap();
        assert!(!execute(db, &spec).unwrap().is_empty());
    }
}
