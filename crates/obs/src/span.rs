//! Structured per-request tracing: bounded span/event buffers anchored to
//! one instant, all offsets in microseconds.
//!
//! Determinism contract: a [`Trace`] never influences the work it observes —
//! recording appends to a bounded buffer behind a mutex that no hot
//! emission path contends on (chunk workers record into thread-local
//! [`RawSpan`] buffers that the round driver merges **in child order**), so
//! trace content under a simulated clock is fully reproducible and
//! candidate emission is byte-identical with tracing on or off.

use crate::escape_json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A span recorded with absolute instants, before conversion to trace
/// offsets. Chunk workers fill plain `Vec<RawSpan>` buffers (no locking,
/// no shared state) that travel back inside the chunk result and are merged
/// into the session's [`Trace`] in deterministic child order.
#[derive(Debug, Clone, Copy)]
pub struct RawSpan {
    /// Static span name (e.g. `"chunk"`).
    pub name: &'static str,
    /// When the span opened, on the caller's clock.
    pub start: Instant,
    /// When the span closed, on the caller's clock.
    pub end: Instant,
}

/// One completed span on a request's timeline, offsets in microseconds from
/// the trace anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name.
    pub name: &'static str,
    /// Microseconds from the trace anchor to the span's open.
    pub start_us: u64,
    /// Microseconds from the trace anchor to the span's close.
    pub end_us: u64,
}

/// A point event on a request's timeline (admission, terminal resolution…),
/// with an optional free-form detail string (a status label, a panic
/// message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static event name.
    pub name: &'static str,
    /// Microseconds from the trace anchor.
    pub at_us: u64,
    /// Optional detail (status label, panic payload…).
    pub detail: Option<String>,
}

/// The name of the root span covering the whole request (submit →
/// resolution). Every other span on a well-formed trace nests inside it.
pub const ROOT_SPAN: &str = "request";

/// The name of the terminal event every resolved request records exactly
/// once (the DST trace-conservation oracle holds this).
pub const TERMINAL_EVENT: &str = "terminal";

#[derive(Default)]
struct TraceInner {
    spans: Vec<SpanRecord>,
    events: Vec<TraceEvent>,
}

/// One request's timeline: a bounded buffer of spans and events, anchored
/// to the instant the request was submitted. All recording APIs take
/// `Instant`s read from the **caller's** clock, so a service running on a
/// simulated clock produces traces entirely on the virtual timeline.
///
/// The buffer is bounded ([`Trace::with_capacity`]); past the bound, new
/// spans are counted in `dropped` instead of retained, so a pathological
/// request can never balloon its trace.
pub struct Trace {
    id: u64,
    anchor: Instant,
    cap: usize,
    inner: Mutex<TraceInner>,
    dropped: AtomicU64,
    anomalous: AtomicBool,
}

/// Default bound on retained spans + events per trace.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl Trace {
    /// A trace for request `id`, anchored at `anchor` (normally the submit
    /// instant, read from the service's clock), with the default buffer
    /// bound.
    pub fn new(id: u64, anchor: Instant) -> Self {
        Trace::with_capacity(id, anchor, DEFAULT_TRACE_CAPACITY)
    }

    /// A trace with an explicit bound on retained spans + events.
    pub fn with_capacity(id: u64, anchor: Instant, cap: usize) -> Self {
        Trace {
            id,
            anchor,
            cap: cap.max(2),
            inner: Mutex::new(TraceInner::default()),
            dropped: AtomicU64::new(0),
            anomalous: AtomicBool::new(false),
        }
    }

    /// The request id this trace describes.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The anchor instant (offset 0 of the timeline).
    pub fn anchor(&self) -> Instant {
        self.anchor
    }

    /// Microseconds from the anchor to `at` (0 if `at` precedes the anchor).
    pub fn offset_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.anchor).as_micros() as u64
    }

    /// Record a completed span from absolute instants.
    #[cfg(feature = "trace")]
    pub fn record_span(&self, name: &'static str, start: Instant, end: Instant) {
        self.record_span_at(name, self.offset_us(start), self.offset_us(end));
    }

    /// Record a completed span from absolute instants (no-op: the `trace`
    /// feature is off).
    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    pub fn record_span(&self, _name: &'static str, _start: Instant, _end: Instant) {}

    /// Record a completed span from precomputed microsecond offsets (used
    /// when the caller already merged raw buffers, or synthesizes aggregate
    /// spans from stage timings).
    #[cfg(feature = "trace")]
    pub fn record_span_at(&self, name: &'static str, start_us: u64, end_us: u64) {
        let mut inner = self.inner.lock().expect("trace buffer poisoned");
        if inner.spans.len() + inner.events.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.spans.push(SpanRecord { name, start_us, end_us });
    }

    /// Record a completed span from precomputed offsets (no-op: the `trace`
    /// feature is off).
    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    pub fn record_span_at(&self, _name: &'static str, _start_us: u64, _end_us: u64) {}

    /// Merge a chunk-local raw span buffer. Call in deterministic (child)
    /// order so trace content is reproducible under a simulated clock.
    pub fn merge_raw(&self, raw: &[RawSpan]) {
        for span in raw {
            self.record_span(span.name, span.start, span.end);
        }
    }

    /// Record a point event.
    #[cfg(feature = "trace")]
    pub fn event(&self, name: &'static str, at: Instant, detail: Option<String>) {
        let at_us = self.offset_us(at);
        let mut inner = self.inner.lock().expect("trace buffer poisoned");
        // The terminal event is never dropped: conservation (exactly one
        // terminal per admitted request) must survive a full buffer.
        if name != TERMINAL_EVENT && inner.spans.len() + inner.events.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.events.push(TraceEvent { name, at_us, detail });
    }

    /// Record a point event. Terminal events are retained even with the
    /// `trace` feature off, so request conservation holds in every build.
    #[cfg(not(feature = "trace"))]
    pub fn event(&self, name: &'static str, at: Instant, detail: Option<String>) {
        if name != TERMINAL_EVENT {
            return;
        }
        let at_us = self.offset_us(at);
        let mut inner = self.inner.lock().expect("trace buffer poisoned");
        inner.events.push(TraceEvent { name, at_us, detail });
    }

    /// Mark the request anomalous (panicked, shed, deadline exceeded): the
    /// flight recorder dumps anomalous traces to stderr when
    /// `DUOQUEST_FLIGHT_DUMP` is set.
    pub fn mark_anomalous(&self) {
        self.anomalous.store(true, Ordering::Relaxed);
    }

    /// Whether the request was marked anomalous.
    pub fn is_anomalous(&self) -> bool {
        self.anomalous.load(Ordering::Relaxed)
    }

    /// Spans dropped past the buffer bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the recorded spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.lock().expect("trace buffer poisoned").spans.clone()
    }

    /// Snapshot of the recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("trace buffer poisoned").events.clone()
    }

    /// Number of terminal events recorded (exactly 1 on a well-formed
    /// resolved request — the DST conservation oracle).
    pub fn terminal_count(&self) -> usize {
        self.inner
            .lock()
            .expect("trace buffer poisoned")
            .events
            .iter()
            .filter(|e| e.name == TERMINAL_EVENT)
            .count()
    }

    /// Render the whole timeline as one JSON object (the `GET /trace/<id>`
    /// body and the flight-dump format).
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("trace buffer poisoned");
        let spans = inner
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":{},\"start_us\":{},\"end_us\":{}}}",
                    escape_json(s.name),
                    s.start_us,
                    s.end_us
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let events = inner
            .events
            .iter()
            .map(|e| {
                let detail = match &e.detail {
                    Some(d) => escape_json(d),
                    None => "null".into(),
                };
                format!(
                    "{{\"name\":{},\"at_us\":{},\"detail\":{}}}",
                    escape_json(e.name),
                    e.at_us,
                    detail
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"id\":{},\"anomalous\":{},\"dropped\":{},\"spans\":[{spans}],\"events\":[{events}]}}",
            self.id,
            self.is_anomalous(),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("trace buffer poisoned");
        f.debug_struct("Trace")
            .field("id", &self.id)
            .field("spans", &inner.spans.len())
            .field("events", &inner.events.len())
            .field("anomalous", &self.is_anomalous())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn offsets_are_anchored_and_saturating() {
        let anchor = Instant::now();
        let trace = Trace::new(7, anchor);
        assert_eq!(trace.offset_us(anchor), 0);
        assert_eq!(trace.offset_us(anchor + Duration::from_micros(250)), 250);
        // An instant before the anchor clamps to 0 instead of underflowing.
        assert_eq!(trace.offset_us(anchor - Duration::from_micros(5)), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn spans_and_events_round_trip_through_json() {
        let anchor = Instant::now();
        let trace = Trace::new(3, anchor);
        trace.record_span(ROOT_SPAN, anchor, anchor + Duration::from_micros(100));
        trace.record_span_at("chunk", 10, 40);
        trace.event(TERMINAL_EVENT, anchor + Duration::from_micros(100), Some("completed".into()));
        let json = trace.to_json();
        assert!(json.contains("\"id\":3"), "{json}");
        assert!(json.contains("\"name\":\"request\""), "{json}");
        assert!(json.contains("\"start_us\":10"), "{json}");
        assert!(json.contains("\"detail\":\"completed\""), "{json}");
        assert_eq!(trace.terminal_count(), 1);
        assert_eq!(trace.spans().len(), 2);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn buffer_bound_drops_spans_but_never_the_terminal_event() {
        let anchor = Instant::now();
        let trace = Trace::with_capacity(1, anchor, 4);
        for i in 0..10 {
            trace.record_span_at("chunk", i, i + 1);
        }
        assert_eq!(trace.spans().len(), 4);
        assert_eq!(trace.dropped(), 6);
        trace.event(TERMINAL_EVENT, anchor, None);
        assert_eq!(trace.terminal_count(), 1, "terminal event survives a full buffer");
    }

    #[test]
    fn anomalous_flag_sticks() {
        let trace = Trace::new(9, Instant::now());
        assert!(!trace.is_anomalous());
        trace.mark_anomalous();
        assert!(trace.is_anomalous());
    }
}
