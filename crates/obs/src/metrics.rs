//! The metrics registry: log-bucketed mergeable histograms and a
//! Prometheus-text-format exposition builder.
//!
//! There is no global registry object: the stack's counters already live
//! where the work happens (service class counters, net front atomics, db
//! cache stats). The [`Exposition`] builder assembles a scrape **at scrape
//! time** from those sources; only [`Histogram`]s are live obs-owned state,
//! because percentile structure cannot be reconstructed from plain
//! counters after the fact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i < BUCKETS-1` counts samples with
/// value ≤ 2^i microseconds; the last bucket is the overflow (`+Inf`).
pub const BUCKETS: usize = 32;

/// A log-bucketed latency histogram over microseconds: lock-free atomic
/// buckets at powers of two, mergeable, with nearest-rank quantiles read
/// from the bucket upper bounds.
///
/// This replaces sampling reservoirs: every sample lands (no loss under
/// load), recording is one atomic add, and two histograms merge by adding
/// buckets — which is what lets per-class service histograms roll up into
/// one scrape without retaining samples.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

/// Bucket index of a microsecond value: smallest `i` with `v ≤ 2^i`
/// (overflow lands in the last bucket).
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((u64::BITS - (v - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The upper bound (µs) of bucket `i`; `None` for the overflow bucket.
pub fn bucket_bound_us(i: usize) -> Option<u64> {
    (i < BUCKETS - 1).then(|| 1u64 << i)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample, in microseconds.
    pub fn record_us(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Merge another histogram into this one (bucket-wise addition).
    pub fn merge(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            self.buckets[i].fetch_add(other.buckets[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum_us.fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the upper bound
    /// of the bucket holding the rank — i.e. an upper estimate within one
    /// power of two. `None` when the histogram is empty. The overflow
    /// bucket reports its lower bound (the largest finite bound).
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bound_us(i).unwrap_or(1u64 << (BUCKETS - 2)));
            }
        }
        None
    }

    /// [`Histogram::quantile_us`] as a `Duration`.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        self.quantile_us(q).map(Duration::from_micros)
    }
}

/// A Prometheus-text-format scrape under assembly: callers declare each
/// metric once (`# HELP` / `# TYPE` headers) and append samples; histograms
/// render their full cumulative `_bucket` / `_sum` / `_count` series.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    declared: Vec<String>,
}

impl Exposition {
    /// An empty scrape.
    pub fn new() -> Self {
        Exposition::default()
    }

    fn declare(&mut self, name: &str, kind: &str, help: &str) {
        if self.declared.iter().any(|n| n == name) {
            return;
        }
        self.declared.push(name.to_string());
        self.out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        if labels.is_empty() {
            self.out.push_str(&format!("{name} {value}\n"));
        } else {
            let labels = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
                .collect::<Vec<_>>()
                .join(",");
            self.out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    }

    /// Declare (first use) and append a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.declare(name, "counter", help);
        self.sample(name, labels, value);
    }

    /// Declare (first use) and append a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.declare(name, "gauge", help);
        self.sample(name, labels, value);
    }

    /// Declare (first use) and append one histogram series: cumulative
    /// `_bucket{le=…}` lines ending in `le="+Inf"`, plus `_sum` and
    /// `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.declare(name, "histogram", help);
        let counts = h.bucket_counts();
        let mut cumulative = 0u64;
        let bucket_name = format!("{name}_bucket");
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            let le = match bucket_bound_us(i) {
                Some(bound) => bound.to_string(),
                None => "+Inf".to_string(),
            };
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&bucket_name, &with_le, cumulative);
        }
        self.sample(&format!("{name}_sum"), labels, h.sum_us());
        self.sample(&format!("{name}_count"), labels, h.count());
    }

    /// The assembled scrape body.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Validate Prometheus text-format well-formedness: header syntax, sample
/// syntax, metric-name lexicon, every sample preceded by a `# TYPE` for its
/// base name, and histogram invariants (every `_bucket` has `le`, buckets
/// are cumulative, the `+Inf` bucket equals `_count`). Used by unit tests
/// and by the CI smoke step that scrapes `GET /metrics` under load.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    let mut typed: Vec<(String, String)> = Vec::new(); // (name, kind)
                                                       // Per histogram **series** (base name + non-`le` labels — each label set
                                                       // is its own cumulative ladder): (last cumulative bucket value, saw
                                                       // +Inf, +Inf value, count value).
    let mut hist: std::collections::HashMap<String, (u64, bool, u64, Option<u64>)> =
        std::collections::HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let human = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let name = parts.next().unwrap_or_default();
            match keyword {
                "HELP" => {
                    if !valid_name(name) {
                        return Err(format!("line {human}: HELP for invalid name {name:?}"));
                    }
                }
                "TYPE" => {
                    let kind = parts.next().unwrap_or_default().trim();
                    if !valid_name(name) {
                        return Err(format!("line {human}: TYPE for invalid name {name:?}"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram") {
                        return Err(format!("line {human}: unknown metric type {kind:?}"));
                    }
                    typed.push((name.to_string(), kind.to_string()));
                }
                _ => return Err(format!("line {human}: unknown comment keyword {keyword:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return Err(format!("line {human}: sample has no value: {line:?}")),
        };
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {human}: unparseable sample value {value_part:?}"))?;
        let (name, labels) = match name_part.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {human}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (name_part, None),
        };
        if !valid_name(name) {
            return Err(format!("line {human}: invalid metric name {name:?}"));
        }
        // Resolve the base name: histogram series append _bucket/_sum/_count.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let stripped = name.strip_suffix(suffix)?;
                typed
                    .iter()
                    .any(|(n, k)| n == stripped && k == "histogram")
                    .then(|| stripped.to_string())
            })
            .unwrap_or_else(|| name.to_string());
        if !typed.iter().any(|(n, _)| *n == base) {
            return Err(format!("line {human}: sample {name:?} has no preceding # TYPE"));
        }
        if name.ends_with("_bucket") && typed.iter().any(|(n, k)| *n == base && k == "histogram") {
            let labels = labels.unwrap_or_default();
            let mut series: Vec<&str> = Vec::new();
            let mut le = None;
            for label in labels.split(',').filter(|l| !l.is_empty()) {
                match label.split_once('=') {
                    Some(("le", v)) => le = Some(v.trim_matches('"')),
                    _ => series.push(label),
                }
            }
            let Some(le) = le else {
                return Err(format!("line {human}: histogram bucket without an le label"));
            };
            let key = format!("{base}{{{}}}", series.join(","));
            let entry = hist.entry(key).or_insert((0, false, 0, None));
            let bucket_value = value as u64;
            if bucket_value < entry.0 {
                return Err(format!("line {human}: histogram {base:?} buckets not cumulative"));
            }
            entry.0 = bucket_value;
            if le == "+Inf" {
                entry.1 = true;
                entry.2 = bucket_value;
            } else if le.parse::<f64>().is_err() {
                return Err(format!("line {human}: unparseable le bound {le:?}"));
            }
        }
        if name.ends_with("_count") && typed.iter().any(|(n, k)| *n == base && k == "histogram") {
            // `_count` carries exactly the bucket lines' non-`le` labels, in
            // the same order, so the raw label string is the series key.
            let key = format!("{base}{{{}}}", labels.unwrap_or_default());
            hist.entry(key).or_insert((0, false, 0, None)).3 = Some(value as u64);
        }
    }
    for (series, (_, saw_inf, inf_value, count)) in &hist {
        if !saw_inf {
            return Err(format!("histogram series {series:?} has no +Inf bucket"));
        }
        if let Some(count) = count {
            if inf_value != count {
                return Err(format!(
                    "histogram series {series:?}: +Inf bucket {inf_value} != count {count}"
                ));
            }
        } else {
            return Err(format!("histogram series {series:?} has no _count sample"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_smallest_covering_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        for v in [1u64, 2, 3, 100, 100, 100, 5000, 100_000] {
            h.record_us(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum_us(), 105_306);
        // p50 lands in the bucket covering 100 (le=128).
        assert_eq!(h.quantile_us(0.5), Some(128));
        // p100 lands in the bucket covering 100_000 (le=131072).
        assert_eq!(h.quantile_us(1.0), Some(131_072));
    }

    #[test]
    fn histograms_merge_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_us(10);
        b.record_us(10);
        b.record_us(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_us(), 1_000_020);
        assert_eq!(a.quantile_us(0.5), Some(16));
    }

    #[test]
    fn exposition_renders_and_validates() {
        let h = Histogram::new();
        h.record_us(50);
        h.record_us(700);
        let mut expo = Exposition::new();
        expo.counter("duoquest_requests_total", "Requests.", &[("class", "interactive")], 3);
        expo.counter("duoquest_requests_total", "Requests.", &[("class", "batch")], 1);
        expo.gauge("duoquest_live_sessions", "Live sessions.", &[], 2);
        expo.histogram("duoquest_ttfc_us", "TTFC in microseconds.", &[], &h);
        let text = expo.finish();
        assert!(text.contains("# TYPE duoquest_requests_total counter"), "{text}");
        assert!(text.contains("duoquest_requests_total{class=\"interactive\"} 3"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("duoquest_ttfc_us_sum 750"), "{text}");
        validate_exposition(&text).expect("well-formed exposition");
        // HELP/TYPE headers are not repeated on the second sample.
        assert_eq!(text.matches("# TYPE duoquest_requests_total").count(), 1);
    }

    #[test]
    fn validator_treats_each_label_set_as_its_own_cumulative_series() {
        // Two class series of one histogram family: the second restarts at
        // zero, which is fine — cumulativeness is per series, not per
        // family. (Regression: the net_load scrape tripped on this.)
        let busy = Histogram::new();
        busy.record_us(50);
        busy.record_us(700);
        let idle = Histogram::new();
        let mut expo = Exposition::new();
        expo.histogram("duoquest_ttfc_us", "TTFC.", &[("class", "interactive")], &busy);
        expo.histogram("duoquest_ttfc_us", "TTFC.", &[("class", "batch")], &idle);
        validate_exposition(&expo.finish()).expect("per-series cumulative ladders");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_exposition("no_type_header 1\n").is_err());
        assert!(validate_exposition("# TYPE m counter\nm notanumber\n").is_err());
        assert!(validate_exposition("# TYPE m counter\n9bad 1\n").is_err());
        assert!(validate_exposition("# TYPE m histogram\nm_bucket{x=\"1\"} 1\n").is_err());
        let no_inf = "# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_sum 1\nm_count 1\n";
        assert!(validate_exposition(no_inf).is_err());
        let not_cumulative = "# TYPE m histogram\nm_bucket{le=\"1\"} 5\n\
             m_bucket{le=\"+Inf\"} 3\nm_sum 1\nm_count 3\n";
        assert!(validate_exposition(not_cumulative).is_err());
        let inf_mismatch = "# TYPE m histogram\nm_bucket{le=\"+Inf\"} 3\nm_sum 1\nm_count 4\n";
        assert!(validate_exposition(inf_mismatch).is_err());
    }
}
