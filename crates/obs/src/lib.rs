//! # duoquest-obs
//!
//! The dependency-free observability substrate under the Duoquest stack:
//!
//! * [`span`] — structured request tracing: a [`Trace`] is a bounded,
//!   per-request buffer of named spans and events, all timestamps stored as
//!   microsecond offsets from one anchor instant. The crate is deliberately
//!   **clock-agnostic**: every recording API takes [`std::time::Instant`]
//!   values the *caller* read from its own clock (the core's `Clock` trait,
//!   real or simulated), so traces recorded under a simulated clock live
//!   entirely on the virtual timeline.
//! * [`metrics`] — a metrics registry built for scrape-time assembly:
//!   log-bucketed mergeable [`Histogram`]s (lock-free atomics, power-of-two
//!   microsecond buckets) plus an [`Exposition`] builder that renders
//!   counters, gauges and histograms in the Prometheus text format, and a
//!   [`validate_exposition`] checker used by tests and the CI smoke scrape.
//! * [`flight`] — the [`FlightRecorder`]: a bounded ring of
//!   recently-completed request [`Trace`]s, queryable by request id and
//!   optionally dumped to stderr for anomalous requests (panic, shed,
//!   deadline exceeded) when `DUOQUEST_FLIGHT_DUMP` is set.
//!
//! Layering: this crate sits **below** `duoquest-core` and `duoquest-db`
//! (it depends on nothing but `std`), so every layer of the stack — engine
//! rounds, verify stages, cache probes, service admission, net outbox — can
//! record into the same trace without a dependency cycle.
//!
//! Tracing is zero-cost when off, twice over: the runtime gate is an
//! `Option<Arc<Trace>>` (a `None` costs one branch), and the `trace` cargo
//! feature (default on) compiles the recording bodies out entirely for
//! builds that want the branch gone too (`benches/obs.rs` measures both).

#![warn(missing_docs)]

pub mod flight;
pub mod metrics;
pub mod span;

pub use flight::FlightRecorder;
pub use metrics::{validate_exposition, Exposition, Histogram};
pub use span::{RawSpan, SpanRecord, Trace, TraceEvent, ROOT_SPAN, TERMINAL_EVENT};

/// Escape a string for embedding in a JSON document (the same dialect the
/// rest of the stack hand-rolls; duplicated here because this crate sits
/// below `duoquest-service`).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_json_handles_control_and_quote_characters() {
        assert_eq!(escape_json("plain"), "\"plain\"");
        assert_eq!(escape_json("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape_json("\u{1}"), "\"\\u0001\"");
    }
}
