//! The flight recorder: a bounded ring of recently-completed request
//! timelines.
//!
//! Every resolved request's [`Trace`] is pushed here by the service; the
//! newest `capacity` traces win. `GET /trace/<id>` serves them as JSON.
//! Anomalous traces (panic, shed, deadline exceeded) are additionally
//! dumped to stderr when the `DUOQUEST_FLIGHT_DUMP` environment variable is
//! set — opt-in, because the deterministic simulation harness injects
//! thousands of failures by design and must stay quiet.

use crate::span::Trace;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Environment variable gating automatic stderr dumps of anomalous traces.
pub const FLIGHT_DUMP_ENV: &str = "DUOQUEST_FLIGHT_DUMP";

/// A bounded ring of completed request traces, queryable by request id.
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<VecDeque<Arc<Trace>>>,
    dump: bool,
}

impl FlightRecorder {
    /// A recorder retaining the newest `capacity` completed traces.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            cap: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dump: std::env::var_os(FLIGHT_DUMP_ENV).is_some_and(|v| !v.is_empty()),
        }
    }

    /// Record a completed request's trace. Anomalous traces are dumped to
    /// stderr when [`FLIGHT_DUMP_ENV`] is set.
    pub fn push(&self, trace: Arc<Trace>) {
        if self.dump && trace.is_anomalous() {
            eprintln!("[flight] anomalous request {}: {}", trace.id(), trace.to_json());
        }
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Fetch a completed request's trace by service id.
    pub fn get(&self, id: u64) -> Option<Arc<Trace>> {
        let ring = self.ring.lock().expect("flight ring poisoned");
        ring.iter().rev().find(|t| t.id() == id).cloned()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained request ids, oldest first.
    pub fn ids(&self) -> Vec<u64> {
        self.ring.lock().expect("flight ring poisoned").iter().map(|t| t.id()).collect()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder").field("cap", &self.cap).field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn ring_retains_the_newest_traces_and_finds_by_id() {
        let recorder = FlightRecorder::new(3);
        let anchor = Instant::now();
        for id in 0..5u64 {
            recorder.push(Arc::new(Trace::new(id, anchor)));
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.ids(), vec![2, 3, 4]);
        assert!(recorder.get(1).is_none(), "aged out");
        assert_eq!(recorder.get(4).map(|t| t.id()), Some(4));
    }
}
