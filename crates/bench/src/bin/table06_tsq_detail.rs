//! Regenerates paper Table 6: exact-matching accuracy for TSQs with varying
//! amounts of specification detail (Full / Partial / Minimal) vs the NLI baseline.

use duoquest_bench::spider_eval::tsq_detail_experiment;
use duoquest_bench::EvalSettings;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let settings = EvalSettings::from_args(&args);
    let max_rank = args
        .iter()
        .position(|a| a == "--max-rank")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    for dataset in [settings.dev(), settings.test()] {
        println!("--- Spider {} ---", dataset.name);
        println!("{}", tsq_detail_experiment(&dataset, &settings, max_rank));
    }
}
