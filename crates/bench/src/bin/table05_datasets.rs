//! Regenerates paper Table 5: dataset statistics.

use duoquest_bench::EvalSettings;
use duoquest_workloads::{mas_nli_tasks, mas_pbe_tasks, DatasetStats, Difficulty, MasDataset};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let settings = EvalSettings::from_args(&args);

    let mas = MasDataset::standard();
    let nli_levels: Vec<Difficulty> = mas_nli_tasks(&mas).iter().map(|t| t.level).collect();
    let pbe_levels: Vec<Difficulty> = mas_pbe_tasks(&mas).iter().map(|t| t.level).collect();
    let dev = settings.dev();
    let test = settings.test();

    println!("{}", DatasetStats::header());
    println!("{}", DatasetStats::compute("MAS (NLI study)", &[&mas.db], &nli_levels));
    println!("{}", DatasetStats::compute("MAS (PBE study)", &[&mas.db], &pbe_levels));
    println!("{}", DatasetStats::of_spider(&dev));
    println!("{}", DatasetStats::of_spider(&test));
    if !settings.full {
        println!("(reduced splits; pass --full for the paper-sized 589/1247-task splits)");
    }
}
