//! Regenerates paper Figure 12: time-to-correct-query distributions for
//! Duoquest, NoPQ (no partial-query pruning) and NoGuide (unguided search).

use duoquest_bench::spider_eval::ablation_experiment;
use duoquest_bench::EvalSettings;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let settings = EvalSettings::from_args(&args);
    for dataset in [settings.dev(), settings.test()] {
        println!("--- Spider {} ---", dataset.name);
        println!("{}", ablation_experiment(&dataset, &settings));
    }
}
