//! Regenerates paper Figure 7: % of successful trials per task, Duoquest vs PBE.

use duoquest_bench::user_study::{pbe_study, success_table};
use duoquest_workloads::MasDataset;

fn main() {
    let trials = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let mas = MasDataset::standard();
    let rows = pbe_study(&mas, trials);
    println!(
        "{}",
        success_table(
            &format!("Figure 7 — PBE study success rate (%) over {trials} simulated trials/arm"),
            &rows
        )
    );
}
