//! Regenerates paper Figure 11: task correctness broken down by difficulty.

use duoquest_bench::spider_eval::{difficulty_table, spider_accuracy_experiment};
use duoquest_bench::EvalSettings;
use duoquest_workloads::TsqDetail;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let settings = EvalSettings::from_args(&args);
    for dataset in [settings.dev(), settings.test()] {
        let records = spider_accuracy_experiment(&dataset, &settings, TsqDetail::Full);
        println!("{}", difficulty_table(&format!("Spider {}", dataset.name), &records));
    }
}
