//! Regenerates paper Figure 9: mean number of examples per task, PBE study.

use duoquest_bench::user_study::{examples_table, pbe_study};
use duoquest_workloads::MasDataset;

fn main() {
    let trials = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let mas = MasDataset::standard();
    let rows = pbe_study(&mas, trials);
    println!(
        "{}",
        examples_table(
            &format!("Figure 9 — PBE study mean #examples over {trials} simulated trials/arm"),
            &rows
        )
    );
}
