//! Regenerates paper Figure 5: % of successful trials per task, Duoquest vs NLI.

use duoquest_bench::user_study::{nli_study, success_table};
use duoquest_workloads::MasDataset;

fn main() {
    let trials = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let mas = MasDataset::standard();
    let rows = nli_study(&mas, trials);
    println!(
        "{}",
        success_table(
            &format!("Figure 5 — NLI study success rate (%) over {trials} simulated trials/arm"),
            &rows
        )
    );
}
