//! Regenerates paper Figure 8: mean trial time per task (successful trials), PBE study.

use duoquest_bench::user_study::{pbe_study, time_table};
use duoquest_workloads::MasDataset;

fn main() {
    let trials = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let mas = MasDataset::standard();
    let rows = pbe_study(&mas, trials);
    println!(
        "{}",
        time_table(
            &format!("Figure 8 — PBE study mean trial time (s) over {trials} simulated trials/arm"),
            &rows
        )
    );
}
