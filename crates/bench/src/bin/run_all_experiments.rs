//! Runs every experiment of the evaluation in sequence (Table 5, Figures 5–12,
//! Table 6). Pass `--full` for the paper-sized splits.

use duoquest_bench::spider_eval::{
    ablation_experiment, accuracy_table, difficulty_table, spider_accuracy_experiment,
    tsq_detail_experiment,
};
use duoquest_bench::user_study::{examples_table, nli_study, pbe_study, success_table, time_table};
use duoquest_bench::EvalSettings;
use duoquest_workloads::{
    mas_nli_tasks, mas_pbe_tasks, DatasetStats, Difficulty, MasDataset, TsqDetail,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let settings = EvalSettings::from_args(&args);
    let trials = 8usize;

    // Table 5.
    let mas = MasDataset::standard();
    let nli_levels: Vec<Difficulty> = mas_nli_tasks(&mas).iter().map(|t| t.level).collect();
    let pbe_levels: Vec<Difficulty> = mas_pbe_tasks(&mas).iter().map(|t| t.level).collect();
    let dev = settings.dev();
    let test = settings.test();
    println!("\n=== Table 5 — datasets ===");
    println!("{}", DatasetStats::header());
    println!("{}", DatasetStats::compute("MAS (NLI study)", &[&mas.db], &nli_levels));
    println!("{}", DatasetStats::compute("MAS (PBE study)", &[&mas.db], &pbe_levels));
    println!("{}", DatasetStats::of_spider(&dev));
    println!("{}", DatasetStats::of_spider(&test));

    // Figures 5–6.
    let nli_rows = nli_study(&mas, trials);
    println!("{}", success_table("Figure 5 — NLI study success rate (%)", &nli_rows));
    println!("{}", time_table("Figure 6 — NLI study mean trial time (s)", &nli_rows));

    // Figures 7–9.
    let pbe_rows = pbe_study(&mas, trials);
    println!("{}", success_table("Figure 7 — PBE study success rate (%)", &pbe_rows));
    println!("{}", time_table("Figure 8 — PBE study mean trial time (s)", &pbe_rows));
    println!("{}", examples_table("Figure 9 — PBE study mean #examples", &pbe_rows));

    // Figures 10–11.
    for dataset in [&dev, &test] {
        let records = spider_accuracy_experiment(dataset, &settings, TsqDetail::Full);
        println!("{}", accuracy_table(&format!("Spider {}", dataset.name), &records));
        println!("{}", difficulty_table(&format!("Spider {}", dataset.name), &records));
    }

    // Figure 12 and Table 6 (dev split only, as in the ablation discussion).
    println!("{}", ablation_experiment(&dev, &settings));
    println!("{}", tsq_detail_experiment(&dev, &settings, 100));

    if !settings.full {
        println!("\n(reduced splits; pass --full for the paper-sized 589/1247-task splits)");
    }
}
