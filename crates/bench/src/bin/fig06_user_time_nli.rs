//! Regenerates paper Figure 6: mean trial time per task (successful trials), NLI study.

use duoquest_bench::user_study::{nli_study, time_table};
use duoquest_workloads::MasDataset;

fn main() {
    let trials = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let mas = MasDataset::standard();
    let rows = nli_study(&mas, trials);
    println!(
        "{}",
        time_table(
            &format!("Figure 6 — NLI study mean trial time (s) over {trials} simulated trials/arm"),
            &rows
        )
    );
}
