//! Regenerates paper Figure 10: top-1/top-10 accuracy on the Spider-like
//! dev and test splits for Duoquest and NLI, plus Correct/Unsupported for PBE.

use duoquest_bench::spider_eval::{accuracy_table, spider_accuracy_experiment};
use duoquest_bench::EvalSettings;
use duoquest_workloads::TsqDetail;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let settings = EvalSettings::from_args(&args);
    for dataset in [settings.dev(), settings.test()] {
        let records = spider_accuracy_experiment(&dataset, &settings, TsqDetail::Full);
        println!("{}", accuracy_table(&format!("Spider {}", dataset.name), &records));
    }
    if !settings.full {
        println!("(reduced splits; pass --full for the paper-sized 589/1247-task splits)");
    }
}
