//! Simulation-study experiments on the synthetic Spider-like benchmark
//! (paper §5.4): Figure 10 (top-k accuracy), Figure 11 (difficulty breakdown),
//! Figure 12 (ablations) and Table 6 (TSQ detail sweep).

use crate::report::{header, percent};
use duoquest_baselines::{NliBaseline, NoGuide, NoPq, SquidPbe};
use duoquest_core::{Duoquest, DuoquestConfig};
use duoquest_db::SelectSpec;
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_workloads::spider::{self, SpiderDataset};
use duoquest_workloads::{synthesize_tsq, Difficulty, TsqDetail};
use std::sync::Arc;
use std::time::Duration;

/// Settings shared by the simulation experiments.
#[derive(Debug, Clone)]
pub struct EvalSettings {
    /// Use the paper-sized splits (589 dev / 1247 test tasks) instead of the
    /// proportionally reduced default.
    pub full: bool,
    /// Per-task engine configuration.
    pub engine: DuoquestConfig,
    /// Random seed for dataset generation and TSQ sampling.
    pub seed: u64,
}

impl Default for EvalSettings {
    fn default() -> Self {
        // Size the verification worker pool to the machine; beam 1 keeps the
        // exploration order identical to the sequential paper algorithm
        // (modulo the wall-clock budget cutting the search at a
        // machine-speed-dependent point).
        let engine = DuoquestConfig {
            max_candidates: 25,
            max_expansions: 2_500,
            time_budget: Some(Duration::from_secs(3)),
            ..Default::default()
        }
        .with_parallelism(0, 1);
        EvalSettings { full: false, engine, seed: 42 }
    }
}

impl EvalSettings {
    /// Parse `--full` from command-line arguments.
    pub fn from_args(args: &[String]) -> Self {
        let mut s = EvalSettings::default();
        if args.iter().any(|a| a == "--full") {
            s.full = true;
        }
        s
    }

    /// Generate the dev split at the configured size.
    pub fn dev(&self) -> SpiderDataset {
        if self.full {
            spider::generate_dev(self.seed)
        } else {
            // Reduced split with the paper's difficulty proportions (≈ 1/4 size).
            spider::generate("dev", 6, 60, 63, 25, self.seed)
        }
    }

    /// Generate the test split at the configured size.
    pub fn test(&self) -> SpiderDataset {
        if self.full {
            spider::generate_test(self.seed + 1)
        } else {
            spider::generate("test", 10, 105, 96, 48, self.seed + 1)
        }
    }
}

/// Per-task record of the three compared systems.
#[derive(Debug, Clone)]
pub struct SpiderRecord {
    /// Task identifier.
    pub id: String,
    /// Difficulty level.
    pub level: Difficulty,
    /// Rank of the gold query in Duoquest's candidate list.
    pub dq_rank: Option<usize>,
    /// Seconds until Duoquest emitted the gold query.
    pub dq_time: Option<f64>,
    /// Rank of the gold query in the NLI baseline's candidate list.
    pub nli_rank: Option<usize>,
    /// Whether the PBE baseline supports the task at all.
    pub pbe_supported: bool,
    /// Whether the PBE baseline's abduction covers the gold query.
    pub pbe_correct: bool,
}

/// Run Duoquest, the NLI baseline and the PBE baseline on every task of a split.
pub fn spider_accuracy_experiment(
    dataset: &SpiderDataset,
    settings: &EvalSettings,
    detail: TsqDetail,
) -> Vec<SpiderRecord> {
    let engine = Duoquest::new(settings.engine.clone());
    let nli = NliBaseline::new(settings.engine.clone());
    let pbe = SquidPbe::new();
    let mut records = Vec::with_capacity(dataset.tasks.len());
    for (i, task) in dataset.tasks.iter().enumerate() {
        let db = dataset.database(task);
        let (gold, tsq) = synthesize_tsq(db, &task.gold, detail, 2, settings.seed + i as u64);
        let model = NoisyOracleGuidance::new(gold.clone(), settings.seed + i as u64);

        // Duoquest runs as an owned session over the Arc-shared database —
        // the parallel, cache-aware path the engine uses in production.
        let dq = engine
            .session(Arc::clone(db), task.nlq.clone(), Arc::new(model.clone()))
            .with_tsq(tsq.clone())
            .run();
        let nli_result = nli.synthesize(db, &task.nlq, &model);
        let supported = pbe.supports(db, &gold);
        let pbe_correct = if supported {
            let outcome = pbe.run(db, &tsq);
            pbe.correct_for(&outcome, &gold)
        } else {
            false
        };

        records.push(SpiderRecord {
            id: task.id.clone(),
            level: task.level,
            dq_rank: dq.rank_of(&gold),
            dq_time: dq.time_to_find(&gold).map(|d| d.as_secs_f64()),
            nli_rank: nli_result.rank_of(&gold),
            pbe_supported: supported,
            pbe_correct,
        });
    }
    records
}

/// Figure 10: top-1 / top-10 accuracy for Duoquest and NLI, Correct /
/// Unsupported counts for PBE.
pub fn accuracy_table(name: &str, records: &[SpiderRecord]) -> String {
    let total = records.len();
    let top = |ranks: &dyn Fn(&SpiderRecord) -> Option<usize>, k: usize| {
        records.iter().filter(|r| ranks(r).map(|x| x <= k).unwrap_or(false)).count()
    };
    let dq_rank = |r: &SpiderRecord| r.dq_rank;
    let nli_rank = |r: &SpiderRecord| r.nli_rank;
    let pbe_correct = records.iter().filter(|r| r.pbe_correct).count();
    let pbe_unsupported = records.iter().filter(|r| !r.pbe_supported).count();
    let mut out = header(&format!("Figure 10 — {name} ({total} tasks)"));
    out.push_str("Sys   Top-1 #    %   Top-10 #    %   Correct #    %   Unsupp #    %\n");
    out.push_str(&format!(
        "Dq    {:7} {}  {:8} {}        {:>3}  {}      {:>3}  {}\n",
        top(&dq_rank, 1),
        percent(top(&dq_rank, 1), total),
        top(&dq_rank, 10),
        percent(top(&dq_rank, 10), total),
        "-",
        "  - ",
        0,
        percent(0, total)
    ));
    out.push_str(&format!(
        "NLI   {:7} {}  {:8} {}        {:>3}  {}      {:>3}  {}\n",
        top(&nli_rank, 1),
        percent(top(&nli_rank, 1), total),
        top(&nli_rank, 10),
        percent(top(&nli_rank, 10), total),
        "-",
        "  - ",
        0,
        percent(0, total)
    ));
    out.push_str(&format!(
        "PBE         -    -         -    -        {:>3}  {}      {:>3}  {}\n",
        pbe_correct,
        percent(pbe_correct, total),
        pbe_unsupported,
        percent(pbe_unsupported, total)
    ));
    out
}

/// Figure 11: correctness by difficulty level (top-10 for Dq/NLI, Correct for PBE).
pub fn difficulty_table(name: &str, records: &[SpiderRecord]) -> String {
    let mut out = header(&format!("Figure 11 — {name}"));
    out.push_str("Level   Tasks   Dq top-10 %   NLI top-10 %   PBE correct %   PBE unsupported\n");
    for level in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
        let subset: Vec<&SpiderRecord> = records.iter().filter(|r| r.level == level).collect();
        let n = subset.len();
        let dq = subset.iter().filter(|r| r.dq_rank.map(|x| x <= 10).unwrap_or(false)).count();
        let nli = subset.iter().filter(|r| r.nli_rank.map(|x| x <= 10).unwrap_or(false)).count();
        let pbe = subset.iter().filter(|r| r.pbe_correct).count();
        let unsupported = subset.iter().filter(|r| !r.pbe_supported).count();
        out.push_str(&format!(
            "{:<7} {:>5}   {}         {}          {}           {:>5}\n",
            level.to_string(),
            n,
            percent(dq, n),
            percent(nli, n),
            percent(pbe, n),
            unsupported
        ));
    }
    out
}

/// Table 6: top-1 / top-10 / top-k accuracy for Full / Partial / Minimal TSQs
/// and the NLI baseline.
pub fn tsq_detail_experiment(
    dataset: &SpiderDataset,
    settings: &EvalSettings,
    max_rank: usize,
) -> String {
    let mut engine_cfg = settings.engine.clone();
    engine_cfg.max_candidates = max_rank.max(engine_cfg.max_candidates);
    let engine = Duoquest::new(engine_cfg.clone());
    let nli = NliBaseline::new(engine_cfg.clone());

    let mut out = header(&format!(
        "Table 6 — TSQ detail sweep ({} tasks, top-k up to {max_rank})",
        dataset.tasks.len()
    ));
    out.push_str(&format!(
        "{:<10} {:>7} {:>7} {:>9}\n",
        "Detail",
        "T1 %",
        "T10 %",
        &format!("T{max_rank} %")
    ));

    let details = [
        ("Full", Some(TsqDetail::Full)),
        ("Partial", Some(TsqDetail::Partial)),
        ("Minimal", Some(TsqDetail::Minimal)),
        ("NLI", None),
    ];
    for (label, detail) in details {
        let mut t1 = 0usize;
        let mut t10 = 0usize;
        let mut tk = 0usize;
        for (i, task) in dataset.tasks.iter().enumerate() {
            let db = dataset.database(task);
            let (gold, tsq) = synthesize_tsq(
                db,
                &task.gold,
                detail.unwrap_or(TsqDetail::Full),
                2,
                settings.seed + i as u64,
            );
            let model = NoisyOracleGuidance::new(gold.clone(), settings.seed + i as u64);
            let rank = match detail {
                Some(_) => engine
                    .session(Arc::clone(db), task.nlq.clone(), Arc::new(model.clone()))
                    .with_tsq(tsq.clone())
                    .run()
                    .rank_of(&gold),
                None => nli.synthesize(db, &task.nlq, &model).rank_of(&gold),
            };
            if let Some(r) = rank {
                if r <= 1 {
                    t1 += 1;
                }
                if r <= 10 {
                    t10 += 1;
                }
                if r <= max_rank {
                    tk += 1;
                }
            }
        }
        let total = dataset.tasks.len();
        out.push_str(&format!(
            "{:<10} {:>7} {:>7} {:>9}\n",
            label,
            percent(t1, total),
            percent(t10, total),
            percent(tk, total)
        ));
    }
    out
}

/// Figure 12: distribution of the time taken to synthesize the correct query
/// for Duoquest, NoPQ and NoGuide.
pub fn ablation_experiment(dataset: &SpiderDataset, settings: &EvalSettings) -> String {
    let duoquest = Duoquest::new(settings.engine.clone());
    let nopq = NoPq::new(settings.engine.clone());
    let noguide = NoGuide::new(settings.engine.clone());
    let budget = settings.engine.time_budget.unwrap_or(Duration::from_secs(3)).as_secs_f64();

    let mut times: Vec<(&str, Vec<Option<f64>>)> =
        vec![("Duoquest", Vec::new()), ("NoPQ", Vec::new()), ("NoGuide", Vec::new())];
    for (i, task) in dataset.tasks.iter().enumerate() {
        let db = dataset.database(task);
        let (gold, tsq) =
            synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, settings.seed + i as u64);
        let model = NoisyOracleGuidance::new(gold.clone(), settings.seed + i as u64);
        let dq = duoquest
            .session(Arc::clone(db), task.nlq.clone(), Arc::new(model.clone()))
            .with_tsq(tsq.clone())
            .run();
        let np = nopq.synthesize(db, &task.nlq, Some(&tsq), &model);
        let ng = noguide.synthesize(db, &task.nlq, Some(&tsq), &model);
        times[0].1.push(dq.time_to_find(&gold).map(|d| d.as_secs_f64()));
        times[1].1.push(np.time_to_find(&gold).map(|d| d.as_secs_f64()));
        times[2].1.push(ng.time_to_find(&gold).map(|d| d.as_secs_f64()));
    }

    let total = dataset.tasks.len();
    let mut out = header(&format!(
        "Figure 12 — % of tasks whose gold query was synthesized within t seconds ({total} tasks, budget {budget:.1}s)"
    ));
    let fractions = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    out.push_str(&format!("{:<10}", "System"));
    for f in fractions {
        out.push_str(&format!(" {:>7}", format!("{:.2}s", f * budget)));
    }
    out.push('\n');
    for (label, series) in &times {
        out.push_str(&format!("{label:<10}"));
        for f in fractions {
            let t = f * budget;
            let done = series.iter().filter(|x| x.map(|v| v <= t).unwrap_or(false)).count();
            out.push_str(&format!(" {:>7}", percent(done, total)));
        }
        out.push('\n');
    }
    out
}

/// Figure 5-style gold-rank helper reused by the user-study module.
pub fn gold_spec_of(task_gold: &SelectSpec) -> SelectSpec {
    duoquest_workloads::canonicalize_select(task_gold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> EvalSettings {
        let mut s = EvalSettings::default();
        s.engine.max_expansions = 1_200;
        s.engine.max_candidates = 12;
        s.engine.time_budget = Some(Duration::from_millis(800));
        s
    }

    fn tiny_dataset(seed: u64) -> SpiderDataset {
        spider::generate("tiny", 2, 4, 4, 2, seed)
    }

    #[test]
    fn accuracy_experiment_produces_a_record_per_task() {
        let settings = tiny_settings();
        let ds = tiny_dataset(5);
        let records = spider_accuracy_experiment(&ds, &settings, TsqDetail::Full);
        assert_eq!(records.len(), ds.tasks.len());
        // Duoquest should solve at least some of the tasks.
        assert!(records.iter().any(|r| r.dq_rank == Some(1)));
        let table = accuracy_table("tiny", &records);
        assert!(table.contains("Dq"));
        let by_level = difficulty_table("tiny", &records);
        assert!(by_level.contains("easy"));
    }

    #[test]
    fn ablation_and_detail_tables_render() {
        let settings = tiny_settings();
        let ds = spider::generate("tiny2", 1, 2, 2, 1, 9);
        let table = ablation_experiment(&ds, &settings);
        assert!(table.contains("NoGuide"));
        let detail = tsq_detail_experiment(&ds, &settings, 20);
        assert!(detail.contains("Minimal"));
        assert!(detail.contains("NLI"));
    }
}
