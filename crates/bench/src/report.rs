//! Small text-report helpers shared by the experiment binaries.

/// Format a ratio as a percentage with one decimal.
pub fn percent(numerator: usize, denominator: usize) -> String {
    if denominator == 0 {
        return "  n/a".to_string();
    }
    format!("{:5.1}", 100.0 * numerator as f64 / denominator as f64)
}

/// Render a section header.
pub fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(1, 2), " 50.0");
        assert_eq!(percent(0, 0), "  n/a");
        assert!(header("Figure 10").contains("Figure 10"));
    }
}
