//! # duoquest-bench
//!
//! The experiment harness reproducing every table and figure of the Duoquest
//! evaluation (paper §5), plus Criterion micro-benchmarks.
//!
//! Each `src/bin/*` binary regenerates one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table05_datasets` | Table 5 (dataset statistics) |
//! | `fig05_user_study_nli` | Figure 5 (% successful trials, NLI study) |
//! | `fig06_user_time_nli` | Figure 6 (mean trial time, NLI study) |
//! | `fig07_user_study_pbe` | Figure 7 (% successful trials, PBE study) |
//! | `fig08_user_time_pbe` | Figure 8 (mean trial time, PBE study) |
//! | `fig09_user_examples_pbe` | Figure 9 (mean #examples, PBE study) |
//! | `fig10_spider_accuracy` | Figure 10 (top-1/top-10 accuracy, Spider) |
//! | `fig11_difficulty` | Figure 11 (accuracy by difficulty) |
//! | `fig12_ablation` | Figure 12 (time-to-query distributions, ablations) |
//! | `table06_tsq_detail` | Table 6 (TSQ detail sweep) |
//! | `run_all_experiments` | everything above |
//!
//! Binaries accept `--full` to run the paper-sized splits (589 dev / 1247 test
//! tasks); the default is a proportionally reduced split so the whole suite
//! finishes in minutes on a laptop.

pub mod report;
pub mod spider_eval;
pub mod user_study;

pub use report::percent;
pub use spider_eval::{
    ablation_experiment, spider_accuracy_experiment, tsq_detail_experiment, EvalSettings,
    SpiderRecord,
};
pub use user_study::{nli_study, pbe_study, StudyRow};
