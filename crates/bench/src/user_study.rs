//! Simulated user studies (paper §5.2 and §5.3): Figures 5–9.
//!
//! The paper runs within-subject studies with 16 participants (8 trials per
//! task per system). Here each trial uses a differently seeded noisy oracle
//! (guidance quality varies per simulated participant) and a [`UserModel`]
//! that converts the candidate rank and example count into success and time.

use crate::report::{header, percent};
use duoquest_baselines::{NliBaseline, SquidPbe};
use duoquest_core::{Duoquest, DuoquestConfig};
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_workloads::tsq_synth::typical_example_count;
use duoquest_workloads::{
    mas_nli_tasks, mas_pbe_tasks, synthesize_tsq, MasDataset, MasTask, TsqDetail, UserModel,
};
use std::sync::Arc;
use std::time::Duration;

/// Aggregated per-task results of one study arm.
#[derive(Debug, Clone)]
pub struct StudyRow {
    /// Task identifier.
    pub task: String,
    /// System name ("Duoquest", "NLI" or "PBE").
    pub system: &'static str,
    /// Fraction of successful trials.
    pub success_rate: f64,
    /// Mean trial time over successful trials (seconds); `None` when no trial succeeded.
    pub mean_time_secs: Option<f64>,
    /// Mean number of example tuples used.
    pub mean_examples: f64,
}

fn study_engine() -> DuoquestConfig {
    // Machine-sized verification pool, paper-order exploration (beam 1).
    DuoquestConfig {
        max_candidates: 30,
        max_expansions: 3_000,
        time_budget: Some(Duration::from_secs(3)),
        ..Default::default()
    }
    .with_parallelism(0, 1)
}

fn run_trials<F>(
    tasks: &[MasTask],
    system: &'static str,
    trials: usize,
    mut trial: F,
) -> Vec<StudyRow>
where
    F: FnMut(&MasTask, u64) -> duoquest_workloads::TrialOutcome,
{
    tasks
        .iter()
        .map(|task| {
            let outcomes: Vec<_> = (0..trials).map(|u| trial(task, u as u64)).collect();
            let successes: Vec<_> = outcomes.iter().filter(|o| o.success).collect();
            StudyRow {
                task: task.id.to_string(),
                system,
                success_rate: successes.len() as f64 / trials.max(1) as f64,
                mean_time_secs: if successes.is_empty() {
                    None
                } else {
                    Some(
                        successes.iter().map(|o| o.time_secs).sum::<f64>() / successes.len() as f64,
                    )
                },
                mean_examples: outcomes.iter().map(|o| o.examples_used as f64).sum::<f64>()
                    / trials.max(1) as f64,
            }
        })
        .collect()
}

/// Run the user study against the NLI baseline (Figures 5 and 6): Duoquest vs
/// NLI on task sets A and B, `trials` simulated participants per arm.
pub fn nli_study(mas: &MasDataset, trials: usize) -> Vec<StudyRow> {
    let tasks = mas_nli_tasks(mas);
    let user = UserModel::default();
    let engine = Duoquest::new(study_engine());
    let nli = NliBaseline::new(study_engine());

    let mut rows = run_trials(&tasks, "Duoquest", trials, |task, u| {
        let (gold, tsq) = synthesize_tsq(
            &mas.db,
            &task.gold,
            TsqDetail::Full,
            typical_example_count(task.level),
            1000 + u,
        );
        let model = NoisyOracleGuidance::new(gold.clone(), 77 * (u + 1) + task.id.len() as u64);
        let result = engine
            .session(Arc::clone(&mas.db), task.nlq.clone(), Arc::new(model))
            .with_tsq(tsq.clone())
            .run();
        user.duoquest_trial(
            result.rank_of(&gold),
            result.stats.elapsed.as_secs_f64(),
            tsq.tuples.len(),
        )
    });
    rows.extend(run_trials(&tasks, "NLI", trials, |task, u| {
        let gold = duoquest_workloads::canonicalize_select(&task.gold);
        let model = NoisyOracleGuidance::new(gold.clone(), 77 * (u + 1) + task.id.len() as u64);
        let result = nli.synthesize(&mas.db, &task.nlq, &model);
        user.nli_trial(result.rank_of(&gold), result.stats.elapsed.as_secs_f64())
    }));
    rows
}

/// Run the user study against the PBE baseline (Figures 7, 8 and 9): Duoquest
/// vs PBE on task sets C and D.
pub fn pbe_study(mas: &MasDataset, trials: usize) -> Vec<StudyRow> {
    let tasks = mas_pbe_tasks(mas);
    let user = UserModel::default();
    let engine = Duoquest::new(study_engine());
    let pbe = SquidPbe::new();

    let mut rows = run_trials(&tasks, "Duoquest", trials, |task, u| {
        let (gold, tsq) = synthesize_tsq(
            &mas.db,
            &task.gold,
            TsqDetail::Full,
            typical_example_count(task.level),
            2000 + u,
        );
        let model = NoisyOracleGuidance::new(gold.clone(), 131 * (u + 1) + task.id.len() as u64);
        let result = engine
            .session(Arc::clone(&mas.db), task.nlq.clone(), Arc::new(model))
            .with_tsq(tsq.clone())
            .run();
        user.duoquest_trial(
            result.rank_of(&gold),
            result.stats.elapsed.as_secs_f64(),
            tsq.tuples.len(),
        )
    });
    rows.extend(run_trials(&tasks, "PBE", trials, |task, u| {
        let gold = duoquest_workloads::canonicalize_select(&task.gold);
        // PBE users enter more examples than Duoquest users (paper Figure 9).
        let n_examples = typical_example_count(task.level) + 2;
        let (_, tsq) = synthesize_tsq(&mas.db, &task.gold, TsqDetail::Full, n_examples, 3000 + u);
        let supported = pbe.supports(&mas.db, &gold);
        let outcome = pbe.run(&mas.db, &tsq);
        user.pbe_trial(
            supported,
            pbe.correct_for(&outcome, &gold),
            tsq.tuples.len(),
            outcome.runtime.as_secs_f64(),
        )
    }));
    rows
}

/// Figure 5 / Figure 7: success rate per task and system.
pub fn success_table(title: &str, rows: &[StudyRow]) -> String {
    render(title, rows, |r| percent((r.success_rate * 100.0).round() as usize, 100))
}

/// Figure 6 / Figure 8: mean trial time per task and system.
pub fn time_table(title: &str, rows: &[StudyRow]) -> String {
    render(title, rows, |r| {
        r.mean_time_secs.map(|t| format!("{t:6.1}")).unwrap_or_else(|| "     -".to_string())
    })
}

/// Figure 9: mean number of examples per task and system.
pub fn examples_table(title: &str, rows: &[StudyRow]) -> String {
    render(title, rows, |r| format!("{:6.2}", r.mean_examples))
}

fn render(title: &str, rows: &[StudyRow], cell: impl Fn(&StudyRow) -> String) -> String {
    let mut systems: Vec<&'static str> = rows.iter().map(|r| r.system).collect();
    systems.dedup();
    let mut tasks: Vec<String> = rows.iter().map(|r| r.task.clone()).collect();
    tasks.sort();
    tasks.dedup();
    let mut out = header(title);
    out.push_str(&format!("{:<10}", "Task"));
    for s in &systems {
        out.push_str(&format!(" {s:>10}"));
    }
    out.push('\n');
    for task in &tasks {
        out.push_str(&format!("{task:<10}"));
        for s in &systems {
            let row = rows.iter().find(|r| &r.task == task && r.system == *s);
            out.push_str(&format!(" {:>10}", row.map(&cell).unwrap_or_else(|| "-".to_string())));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_workloads::mas;

    #[test]
    fn pbe_study_runs_and_duoquest_handles_hard_tasks() {
        // A reduced MAS instance keeps the test fast.
        let mas = mas::generate(7, 0.4);
        let rows = pbe_study(&mas, 2);
        assert_eq!(rows.len(), 12); // 6 tasks × 2 systems
        let dq_hard: Vec<&StudyRow> = rows
            .iter()
            .filter(|r| r.system == "Duoquest" && (r.task == "C3" || r.task == "D3"))
            .collect();
        let pbe_hard: Vec<&StudyRow> = rows
            .iter()
            .filter(|r| r.system == "PBE" && (r.task == "C3" || r.task == "D3"))
            .collect();
        // PBE cannot support the hard tasks (projected aggregates).
        assert!(pbe_hard.iter().all(|r| r.success_rate == 0.0));
        // Tables render.
        assert!(success_table("Figure 7", &rows).contains("C1"));
        assert!(time_table("Figure 8", &rows).contains("D3"));
        assert!(examples_table("Figure 9", &rows).contains("PBE"));
        let _ = dq_hard;
    }
}
