//! Criterion benchmark for the parallel, cache-aware synthesis core: the
//! spider_eval workload run through `SynthesisSession`, comparing the
//! sequential seed path (one worker, probe cache cleared before every run)
//! against cached sequential and parallel + cached execution. Cache
//! hit/miss counters from `EnumerationStats` are printed alongside.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::{Duoquest, DuoquestConfig, EnumerationStats};
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_workloads::spider::{self, SpiderDataset};
use duoquest_workloads::{synthesize_tsq, TsqDetail};
use std::sync::Arc;
use std::time::Duration;

fn workload() -> SpiderDataset {
    spider::generate("bench", 2, 4, 4, 2, 17)
}

fn config(workers: usize) -> DuoquestConfig {
    DuoquestConfig {
        max_candidates: 15,
        max_expansions: 1_500,
        time_budget: Some(Duration::from_secs(2)),
        ..Default::default()
    }
    .with_parallelism(workers, 1)
}

/// Run every task of the workload once; returns the merged stats.
fn run_workload(
    dataset: &SpiderDataset,
    cfg: &DuoquestConfig,
    clear_cache: bool,
) -> EnumerationStats {
    let engine = Duoquest::new(cfg.clone());
    let mut merged = EnumerationStats::default();
    for (i, task) in dataset.tasks.iter().enumerate() {
        let db = dataset.database(task);
        if clear_cache {
            db.clear_probe_cache();
        }
        let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 42 + i as u64);
        let model = NoisyOracleGuidance::new(gold, 42 + i as u64);
        let result =
            engine.session(Arc::clone(db), task.nlq.clone(), Arc::new(model)).with_tsq(tsq).run();
        merged.expanded += result.stats.expanded;
        merged.emitted += result.stats.emitted;
        merged.cache_hits += result.stats.cache_hits;
        merged.cache_misses += result.stats.cache_misses;
    }
    merged
}

fn bench_session(c: &mut Criterion) {
    let dataset = workload();
    let parallel_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    // Report the cache behaviour once, outside the timed loops.
    for db in &dataset.databases {
        db.clear_probe_cache();
    }
    let cold = run_workload(&dataset, &config(1), true);
    let warm = run_workload(&dataset, &config(1), false);
    println!(
        "spider_eval workload: {} tasks | cold run: {} probe misses, {} hits | \
         warm rerun: {} hits / {} misses ({:.1}% hit rate)",
        dataset.tasks.len(),
        cold.cache_misses,
        cold.cache_hits,
        warm.cache_hits,
        warm.cache_misses,
        warm.cache_hit_rate() * 100.0,
    );

    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    // The seed path: sequential, every run pays cold probes.
    group.bench_function("sequential_cold_cache", |b| {
        b.iter(|| run_workload(&dataset, &config(1), true))
    });
    // Cache-aware sequential: identical exploration, memoized probes.
    group.bench_function("sequential_warm_cache", |b| {
        b.iter(|| run_workload(&dataset, &config(1), false))
    });
    // The full parallel + cached core.
    group.bench_function(format!("parallel{parallel_workers}_warm_cache"), |b| {
        b.iter(|| run_workload(&dataset, &config(parallel_workers), false))
    });
    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
