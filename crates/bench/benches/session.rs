//! Criterion benchmark for the parallel, cache-aware synthesis core: the
//! spider_eval workload run through `SynthesisSession`, comparing the
//! sequential seed path (one worker, probe cache cleared before every run)
//! against cached sequential and parallel + cached execution. Cache
//! hit/miss counters from `EnumerationStats` are printed alongside.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::{Duoquest, DuoquestConfig, EmissionPolicy, EnumerationStats};
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_workloads::spider::{self, SpiderDataset};
use duoquest_workloads::{synthesize_tsq, TsqDetail};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workload() -> SpiderDataset {
    spider::generate("bench", 2, 4, 4, 2, 17)
}

fn config(workers: usize) -> DuoquestConfig {
    DuoquestConfig {
        max_candidates: 15,
        max_expansions: 1_500,
        time_budget: Some(Duration::from_secs(2)),
        ..Default::default()
    }
    .with_parallelism(workers, 1)
}

/// Run every task of the workload once; returns the merged stats.
fn run_workload(
    dataset: &SpiderDataset,
    cfg: &DuoquestConfig,
    clear_cache: bool,
) -> EnumerationStats {
    let engine = Duoquest::new(cfg.clone());
    let mut merged = EnumerationStats::default();
    for (i, task) in dataset.tasks.iter().enumerate() {
        let db = dataset.database(task);
        if clear_cache {
            db.clear_probe_cache();
        }
        let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 42 + i as u64);
        let model = NoisyOracleGuidance::new(gold, 42 + i as u64);
        let result =
            engine.session(Arc::clone(db), task.nlq.clone(), Arc::new(model)).with_tsq(tsq).run();
        merged.expanded += result.stats.expanded;
        merged.emitted += result.stats.emitted;
        merged.cache_hits += result.stats.cache_hits;
        merged.cache_misses += result.stats.cache_misses;
    }
    merged
}

/// A candidate list rendered as comparable `(structure, confidence)` pairs.
type Ranking = Vec<(String, f64)>;

/// One run of every task under `emission`: per-task time to first emitted
/// candidate plus the rendered candidate ranking (for checking that any-k
/// changes *when* candidates arrive, never *what* arrives).
fn ttfc_runs(
    dataset: &SpiderDataset,
    workers: usize,
    emission: EmissionPolicy,
) -> Vec<(Option<Duration>, Ranking)> {
    let engine = Duoquest::new(config(workers).with_emission_policy(emission));
    dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(i, task)| {
            let db = dataset.database(task);
            db.clear_probe_cache();
            let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 42 + i as u64);
            let model = NoisyOracleGuidance::new(gold, 42 + i as u64);
            let started = Instant::now();
            let mut first = None;
            let result = engine
                .session(Arc::clone(db), task.nlq.clone(), Arc::new(model))
                .with_tsq(tsq)
                .run_with(|_c| {
                    first.get_or_insert_with(|| started.elapsed());
                    true
                });
            let ranking =
                result.candidates.iter().map(|c| (format!("{:?}", c.spec), c.confidence)).collect();
            (first, ranking)
        })
        .collect()
}

fn fmt_ms(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.2}ms", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

fn bench_session(c: &mut Criterion) {
    let dataset = workload();
    let parallel_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    // Report the cache behaviour once, outside the timed loops.
    for db in &dataset.databases {
        db.clear_probe_cache();
    }
    let cold = run_workload(&dataset, &config(1), true);
    let warm = run_workload(&dataset, &config(1), false);
    println!(
        "spider_eval workload: {} tasks | cold run: {} probe misses, {} hits | \
         warm rerun: {} hits / {} misses ({:.1}% hit rate)",
        dataset.tasks.len(),
        cold.cache_misses,
        cold.cache_hits,
        warm.cache_hits,
        warm.cache_misses,
        warm.cache_hit_rate() * 100.0,
    );

    // Any-k frontier emission vs the round-barrier default, reported once
    // outside the timed loops: identical candidates, earlier first release.
    // At least 4 pool workers so verify rounds split into chunks and stream
    // chunk-by-chunk even on a 1-CPU machine; each policy gets three
    // repetitions and keeps its best per-task TTFC to damp scheduling noise.
    let ttfc_workers = parallel_workers.max(4);
    const TTFC_REPS: usize = 3;
    let mut barrier_best: Vec<Option<Duration>> = vec![None; dataset.tasks.len()];
    let mut any_k_best: Vec<Option<Duration>> = vec![None; dataset.tasks.len()];
    for _ in 0..TTFC_REPS {
        let barrier = ttfc_runs(&dataset, ttfc_workers, EmissionPolicy::RoundBarrier);
        let any_k = ttfc_runs(&dataset, ttfc_workers, EmissionPolicy::AnyK);
        let merge_min = |slot: &mut Option<Duration>, v: Option<Duration>| {
            if let Some(v) = v {
                *slot = Some(slot.map_or(v, |s| s.min(v)));
            }
        };
        for (i, ((bar_ttfc, bar_ranking), (any_ttfc, any_ranking))) in
            barrier.into_iter().zip(any_k).enumerate()
        {
            assert_eq!(bar_ranking, any_ranking, "task {i} diverged under any-k emission");
            merge_min(&mut barrier_best[i], bar_ttfc);
            merge_min(&mut any_k_best[i], any_ttfc);
        }
    }
    let earlier = barrier_best
        .iter()
        .zip(&any_k_best)
        .filter(|(b, a)| matches!((b, a), (Some(b), Some(a)) if a < b))
        .count();
    println!(
        "any-k frontier emission vs round barrier (best of {TTFC_REPS}, \
         {ttfc_workers} workers): first candidate strictly earlier on \
         {earlier}/{} tasks, candidates byte-identical on all",
        dataset.tasks.len(),
    );
    for (i, (bar, any)) in barrier_best.iter().zip(&any_k_best).enumerate() {
        println!("  task {i}: round-barrier ttfc {} | any-k ttfc {}", fmt_ms(*bar), fmt_ms(*any),);
    }

    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    // The seed path: sequential, every run pays cold probes.
    group.bench_function("sequential_cold_cache", |b| {
        b.iter(|| run_workload(&dataset, &config(1), true))
    });
    // Cache-aware sequential: identical exploration, memoized probes.
    group.bench_function("sequential_warm_cache", |b| {
        b.iter(|| run_workload(&dataset, &config(1), false))
    });
    // The full parallel + cached core.
    group.bench_function(format!("parallel{parallel_workers}_warm_cache"), |b| {
        b.iter(|| run_workload(&dataset, &config(parallel_workers), false))
    });
    // Round-barrier vs any-k frontier emission on cold probes: total run
    // time is expected to be a wash (same work, same emission sequence) —
    // the any-k win is time-to-first-candidate, reported above.
    group.bench_function(format!("parallel{parallel_workers}_round_barrier_cold"), |b| {
        b.iter(|| run_workload(&dataset, &config(parallel_workers), true))
    });
    group.bench_function(format!("parallel{parallel_workers}_any_k_cold"), |b| {
        b.iter(|| {
            run_workload(
                &dataset,
                &config(parallel_workers).with_emission_policy(EmissionPolicy::AnyK),
                true,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
