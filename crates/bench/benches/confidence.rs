//! Criterion micro-benchmark for the ranking design choice called out in
//! DESIGN.md: product-of-softmax confidence (Property 1) vs a geometric-mean
//! alternative, measured on guidance-model scoring plus normalization.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_db::CmpOp;
use duoquest_nlq::guidance::normalize_scores;
use duoquest_nlq::{Choice, GuidanceContext, GuidanceModel, HeuristicGuidance, Nlq};
use duoquest_workloads::MasDataset;

fn bench_confidence(c: &mut Criterion) {
    let mas = MasDataset::standard();
    let schema = mas.db.schema();
    let nlq = Nlq::new("list authors with more than 5 publications in SIGMOD");
    let ctx = GuidanceContext { nlq: &nlq, schema };
    let model = HeuristicGuidance::new();
    let year = schema.column_id("publication", "year").unwrap();
    let candidates: Vec<Choice> =
        CmpOp::ALL.iter().map(|op| Choice::Operator { column: year, op: *op }).collect();

    let mut group = c.benchmark_group("confidence");
    group.bench_function("product_of_softmax", |b| {
        b.iter(|| {
            let raw = model.score(&ctx, &candidates);
            let scores = normalize_scores(&raw);
            scores.iter().fold(0.35f64, |acc, s| acc * s)
        })
    });
    group.bench_function("geometric_mean", |b| {
        b.iter(|| {
            let raw = model.score(&ctx, &candidates);
            let scores = normalize_scores(&raw);
            let product: f64 = scores.iter().product();
            product.powf(1.0 / scores.len() as f64)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_confidence);
criterion_main!(benches);
