//! Socket-front benchmark: submit/stream round-trips through the TCP edge.
//! Reports TTFC percentiles and shed counters for a wide concurrent wave
//! (everything admitted) and a deliberately tight admission box (socket
//! clients see HTTP 503, the front counts `admission_shed`) — the live
//! numbers `GET /stats` serves — then times single stream round-trips.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::DuoquestConfig;
use duoquest_net::{client, wire, NetConfig, NetServer, TaskRegistry, TaskSpec};
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_service::{PriorityClass, ServiceConfig, SynthesisService};
use duoquest_workloads::spider::{self, SpiderDataset};
use duoquest_workloads::{synthesize_tsq, TsqDetail};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn workload() -> SpiderDataset {
    spider::generate("net-bench", 1, 2, 2, 2, 53)
}

fn registry_for(dataset: &SpiderDataset) -> (TaskRegistry, Vec<String>) {
    let config = DuoquestConfig {
        max_candidates: 5,
        max_expansions: 250,
        time_budget: None,
        workers: 1,
        ..Default::default()
    };
    let mut registry = TaskRegistry::new();
    let mut names = Vec::new();
    for (index, task) in dataset.tasks.iter().enumerate() {
        let db = dataset.database(task);
        let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, index as u64);
        let model = Arc::new(NoisyOracleGuidance::new(gold, index as u64));
        let name = format!("task-{index}");
        registry.register(
            &name,
            TaskSpec {
                db: Arc::clone(db),
                nlq: task.nlq.clone(),
                model,
                tsq: Some(tsq),
                config: config.clone(),
            },
        );
        names.push(name);
    }
    (registry, names)
}

fn serve(
    dataset: &SpiderDataset,
    service_cfg: ServiceConfig,
) -> (NetServer, Arc<SynthesisService>) {
    let (registry, _) = registry_for(dataset);
    let service = Arc::new(SynthesisService::new(service_cfg));
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&service), registry, NetConfig::default())
            .expect("bind ephemeral port");
    (server, service)
}

/// `count` concurrent socket clients, each one full submit → stream → done
/// round-trip. Returns (completed, refused-at-admission).
fn wave(server: &NetServer, names: &[String], count: usize) -> (usize, usize) {
    let addr = server.addr();
    let handles: Vec<_> = (0..count)
        .map(|i| {
            let body = wire::SubmitWire::task(&names[i % names.len()]).to_json();
            std::thread::spawn(move || {
                client::request(addr, "POST", "/submit", Some(&body), TIMEOUT)
                    .map(|r| r.status)
                    .unwrap_or(0)
            })
        })
        .collect();
    let mut completed = 0;
    let mut refused = 0;
    for handle in handles {
        match handle.join().expect("client thread") {
            200 => completed += 1,
            503 => refused += 1,
            status => panic!("unexpected status {status}"),
        }
    }
    (completed, refused)
}

fn fmt_opt(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.1}ms", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

fn bench_net(c: &mut Criterion) {
    let dataset = workload();
    let (_, names) = registry_for(&dataset);

    // Headline 1: a wide wave — 64 concurrent socket streams, all admitted
    // live. The TTFC percentiles are the service's own (served on /stats);
    // the counters are the front's.
    {
        let (server, service) = serve(
            &dataset,
            ServiceConfig {
                workers: 2,
                max_live_sessions: 64,
                max_queued: 8,
                ..ServiceConfig::default()
            },
        );
        let started = std::time::Instant::now();
        let (completed, refused) = wave(&server, &names, 64);
        let stats = service.stats();
        let cl = stats.class(PriorityClass::Interactive);
        let m = server.metrics();
        println!(
            "wide wave: 64 socket streams, {completed} completed / {refused} refused in {:.1?} \
             — ttfc p50 {} / p95 {}; shed: admission={} overflow={} disconnects={}",
            started.elapsed(),
            fmt_opt(cl.ttfc_p50),
            fmt_opt(cl.ttfc_p95),
            m.admission_shed.load(Relaxed),
            m.overflow_shed.load(Relaxed),
            m.disconnects.load(Relaxed),
        );
        assert_eq!(completed, 64, "a wide-open box must complete everything");
    }

    // Headline 2: a tight admission box — 4 live slots, queue of 2, under
    // 16 concurrent socket clients. Excess load is refused with HTTP 503
    // and counted as `admission_shed`: backpressure reaching all the way
    // out of the socket.
    {
        let (server, service) = serve(
            &dataset,
            ServiceConfig {
                workers: 2,
                max_live_sessions: 4,
                max_queued: 2,
                ..ServiceConfig::default()
            },
        );
        let (completed, refused) = wave(&server, &names, 16);
        let m = server.metrics();
        let shed = m.admission_shed.load(Relaxed);
        let stats = service.stats();
        let cl = stats.class(PriorityClass::Interactive);
        println!(
            "tight box (4 live, queue 2): {completed} completed, {refused} refused over the \
             socket (admission_shed={shed}, shed rate {:.0}%) — ttfc p50 {} / p95 {}",
            100.0 * refused as f64 / 16.0,
            fmt_opt(cl.ttfc_p50),
            fmt_opt(cl.ttfc_p95),
        );
        assert_eq!(refused as u64, shed, "every 503 must be counted as admission shed");
        assert!(completed >= 6, "the box holds 4 live + 2 queued at minimum");
    }

    let mut group = c.benchmark_group("net");
    group.sample_size(10);

    // One full socket round-trip: connect, submit, stream every candidate
    // line, read the terminal event — against an otherwise idle front.
    {
        let (server, _service) = serve(
            &dataset,
            ServiceConfig {
                workers: 2,
                max_live_sessions: 8,
                max_queued: 8,
                ..ServiceConfig::default()
            },
        );
        let addr = server.addr();
        let body = wire::SubmitWire::task(&names[0]).to_json();
        group.bench_function("submit_stream_roundtrip", |b| {
            b.iter(|| {
                let response = client::request(addr, "POST", "/submit", Some(&body), TIMEOUT)
                    .expect("round-trip");
                assert_eq!(response.status, 200);
                response.body.len()
            });
        });
        group.bench_function("stats_scrape", |b| {
            b.iter(|| {
                client::request(addr, "GET", "/stats", None, TIMEOUT).expect("stats").body.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
