//! Criterion micro-benchmark: progressive join path construction (Steiner tree
//! + FK extensions) on the MAS schema, at different extension depths.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::joinpath::construct_join_paths;
use duoquest_db::JoinGraph;
use duoquest_sql::{PartialQuery, PartialSelectItem, SelectColumn, Slot};
use duoquest_workloads::MasDataset;

fn bench_join_paths(c: &mut Criterion) {
    let mas = MasDataset::standard();
    let schema = mas.db.schema();
    let graph = JoinGraph::new(schema);
    let mut pq = PartialQuery::empty();
    pq.select = Slot::Filled(vec![
        PartialSelectItem::with_column(SelectColumn::Column(
            schema.column_id("author", "name").unwrap(),
        )),
        PartialSelectItem::with_column(SelectColumn::Column(
            schema.column_id("organization", "name").unwrap(),
        )),
    ]);

    let mut group = c.benchmark_group("join_paths");
    for depth in [0usize, 1, 2] {
        group.bench_function(format!("extension_depth_{depth}"), |b| {
            b.iter(|| construct_join_paths(&mas.db, &graph, &pq, None, depth))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_paths);
criterion_main!(benches);
