//! Shared-pool vs per-session-pool benchmark for the batch session
//! scheduler: N concurrent synthesis sessions served by one
//! `SessionScheduler` (one worker pool for the whole process) against the
//! same N sessions each spinning a private pool, for N ∈ {1, 4, 8}. Also
//! reports time-to-first-candidate under contention — the interactive
//! metric the fairness queue exists for.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::{DuoquestConfig, SessionScheduler, SynthesisSession};
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_workloads::spider::{self, SpiderDataset};
use duoquest_workloads::{synthesize_tsq, TsqDetail};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SESSION_COUNTS: [usize; 3] = [1, 4, 8];

fn workload() -> SpiderDataset {
    spider::generate("sched-bench", 2, 4, 4, 2, 19)
}

fn config(workers: usize) -> DuoquestConfig {
    DuoquestConfig {
        max_candidates: 10,
        max_expansions: 800,
        time_budget: Some(Duration::from_secs(2)),
        ..Default::default()
    }
    .with_parallelism(workers, 1)
}

/// Build session `i` of `n`, cycling the workload's tasks.
fn session_for(
    dataset: &SpiderDataset,
    i: usize,
    cfg: &DuoquestConfig,
    pool: Option<&SessionScheduler>,
) -> SynthesisSession {
    let task = &dataset.tasks[i % dataset.tasks.len()];
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 90 + i as u64);
    let model = NoisyOracleGuidance::new(gold, 90 + i as u64);
    let mut session = SynthesisSession::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .with_config(cfg.clone());
    if let Some(pool) = pool {
        session = session.with_scheduler(pool.handle());
    }
    session
}

/// Run `n` sessions concurrently (one driver thread each); returns each
/// session's time from its own start to its first emitted candidate.
fn run_concurrent(
    dataset: &SpiderDataset,
    n: usize,
    cfg: &DuoquestConfig,
    pool: Option<&SessionScheduler>,
) -> Vec<Option<Duration>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let session = session_for(dataset, i, cfg, pool);
                scope.spawn(move || {
                    let started = Instant::now();
                    let mut first: Option<Duration> = None;
                    session.run_with(|_c| {
                        first.get_or_insert_with(|| started.elapsed());
                        true
                    });
                    first
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread panicked")).collect()
    })
}

fn fmt_ms(d: &Option<Duration>) -> String {
    d.map(|d| format!("{:.1}ms", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

fn bench_scheduler(c: &mut Criterion) {
    let dataset = workload();
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    // Time-to-first-candidate under contention, reported once outside the
    // timed loops: the shared pool bounds how long any session waits for its
    // first result; N private pools oversubscribe the machine instead.
    for n in SESSION_COUNTS {
        let pool = SessionScheduler::new(machine);
        let shared_ttfc = run_concurrent(&dataset, n, &config(1), Some(&pool));
        let private_ttfc = run_concurrent(&dataset, n, &config(machine), None);
        let worst = |v: &[Option<Duration>]| fmt_ms(&v.iter().copied().flatten().max());
        println!(
            "time-to-first-candidate, {n} concurrent session(s) on {machine} CPU(s): \
             shared pool worst {} (all: {:?}) | private pools worst {} (all: {:?})",
            worst(&shared_ttfc),
            shared_ttfc.iter().map(fmt_ms).collect::<Vec<_>>(),
            worst(&private_ttfc),
            private_ttfc.iter().map(fmt_ms).collect::<Vec<_>>(),
        );
    }

    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    for n in SESSION_COUNTS {
        // One long-lived pool, sized to the machine, serving all N sessions.
        group.bench_function(format!("shared_pool_{n}_sessions"), |b| {
            let pool = SessionScheduler::new(machine);
            b.iter(|| run_concurrent(&dataset, n, &config(1), Some(&pool)))
        });
        // The pre-scheduler shape: every session spins its own machine-sized
        // pool (N×machine threads at peak).
        group.bench_function(format!("private_pools_{n}_sessions"), |b| {
            b.iter(|| run_concurrent(&dataset, n, &config(machine), None))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
