//! Shared-pool vs per-session-pool benchmark for the batch session
//! scheduler: N concurrent synthesis sessions served by one
//! `SessionScheduler` (one worker pool for the whole process) against the
//! same N sessions each spinning a private pool, for N ∈ {1, 4, 8}. Also
//! reports time-to-first-candidate under contention — the interactive
//! metric the fairness queue exists for.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::{DuoquestConfig, SessionScheduler, SynthesisSession};
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_workloads::spider::{self, SpiderDataset};
use duoquest_workloads::{synthesize_tsq, TsqDetail};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SESSION_COUNTS: [usize; 3] = [1, 4, 8];

fn workload() -> SpiderDataset {
    spider::generate("sched-bench", 2, 4, 4, 2, 19)
}

fn config(workers: usize) -> DuoquestConfig {
    DuoquestConfig {
        max_candidates: 10,
        max_expansions: 800,
        time_budget: Some(Duration::from_secs(2)),
        ..Default::default()
    }
    .with_parallelism(workers, 1)
}

/// Build session `i` of `n`, cycling the workload's tasks.
fn session_for(
    dataset: &SpiderDataset,
    i: usize,
    cfg: &DuoquestConfig,
    pool: Option<&SessionScheduler>,
) -> SynthesisSession {
    let task = &dataset.tasks[i % dataset.tasks.len()];
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 90 + i as u64);
    let model = NoisyOracleGuidance::new(gold, 90 + i as u64);
    let mut session = SynthesisSession::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .with_config(cfg.clone());
    if let Some(pool) = pool {
        session = session.with_scheduler(pool.handle());
    }
    session
}

/// Run `n` sessions concurrently (one driver thread each); returns each
/// session's time from its own start to its first emitted candidate.
fn run_concurrent(
    dataset: &SpiderDataset,
    n: usize,
    cfg: &DuoquestConfig,
    pool: Option<&SessionScheduler>,
) -> Vec<Option<Duration>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let session = session_for(dataset, i, cfg, pool);
                scope.spawn(move || {
                    let started = Instant::now();
                    let mut first: Option<Duration> = None;
                    session.run_with(|_c| {
                        first.get_or_insert_with(|| started.elapsed());
                        true
                    });
                    first
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread panicked")).collect()
    })
}

fn fmt_ms(d: &Option<Duration>) -> String {
    d.map(|d| format!("{:.1}ms", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

/// Probe-duplication burst: `n` *identical* sessions (same task, same seed)
/// run concurrently over one shared database, each on its own thread, so
/// every session issues the same probe stream at the same time. A churn
/// thread clears the memo cache every 2ms for the duration — the
/// cache-pressure regime where duplicate probes cannot be absorbed by
/// memoization and only in-flight sharing can collapse them. Returns the
/// database's cache-counter delta as `(executions, routed_lookups,
/// single_flight_hits, single_flight_leaders)`, where `executions` counts
/// probes that actually ran the executor.
fn duplicate_probe_burst(
    dataset: &SpiderDataset,
    n: usize,
    single_flight: bool,
) -> (u64, u64, u64, u64, Vec<(String, f64)>) {
    let task = &dataset.tasks[0];
    let db = dataset.database(task);
    db.set_single_flight(single_flight);
    db.clear_probe_cache();
    let before = db.cache_stats();
    let done = std::sync::atomic::AtomicBool::new(false);
    let rankings: Vec<Vec<(String, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let session = session_for(dataset, 0, &config(1), None);
                scope.spawn(move || {
                    let result = session.run();
                    result
                        .candidates
                        .iter()
                        .map(|c| (format!("{:?}", c.spec), c.confidence))
                        .collect()
                })
            })
            .collect();
        scope.spawn(|| {
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                db.clear_probe_cache();
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let rankings: Vec<_> =
            handles.into_iter().map(|h| h.join().expect("session thread panicked")).collect();
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        rankings
    });
    // Identical sessions must emit identically — under churn, with or
    // without in-flight sharing.
    for (i, ranking) in rankings.iter().enumerate() {
        assert_eq!(
            rankings[0], *ranking,
            "session {i} diverged in a duplicate-probe burst (single-flight {single_flight})"
        );
    }
    let delta = db.cache_stats().since(&before);
    db.set_single_flight(true);
    // A single-flight hit is a miss that waited on another session's leader
    // instead of executing; everything else that missed ran the executor.
    (
        delta.misses - delta.single_flight_hits,
        delta.single_flight_lookups,
        delta.single_flight_hits,
        delta.single_flight_leaders,
        rankings.into_iter().next().unwrap_or_default(),
    )
}

fn bench_scheduler(c: &mut Criterion) {
    let dataset = workload();
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    // Time-to-first-candidate under contention, reported once outside the
    // timed loops: the shared pool bounds how long any session waits for its
    // first result; N private pools oversubscribe the machine instead.
    for n in SESSION_COUNTS {
        let pool = SessionScheduler::new(machine);
        let shared_ttfc = run_concurrent(&dataset, n, &config(1), Some(&pool));
        let private_ttfc = run_concurrent(&dataset, n, &config(machine), None);
        let worst = |v: &[Option<Duration>]| fmt_ms(&v.iter().copied().flatten().max());
        println!(
            "time-to-first-candidate, {n} concurrent session(s) on {machine} CPU(s): \
             shared pool worst {} (all: {:?}) | private pools worst {} (all: {:?})",
            worst(&shared_ttfc),
            shared_ttfc.iter().map(fmt_ms).collect::<Vec<_>>(),
            worst(&private_ttfc),
            private_ttfc.iter().map(fmt_ms).collect::<Vec<_>>(),
        );
    }

    // Cross-session single-flight probe sharing, reported once outside the
    // timed loops: N identical sessions on one shared database collapse
    // their concurrent duplicate probes onto one leader execution each.
    for n in [4usize, 8] {
        let (on_exec, on_lookups, on_hits, on_leaders, on_ranking) =
            duplicate_probe_burst(&dataset, n, true);
        let (off_exec, _, _, _, off_ranking) = duplicate_probe_burst(&dataset, n, false);
        assert_eq!(on_ranking, off_ranking, "single-flight toggle changed emitted candidates");
        let rate = if on_lookups == 0 { 0.0 } else { on_hits as f64 / on_lookups as f64 * 100.0 };
        println!(
            "single-flight, {n} identical sessions sharing one database on {machine} CPU(s): \
             on: {on_exec} probe executions ({on_leaders} leaders, {on_hits}/{on_lookups} \
             routed misses collapsed = {rate:.1}%) | off: {off_exec} probe executions, \
             candidates byte-identical",
        );
    }

    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    for n in SESSION_COUNTS {
        // One long-lived pool, sized to the machine, serving all N sessions.
        group.bench_function(format!("shared_pool_{n}_sessions"), |b| {
            let pool = SessionScheduler::new(machine);
            b.iter(|| run_concurrent(&dataset, n, &config(1), Some(&pool)))
        });
        // The pre-scheduler shape: every session spins its own machine-sized
        // pool (N×machine threads at peak).
        group.bench_function(format!("private_pools_{n}_sessions"), |b| {
            b.iter(|| run_concurrent(&dataset, n, &config(machine), None))
        });
    }
    // Duplicate-probe burst with and without cross-session single-flight
    // sharing: the on/off gap is the cost of re-executing probes that an
    // identical concurrent session already has in flight.
    for single_flight in [true, false] {
        let label = if single_flight { "on" } else { "off" };
        group.bench_function(format!("single_flight_{label}_8_identical_sessions"), |b| {
            b.iter(|| duplicate_probe_burst(&dataset, 8, single_flight))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
