//! Criterion micro-benchmark: cost of the verification cascade (the design
//! choice benchmarked is cheap-first ordering — the database-free stages are
//! orders of magnitude cheaper than the probing stages).

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::{TableSketchQuery, TsqCell, Verifier};
use duoquest_db::DataType;
use duoquest_nlq::Literal;
use duoquest_sql::{
    ClauseSet, PartialPredicate, PartialQuery, PartialSelectItem, SelectColumn, Slot,
};
use duoquest_workloads::MasDataset;

fn partial_query(mas: &MasDataset) -> PartialQuery {
    let s = mas.db.schema();
    let graph = duoquest_db::JoinGraph::new(s);
    let join = graph
        .steiner_tree(&[s.table_id("conference").unwrap(), s.table_id("publication").unwrap()])
        .unwrap();
    PartialQuery {
        clauses: Slot::Filled(ClauseSet { where_clause: true, ..Default::default() }),
        select: Slot::Filled(vec![
            PartialSelectItem {
                col: Slot::Filled(SelectColumn::Column(
                    s.column_id("publication", "title").unwrap(),
                )),
                agg: Slot::Filled(None),
            },
            PartialSelectItem {
                col: Slot::Filled(SelectColumn::Column(
                    s.column_id("publication", "year").unwrap(),
                )),
                agg: Slot::Filled(None),
            },
        ]),
        join: Some(join),
        where_predicates: Slot::Filled(vec![PartialPredicate {
            col: Slot::Filled(s.column_id("conference", "name").unwrap()),
            op: Slot::Filled(duoquest_db::CmpOp::Eq),
            value: Slot::Filled(duoquest_db::Value::text("SIGMOD")),
            value2: None,
        }]),
        where_op: Slot::Filled(duoquest_db::LogicalOp::And),
        ..PartialQuery::empty()
    }
}

fn bench_verification(c: &mut Criterion) {
    let mas = MasDataset::standard();
    let pq = partial_query(&mas);
    let tsq = TableSketchQuery::with_types(vec![DataType::Text, DataType::Number])
        .with_tuple(vec![TsqCell::text("Paper 0020"), TsqCell::Empty]);
    let literals = vec![Literal::text("SIGMOD", duoquest_db::Value::text("SIGMOD"))];

    let mut group = c.benchmark_group("verification");
    group.bench_function("full_cascade", |b| {
        let verifier = Verifier::new(&mas.db, Some(&tsq), &literals, true);
        b.iter(|| verifier.verify(&pq))
    });
    group.bench_function("cheap_stages_only", |b| {
        let verifier = Verifier::new(&mas.db, None, &literals, true);
        b.iter(|| verifier.verify(&pq))
    });
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
