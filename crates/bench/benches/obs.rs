//! Observability overhead benchmark: the cost of request tracing, measured
//! where it matters — a full service wave with tracing on versus off — plus
//! the raw per-operation costs of the span recorder and the metrics
//! histogram. The tracing-off wave is the zero-cost claim's witness: with
//! `ServiceConfig::tracing` disabled no `Trace` is allocated and the only
//! residual work is a handful of `Option::None` checks on the hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::DuoquestConfig;
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_obs::{Histogram, Trace};
use duoquest_service::{PriorityClass, ServiceConfig, SynthesisRequest, SynthesisService};
use duoquest_workloads::spider::{self, SpiderDataset};
use duoquest_workloads::{synthesize_tsq, TsqDetail};
use std::sync::Arc;
use std::time::Duration;

fn workload() -> SpiderDataset {
    spider::generate("obs-bench", 1, 2, 2, 2, 31)
}

fn config() -> DuoquestConfig {
    DuoquestConfig {
        max_candidates: 5,
        max_expansions: 300,
        time_budget: Some(Duration::from_secs(2)),
        ..Default::default()
    }
}

fn request_for(dataset: &SpiderDataset, i: usize) -> SynthesisRequest {
    let task = &dataset.tasks[i % dataset.tasks.len()];
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 90 + i as u64);
    let model = NoisyOracleGuidance::new(gold, 90 + i as u64);
    SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .with_config(config())
        .with_priority(PriorityClass::Interactive)
}

/// One wave of `n` requests through a fresh service with `tracing` set as
/// given; waits them all out.
fn run_wave(dataset: &SpiderDataset, tracing: bool, n: usize) {
    let service = SynthesisService::new(ServiceConfig {
        workers: 2,
        max_live_sessions: n,
        max_queued: n,
        tracing,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        (0..n).map(|i| service.submit(request_for(dataset, i)).expect("admitted")).collect();
    for ticket in tickets {
        let _ = ticket.wait();
    }
}

fn bench_obs(c: &mut Criterion) {
    let dataset = workload();

    // Printed once outside the timed loops: how much timeline one traced
    // request actually records — the volume the overhead buys.
    {
        let service = SynthesisService::new(ServiceConfig {
            workers: 2,
            max_live_sessions: 4,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let ticket = service.submit(request_for(&dataset, 0)).expect("admitted");
        let id = ticket.id();
        let _ = ticket.wait();
        if let Some(trace) = service.trace(id) {
            println!(
                "one traced interactive request records {} spans and {} events",
                trace.spans().len(),
                trace.events().len()
            );
        }
    }

    let mut group = c.benchmark_group("obs");
    group.sample_size(10);
    group.bench_function("wave_8_tracing_on", |b| b.iter(|| run_wave(&dataset, true, 8)));
    group.bench_function("wave_8_tracing_off", |b| b.iter(|| run_wave(&dataset, false, 8)));

    // Raw recorder costs, far below the wave numbers: one span append under
    // the trace mutex, and one lock-free histogram record.
    let anchor = std::time::Instant::now();
    let trace = Trace::new(1, anchor);
    group.bench_function("trace_record_span", |b| {
        b.iter(|| trace.record_span("bench", anchor, anchor + Duration::from_micros(10)))
    });
    let histogram = Histogram::new();
    let mut v = 1u64;
    group.bench_function("histogram_record_us", |b| {
        b.iter(|| {
            v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493) % 1_000_000;
            histogram.record_us(v)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
