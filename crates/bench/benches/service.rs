//! Serving-layer benchmark: mixed interactive + batch traffic through one
//! `SynthesisService`. Reports per-class time-to-first-candidate p50/p95 and
//! the shed rate under a deliberately tight admission configuration — the
//! interactive latency the priority weights exist for — then times one full
//! mixed wave end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::DuoquestConfig;
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_service::{PriorityClass, ServiceConfig, SynthesisRequest, SynthesisService};
use duoquest_workloads::spider::{self, SpiderDataset};
use duoquest_workloads::{synthesize_tsq, TsqDetail};
use std::sync::Arc;
use std::time::Duration;

fn workload() -> SpiderDataset {
    spider::generate("service-bench", 2, 4, 4, 2, 29)
}

fn config(max_candidates: usize, max_expansions: usize) -> DuoquestConfig {
    DuoquestConfig {
        max_candidates,
        max_expansions,
        time_budget: Some(Duration::from_secs(2)),
        ..Default::default()
    }
}

fn request_for(
    dataset: &SpiderDataset,
    i: usize,
    cfg: DuoquestConfig,
    class: PriorityClass,
) -> SynthesisRequest {
    let task = &dataset.tasks[i % dataset.tasks.len()];
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 70 + i as u64);
    let model = NoisyOracleGuidance::new(gold, 70 + i as u64);
    SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .with_config(cfg)
        .with_priority(class)
}

/// One wave of mixed traffic: `batch` heavy batch requests interleaved with
/// `inter` cheap interactive requests (as concurrent users would submit
/// them); waits for every admitted request and returns how many were shed.
fn run_wave(
    service: &SynthesisService,
    dataset: &SpiderDataset,
    batch: usize,
    inter: usize,
) -> u64 {
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    let mut submit = |req: SynthesisRequest| match service.submit(req) {
        Ok(t) => tickets.push(t),
        Err(_) => shed += 1,
    };
    for i in 0..batch.max(inter) {
        if i < batch {
            submit(request_for(dataset, i, config(10, 800), PriorityClass::Batch));
        }
        if i < inter {
            submit(request_for(dataset, i, config(3, 200), PriorityClass::Interactive));
        }
    }
    for ticket in tickets {
        let _ = ticket.wait();
    }
    shed
}

fn fmt_opt(d: Option<Duration>) -> String {
    d.map(|d| format!("{:.1}ms", d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
}

fn bench_service(c: &mut Criterion) {
    let dataset = workload();
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    // Headline numbers, printed once outside the timed loops: a tight
    // admission box (queue of 4) under 12 batch + 4 interactive requests —
    // some batch traffic must shed, interactive latency must stay low.
    {
        let service = SynthesisService::new(ServiceConfig {
            workers: machine,
            max_live_sessions: 4,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let shed_now = run_wave(&service, &dataset, 12, 4);
        let stats = service.stats();
        let submitted: u64 = stats.classes.iter().map(|cl| cl.submitted).sum();
        println!(
            "mixed wave on {machine} worker(s), 4 live slots, queue of 4: \
             {submitted} admitted, {shed_now} shed \
             (shed rate {:.0}%)",
            100.0 * shed_now as f64 / (submitted + shed_now) as f64
        );
        for class in [PriorityClass::Interactive, PriorityClass::Batch] {
            let cl = stats.class(class);
            println!(
                "  {:<12} ttfc p50 {} / p95 {}  (completed {}, shed {})",
                class.label(),
                fmt_opt(cl.ttfc_p50),
                fmt_opt(cl.ttfc_p95),
                cl.completed,
                cl.shed,
            );
        }
    }

    // Thread-free capacity: 256 requests live **simultaneously** on the
    // fixed pool — the regime that used to need 256 driver threads. TTFC
    // percentiles show latency under extreme live-session fan-in; the
    // driver-thread count shows where the sessions run (nowhere: they are
    // parked state machines resumed by the pool).
    {
        let service = SynthesisService::new(ServiceConfig {
            workers: machine,
            max_live_sessions: 256,
            max_queued: 16,
            ..ServiceConfig::default()
        });
        let started = std::time::Instant::now();
        let tickets: Vec<_> = (0..256)
            .map(|i| {
                service
                    .submit(request_for(&dataset, i, config(3, 200), PriorityClass::Interactive))
                    .expect("256 live slots admit all")
            })
            .collect();
        let live = service.stats();
        for ticket in tickets {
            let _ = ticket.wait();
        }
        let stats = service.stats();
        assert_eq!(live.driver_threads, 0);
        // The monotone high-water mark, not the instantaneous live count (on
        // a fast box early requests can complete mid-submission) — and capped
        // against the worker count, which on a huge box could exceed the 256
        // admitted requests entirely.
        assert!(
            stats.live_sessions_peak > machine.min(32),
            "sessions must stack beyond the worker count (peak {})",
            stats.live_sessions_peak
        );
        let cl = stats.class(PriorityClass::Interactive);
        println!(
            "256 live sessions on {machine} worker(s): all completed in {:.1?} \
             (live peak {}, driver threads {}) — ttfc p50 {} / p95 {}",
            started.elapsed(),
            stats.live_sessions_peak,
            stats.driver_threads,
            fmt_opt(cl.ttfc_p50),
            fmt_opt(cl.ttfc_p95),
        );
    }

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.bench_function("mixed_wave_8batch_4interactive", |b| {
        let service = SynthesisService::new(ServiceConfig {
            workers: machine,
            max_live_sessions: 4,
            max_queued: 16,
            ..ServiceConfig::default()
        });
        b.iter(|| run_wave(&service, &dataset, 8, 4));
    });
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
