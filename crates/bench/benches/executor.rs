//! Criterion micro-benchmark: executor primitives on the MAS database —
//! the cheap `LIMIT 1` verification probes vs a full grouped join query.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_db::{
    execute, AggFunc, CmpOp, JoinGraph, JoinTree, Predicate, SelectItem, SelectSpec, Value,
};
use duoquest_workloads::MasDataset;

fn bench_executor(c: &mut Criterion) {
    let mas = MasDataset::standard();
    let schema = mas.db.schema();

    // Column-wise probe: SELECT name FROM conference WHERE name = 'SIGMOD' LIMIT 1.
    let conf_name = schema.column_id("conference", "name").unwrap();
    let probe = SelectSpec {
        select: vec![SelectItem::column(conf_name)],
        join: JoinTree::single(schema.table_id("conference").unwrap()),
        predicates: vec![Predicate::new(conf_name, CmpOp::Eq, Value::text("SIGMOD"))],
        limit: Some(1),
        ..Default::default()
    };

    // Full grouped join: authors and their publication counts.
    let graph = JoinGraph::new(schema);
    let author_name = schema.column_id("author", "name").unwrap();
    let join = graph
        .steiner_tree(&[
            schema.table_id("author").unwrap(),
            schema.table_id("publication").unwrap(),
        ])
        .unwrap();
    let grouped = SelectSpec {
        select: vec![SelectItem::column(author_name), SelectItem::count_star()],
        join,
        group_by: vec![author_name],
        having: vec![Predicate::having(AggFunc::Count, None, CmpOp::Gt, Value::int(3))],
        ..Default::default()
    };

    let mut group = c.benchmark_group("executor");
    group.bench_function("column_probe_limit1", |b| b.iter(|| execute(&mas.db, &probe).unwrap()));
    group.bench_function("grouped_three_way_join", |b| {
        b.iter(|| execute(&mas.db, &grouped).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
