//! Criterion micro-benchmark: the index-backed executor vs the pure-scan
//! streaming executor (`index_access: false`, the PR 3 baseline) vs the
//! materializing baseline (`limit_pushdown: false`, the pre-streaming
//! executor) on two workloads:
//!
//! * a **spider-workload probe mix** — the verifier-shaped `SELECT … WHERE
//!   col = v LIMIT 1` probes over every column of a generated Spider
//!   database, half hitting and half missing;
//! * a **large join** — a high-fanout two-table join where the joined
//!   relation dwarfs the base tables, probed with `LIMIT 1` and fully
//!   evaluated with 1/2/4 hash partitions.
//!
//! Before timing, the bench prints the rows-scanned and wall-clock ratios
//! between the strategies so the limit-pushdown and index-access wins are
//! visible without a stopwatch.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_db::{
    execute_with, CmpOp, ColumnDef, DataType, Database, ExecOptions, JoinGraph, JoinTree,
    Predicate, Schema, SelectItem, SelectSpec, TableDef, Value,
};
use duoquest_workloads::spider;

/// Verifier-shaped probe mix over every column of `db`: one probe for a value
/// that exists (the first row's) and one for a value that cannot.
fn probe_mix(db: &Database) -> Vec<SelectSpec> {
    let schema = db.schema();
    let mut probes = Vec::new();
    for col in schema.all_columns() {
        let data = db.table_data(col.table);
        let Some(first) = data.rows.first() else { continue };
        let hit = first.0[col.column].clone();
        let miss = match schema.column(col).dtype {
            DataType::Number => Value::Number(-1.0e12),
            DataType::Text => Value::text("no such value anywhere"),
        };
        for value in [hit, miss] {
            if value.is_null() {
                continue;
            }
            probes.push(SelectSpec {
                select: vec![SelectItem::column(col)],
                join: JoinTree::single(col.table),
                predicates: vec![Predicate::new(col, CmpOp::Eq, value)],
                limit: Some(1),
                ..Default::default()
            });
        }
    }
    probes
}

/// High-fanout fixture: `left` (4000 rows) ⋈ `right` (50 keys × 40 rows)
/// joins to 160 000 rows.
fn fanout_db() -> Database {
    let mut s = Schema::new("fanout");
    s.add_table(TableDef::new("right", vec![ColumnDef::number("k"), ColumnDef::number("v")], None));
    s.add_table(TableDef::new(
        "left",
        vec![ColumnDef::number("id"), ColumnDef::number("k")],
        Some(0),
    ));
    s.add_foreign_key("left", "k", "right", "k").unwrap();
    let mut db = Database::new(s).unwrap();
    db.insert_all("right", (0..2000).map(|i| vec![Value::int(i % 50), Value::int(i)])).unwrap();
    db.insert_all("left", (0..4000).map(|i| vec![Value::int(i), Value::int(i % 50)])).unwrap();
    db.rebuild_index();
    db
}

fn fanout_probe(db: &Database) -> SelectSpec {
    let schema = db.schema();
    let join = JoinGraph::new(schema)
        .steiner_tree(&[schema.table_id("left").unwrap(), schema.table_id("right").unwrap()])
        .unwrap();
    SelectSpec {
        select: vec![
            SelectItem::column(schema.column_id("left", "id").unwrap()),
            SelectItem::column(schema.column_id("right", "v").unwrap()),
        ],
        join,
        limit: Some(1),
        ..Default::default()
    }
}

/// The PR 3 streaming baseline: limit pushdown on, no index access.
const STREAMING: ExecOptions = ExecOptions {
    row_budget: None,
    limit_pushdown: true,
    join_partitions: 1,
    parallel_join_threshold: duoquest_db::executor::PARALLEL_JOIN_THRESHOLD,
    index_access: false,
};
/// Streaming plus index-backed access paths (INLJ, range/point restrictions,
/// ordered index scans, empty bails).
const INDEXED: ExecOptions = ExecOptions { index_access: true, ..STREAMING };
/// The pre-streaming executor: full materialization, no indexes.
const MATERIALIZING: ExecOptions = ExecOptions { limit_pushdown: false, ..STREAMING };

/// Total rows scanned executing `specs` under `opts`.
fn rows_scanned(db: &Database, specs: &[SelectSpec], opts: &ExecOptions) -> u64 {
    specs.iter().map(|s| execute_with(db, s, opts).unwrap().metrics.rows_scanned).sum()
}

fn bench_executor(c: &mut Criterion) {
    let dataset = spider::generate("bench-exec", 1, 3, 3, 2, 42);
    let spider_db = dataset.database(&dataset.tasks[0]);
    let probes = probe_mix(spider_db);

    let fanout = fanout_db();
    let probe = fanout_probe(&fanout);

    // The observable win, independent of wall clock: rows-scanned ratios.
    let spider_indexed = rows_scanned(spider_db, &probes, &INDEXED);
    let spider_streamed = rows_scanned(spider_db, &probes, &STREAMING);
    let spider_materialized = rows_scanned(spider_db, &probes, &MATERIALIZING);
    let join_indexed = rows_scanned(&fanout, std::slice::from_ref(&probe), &INDEXED);
    let join_streamed = rows_scanned(&fanout, std::slice::from_ref(&probe), &STREAMING);
    let join_materialized = rows_scanned(&fanout, std::slice::from_ref(&probe), &MATERIALIZING);
    println!(
        "rows scanned, spider probe mix ({} probes): indexed {} vs streaming {} vs \
         materialized {} (index/scan ratio {:.1}%)",
        probes.len(),
        spider_indexed,
        spider_streamed,
        spider_materialized,
        100.0 * spider_indexed as f64 / spider_streamed.max(1) as f64
    );
    println!(
        "rows scanned, large-join LIMIT 1 probe: indexed {} vs streaming {} vs \
         materialized {} (index/scan ratio {:.2}%)",
        join_indexed,
        join_streamed,
        join_materialized,
        100.0 * join_indexed as f64 / join_streamed.max(1) as f64
    );
    // Wall-clock ratio of the same comparison, a single untimed pass each
    // (after one warm-up pass so neither side pays first-touch costs).
    let wall = |opts: &ExecOptions| {
        rows_scanned(spider_db, &probes, opts);
        let start = std::time::Instant::now();
        rows_scanned(spider_db, &probes, opts);
        start.elapsed()
    };
    let (wall_indexed, wall_scan) = (wall(&INDEXED), wall(&STREAMING));
    println!(
        "wall clock, spider probe mix: indexed {wall_indexed:?} vs streaming {wall_scan:?} \
         ({:.1}%)",
        100.0 * wall_indexed.as_secs_f64() / wall_scan.as_secs_f64().max(1e-9)
    );

    let mut group = c.benchmark_group("executor");
    group.bench_function("spider_probe_mix_indexed", |b| {
        b.iter(|| rows_scanned(spider_db, &probes, &INDEXED))
    });
    group.bench_function("spider_probe_mix_streaming", |b| {
        b.iter(|| rows_scanned(spider_db, &probes, &STREAMING))
    });
    group.bench_function("spider_probe_mix_materialized", |b| {
        b.iter(|| rows_scanned(spider_db, &probes, &MATERIALIZING))
    });
    group.bench_function("large_join_limit1_indexed", |b| {
        b.iter(|| execute_with(&fanout, &probe, &INDEXED).unwrap().result.len())
    });
    group.bench_function("large_join_limit1_streaming", |b| {
        b.iter(|| execute_with(&fanout, &probe, &STREAMING).unwrap().result.len())
    });
    group.bench_function("large_join_limit1_materialized", |b| {
        b.iter(|| execute_with(&fanout, &probe, &MATERIALIZING).unwrap().result.len())
    });

    // Full (unlimited) join evaluation across partition counts.
    let mut full = fanout_probe(&fanout);
    full.limit = None;
    for partitions in [1usize, 2, 4] {
        let opts = ExecOptions {
            join_partitions: partitions,
            parallel_join_threshold: 1,
            ..MATERIALIZING
        };
        group.bench_function(format!("full_join_{partitions}_partitions"), |b| {
            b.iter(|| execute_with(&fanout, &full, &opts).unwrap().result.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
