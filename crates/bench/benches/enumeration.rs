//! Criterion micro-benchmark: end-to-end GPQE enumeration throughput on one
//! synthetic Spider task, with and without a TSQ.

use criterion::{criterion_group, criterion_main, Criterion};
use duoquest_core::{Duoquest, DuoquestConfig};
use duoquest_nlq::NoisyOracleGuidance;
use duoquest_workloads::{spider, synthesize_tsq, TsqDetail};
use std::time::Duration;

fn config() -> DuoquestConfig {
    DuoquestConfig {
        max_candidates: 10,
        max_expansions: 800,
        time_budget: Some(Duration::from_millis(500)),
        ..Default::default()
    }
}

fn bench_enumeration(c: &mut Criterion) {
    let dataset = spider::generate("bench", 1, 2, 2, 1, 17);
    let task = &dataset.tasks[0];
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 7);
    let model = NoisyOracleGuidance::new(gold, 7);
    let engine = Duoquest::new(config());

    let mut group = c.benchmark_group("enumeration");
    group.sample_size(10);
    group.bench_function("with_tsq", |b| {
        b.iter(|| engine.synthesize(db, &task.nlq, Some(&tsq), &model))
    });
    group.bench_function("without_tsq", |b| {
        b.iter(|| engine.synthesize(db, &task.nlq, None, &model))
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
