//! A deliberately small HTTP/1.1 implementation: exactly what the serving
//! front needs and nothing more. Requests are `METHOD /path HTTP/1.1` with
//! headers and an optional `Content-Length` body; responses carry either a
//! `Content-Length` body or a `Transfer-Encoding: chunked` stream.
//!
//! The reader is hardened the same way the JSON reader is: header and body
//! sizes are capped, truncated or malformed requests return an error
//! instead of panicking or reading unboundedly, and every error maps to an
//! HTTP status so the connection can answer before closing.

use std::io::{self, Read, Write};

/// One parsed request: just the triplet the router needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/submit` (query strings are not split off —
    /// the front's routes don't take any).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Why a request could not be read, with the status the response should
/// carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code to answer with (400, 413, 408 …).
    pub status: u16,
    /// Human-readable reason, echoed in the error body.
    pub reason: String,
}

impl HttpError {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        HttpError { status, reason: reason.into() }
    }
}

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Hard cap on the request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Read and parse one request from `stream`. Bounded: the head is capped at
/// [`MAX_HEAD_BYTES`], the body at [`MAX_BODY_BYTES`]; a peer that stalls
/// mid-request hits the stream's read timeout and surfaces as a 408.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Single-byte reads keep the parser from consuming body bytes past the
    // blank line; request heads are tiny and arrive in one segment, so this
    // costs nothing measurable against a synthesis run.
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(HttpError::new(400, "connection closed mid-request")),
            Ok(_) => head.push(byte[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::new(408, "timed out reading request head"));
            }
            Err(e) => return Err(HttpError::new(400, format!("read error: {e}"))),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head too large"));
        }
    }
    let head =
        std::str::from_utf8(&head).map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| HttpError::new(400, "empty request line"))?;
    let path = parts.next().ok_or_else(|| HttpError::new(400, "request line has no target"))?;
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, format!("unsupported protocol {version:?}")));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header line {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::new(400, "unparseable Content-Length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body too large"));
    }

    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::new(400, "connection closed mid-body")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::new(408, "timed out reading request body"));
            }
            Err(e) => return Err(HttpError::new(400, format!("read error: {e}"))),
        }
    }
    let body =
        String::from_utf8(body).map_err(|_| HttpError::new(400, "request body is not UTF-8"))?;
    Ok(Request { method: method.to_string(), path: path.to_string(), body })
}

/// The reason phrase for the handful of statuses the front answers with.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write a complete `Content-Length` response.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason_phrase(status),
        content_type,
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Start a `Transfer-Encoding: chunked` response (the candidate stream).
pub fn write_chunked_head(stream: &mut impl Write, content_type: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
    );
    stream.write_all(head.as_bytes())
}

/// Write one chunk of a chunked response and flush it (streaming delivery:
/// every candidate reaches the client as it is emitted, not at run end).
pub fn write_chunk(stream: &mut impl Write, data: &str) -> io::Result<()> {
    if data.is_empty() {
        return Ok(()); // an empty chunk would terminate the stream
    }
    write!(stream, "{:x}\r\n{}\r\n", data.len(), data)?;
    stream.flush()
}

/// Terminate a chunked response.
pub fn write_chunk_end(stream: &mut impl Write) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/submit");
        assert_eq!(req.body, "body");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("GET /stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert_eq!(req.body, "");
    }

    #[test]
    fn truncated_and_malformed_requests_error_with_a_status() {
        assert_eq!(parse("").unwrap_err().status, 400);
        assert_eq!(parse("GET /stats HTTP/1.1\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GARBAGE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x SPDY/9\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x HTTP/1.1\r\nBadHeader\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err().status,
            400
        );
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err().status,
            400
        );
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse(&huge).unwrap_err().status, 413);
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES + 10));
        assert_eq!(parse(&long_head).unwrap_err().status, 431);
    }

    #[test]
    fn chunked_writer_produces_valid_framing() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, "application/x-ndjson").unwrap();
        write_chunk(&mut out, "hello\n").unwrap();
        write_chunk(&mut out, "").unwrap(); // dropped, not a terminator
        write_chunk(&mut out, "world\n").unwrap();
        write_chunk_end(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n"));
    }
}
