//! Minimal client helpers for the front's protocol: a blocking one-shot
//! request helper plus an incrementally-fed response decoder that works on
//! non-blocking sockets — what the 1k-connection load generator uses to
//! multiplex every stream from a single thread.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fully-read HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// The decoded body (chunked transfer already de-framed).
    pub body: String,
}

impl HttpResponse {
    /// The body split into its NDJSON lines.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.body.lines().filter(|l| !l.is_empty())
    }
}

/// Send one request and read the whole response (blocking). `body = None`
/// sends no `Content-Length`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    send_request(&mut stream, method, path, body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let mut decoder = ResponseDecoder::new();
    decoder.feed(&raw);
    decoder
        .response()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "incomplete response"))
}

/// Write `METHOD path` plus an optional body on an already-connected
/// stream.
pub fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: duoquest\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[derive(Debug, PartialEq, Eq)]
enum DecodeState {
    Head,
    ChunkSize,
    ChunkData { remaining: usize },
    ChunkTrailer,
    Body { remaining: usize },
    Done,
}

/// An incremental HTTP response decoder: feed it bytes as they arrive (any
/// fragmentation), read back decoded NDJSON lines as they complete. Handles
/// both `Content-Length` and `Transfer-Encoding: chunked` responses, which
/// is all the front emits.
#[derive(Debug)]
pub struct ResponseDecoder {
    state: DecodeState,
    buffer: Vec<u8>,
    status: Option<u16>,
    body: Vec<u8>,
    emitted_lines: usize,
}

impl Default for ResponseDecoder {
    fn default() -> Self {
        ResponseDecoder::new()
    }
}

impl ResponseDecoder {
    /// A decoder expecting the start of a response.
    pub fn new() -> Self {
        ResponseDecoder {
            state: DecodeState::Head,
            buffer: Vec::new(),
            status: None,
            body: Vec::new(),
            emitted_lines: 0,
        }
    }

    /// Feed newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
        self.advance();
    }

    fn advance(&mut self) {
        loop {
            match self.state {
                DecodeState::Head => {
                    let Some(end) = find_subslice(&self.buffer, b"\r\n\r\n") else { return };
                    let head = String::from_utf8_lossy(&self.buffer[..end]).to_string();
                    self.buffer.drain(..end + 4);
                    let status = head
                        .split_whitespace()
                        .nth(1)
                        .and_then(|s| s.parse::<u16>().ok())
                        .unwrap_or(0);
                    self.status = Some(status);
                    let chunked = head.to_ascii_lowercase().contains("transfer-encoding: chunked");
                    if chunked {
                        self.state = DecodeState::ChunkSize;
                    } else {
                        let length = head
                            .lines()
                            .find_map(|l| {
                                let (name, value) = l.split_once(':')?;
                                name.trim()
                                    .eq_ignore_ascii_case("content-length")
                                    .then(|| value.trim().parse::<usize>().ok())?
                            })
                            .unwrap_or(0);
                        self.state = DecodeState::Body { remaining: length };
                    }
                }
                DecodeState::ChunkSize => {
                    let Some(end) = find_subslice(&self.buffer, b"\r\n") else { return };
                    let size_line = String::from_utf8_lossy(&self.buffer[..end]).to_string();
                    self.buffer.drain(..end + 2);
                    let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
                    if size == 0 {
                        self.state = DecodeState::ChunkTrailer;
                    } else {
                        self.state = DecodeState::ChunkData { remaining: size };
                    }
                }
                DecodeState::ChunkData { remaining } => {
                    let take = remaining.min(self.buffer.len());
                    self.body.extend(self.buffer.drain(..take));
                    let left = remaining - take;
                    if left > 0 {
                        self.state = DecodeState::ChunkData { remaining: left };
                        return;
                    }
                    // Consume the CRLF after the chunk data.
                    if self.buffer.len() < 2 {
                        self.state = DecodeState::ChunkData { remaining: 0 };
                        return;
                    }
                    self.buffer.drain(..2);
                    self.state = DecodeState::ChunkSize;
                }
                DecodeState::ChunkTrailer => {
                    let Some(end) = find_subslice(&self.buffer, b"\r\n") else { return };
                    self.buffer.drain(..end + 2);
                    self.state = DecodeState::Done;
                }
                DecodeState::Body { remaining } => {
                    let take = remaining.min(self.buffer.len());
                    self.body.extend(self.buffer.drain(..take));
                    let left = remaining - take;
                    if left > 0 {
                        self.state = DecodeState::Body { remaining: left };
                        return;
                    }
                    self.state = DecodeState::Done;
                }
                DecodeState::Done => return,
            }
        }
    }

    /// Whether the response is completely decoded.
    pub fn is_done(&self) -> bool {
        self.state == DecodeState::Done
    }

    /// The status code, once the head has been decoded.
    pub fn status(&self) -> Option<u16> {
        self.status
    }

    /// Completed NDJSON lines not yet returned by a previous call. Safe to
    /// call repeatedly as bytes stream in; each line is returned exactly
    /// once, in stream order.
    pub fn take_lines(&mut self) -> Vec<String> {
        let text = String::from_utf8_lossy(&self.body);
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // The final line may be incomplete unless the stream is done.
        if !self.is_done() && !text.ends_with('\n') {
            lines.pop();
        }
        let fresh = lines.split_off(self.emitted_lines.min(lines.len()));
        self.emitted_lines += fresh.len();
        fresh
    }

    /// The finished response, if fully decoded.
    pub fn response(&self) -> Option<HttpResponse> {
        if !self.is_done() {
            return None;
        }
        Some(HttpResponse {
            status: self.status.unwrap_or(0),
            body: String::from_utf8_lossy(&self.body).to_string(),
        })
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_content_length_response() {
        let mut decoder = ResponseDecoder::new();
        decoder.feed(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(decoder.is_done());
        let response = decoder.response().unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "hello");
    }

    #[test]
    fn decodes_a_chunked_response_byte_by_byte() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nfirst\n\r\n7\r\nsecond\n\r\n0\r\n\r\n";
        let mut decoder = ResponseDecoder::new();
        let mut seen = Vec::new();
        for byte in raw.iter() {
            decoder.feed(std::slice::from_ref(byte));
            seen.extend(decoder.take_lines());
        }
        assert!(decoder.is_done());
        assert_eq!(seen, vec!["first".to_string(), "second".to_string()]);
        assert_eq!(decoder.response().unwrap().body, "first\nsecond\n");
    }

    #[test]
    fn take_lines_never_returns_a_partial_line() {
        let mut decoder = ResponseDecoder::new();
        decoder.feed(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n");
        decoder.feed(b"4\r\npar\n\r\n");
        assert_eq!(decoder.take_lines(), vec!["par".to_string()]);
        decoder.feed(b"4\r\ntia");
        assert!(decoder.take_lines().is_empty(), "incomplete line held back");
        decoder.feed(b"l\r\n");
        assert!(decoder.take_lines().is_empty(), "still no newline");
        decoder.feed(b"2\r\n!\n\r\n0\r\n\r\n");
        assert_eq!(decoder.take_lines(), vec!["tial!".to_string()]);
    }
}
