//! The NDJSON wire format streamed over the chunked HTTP response, plus the
//! submit-frame reader. Every string embedded in an event goes through
//! [`escape_string`] — task names and SQL text are user-reachable and can
//! contain anything — and every frame read off the socket goes through the
//! hardened [`Json`] reader, so a hostile client can get an error but never
//! a panic.
//!
//! Events, one JSON object per line:
//!
//! * `{"event":"accepted","id":N}` — the request was admitted; `N` is the
//!   service-assigned id usable with `POST /cancel`.
//! * `{"event":"candidate","emit_index":K,"sql":S,"confidence_bits":B,
//!   "confidence":C}` — the K-th surviving candidate, streamed as it is
//!   emitted. `confidence_bits` is the exact `f64` bit pattern as 16 hex
//!   digits (the byte-identity token); `confidence` is a lossy convenience
//!   rendering. The line deliberately omits the request id so the stream
//!   for a given task is **byte-identical** on every connection.
//! * `{"event":"done","id":N,"status":S,"shed":B,"queue_wait_us":N,
//!   "ttfc_us":N|null,"candidates":N}` — terminal line; `shed:true` means
//!   the connection's outbox overflowed and the run was cut (backpressure
//!   shed), in which case the candidate lines are a prefix of the full
//!   stream.
//! * `{"event":"error","reason":S}` — terminal line of a stream that could
//!   not finish normally.

use duoquest_core::Candidate;
use duoquest_db::Schema;
use duoquest_service::json::{escape_string, Json};
use duoquest_service::{PriorityClass, ServiceOutcome};
use duoquest_sql::render_sql;

/// A parsed `POST /submit` body:
/// `{"task":"name","priority":"interactive","deadline_ms":N,"max_candidates":N}`
/// with everything but `task` optional.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitWire {
    /// Registry name of the task fixture to run.
    pub task: String,
    /// Priority class; `None` leaves the registry default.
    pub priority: Option<PriorityClass>,
    /// Deadline in milliseconds from submission.
    pub deadline_ms: Option<u64>,
    /// Override of the engine's candidate budget.
    pub max_candidates: Option<usize>,
}

impl SubmitWire {
    /// A frame naming just a task, everything else default.
    pub fn task(name: impl Into<String>) -> Self {
        SubmitWire { task: name.into(), priority: None, deadline_ms: None, max_candidates: None }
    }

    /// Parse a submit body. All failure modes — malformed JSON, missing or
    /// mistyped fields, unknown priority labels — are errors, never panics.
    pub fn parse(body: &str) -> Result<SubmitWire, String> {
        let json = Json::parse(body)?;
        let task = json
            .get("task")
            .and_then(Json::as_str)
            .ok_or("submit frame needs a string \"task\" field")?
            .to_string();
        let priority = match json.get("priority") {
            None => None,
            Some(value) => {
                let label = value.as_str().ok_or("\"priority\" must be a string")?;
                Some(
                    PriorityClass::ALL
                        .into_iter()
                        .find(|c| c.label() == label)
                        .ok_or_else(|| format!("unknown priority {label:?}"))?,
                )
            }
        };
        let deadline_ms = match json.get("deadline_ms") {
            None => None,
            Some(value) => {
                Some(value.as_u64().ok_or("\"deadline_ms\" must be a non-negative integer")?)
            }
        };
        let max_candidates = match json.get("max_candidates") {
            None => None,
            Some(value) => {
                Some(value.as_u64().ok_or("\"max_candidates\" must be a non-negative integer")?
                    as usize)
            }
        };
        Ok(SubmitWire { task, priority, deadline_ms, max_candidates })
    }

    /// Render the frame as a submit body (the client half of the protocol).
    pub fn to_json(&self) -> String {
        let mut fields = vec![format!("\"task\":{}", escape_string(&self.task))];
        if let Some(priority) = self.priority {
            fields.push(format!("\"priority\":\"{}\"", priority.label()));
        }
        if let Some(deadline) = self.deadline_ms {
            fields.push(format!("\"deadline_ms\":{deadline}"));
        }
        if let Some(max) = self.max_candidates {
            fields.push(format!("\"max_candidates\":{max}"));
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// The `accepted` event line (newline included, like every event line).
pub fn accepted_line(id: u64) -> String {
    format!("{{\"event\":\"accepted\",\"id\":{id}}}\n")
}

/// The `candidate` event line for the `index`-th emitted candidate.
pub fn candidate_line(index: usize, candidate: &Candidate, schema: &Schema) -> String {
    format!(
        "{{\"event\":\"candidate\",\"emit_index\":{},\"sql\":{},\"confidence_bits\":\"{:016x}\",\"confidence\":{}}}\n",
        index,
        escape_string(&render_sql(&candidate.spec, schema)),
        candidate.confidence.to_bits(),
        candidate.confidence,
    )
}

/// The terminal `done` event line.
pub fn done_line(id: u64, outcome: &ServiceOutcome, emitted: usize, shed: bool) -> String {
    let ttfc = outcome
        .time_to_first_candidate
        .map(|d| d.as_micros().to_string())
        .unwrap_or_else(|| "null".into());
    format!(
        "{{\"event\":\"done\",\"id\":{},\"status\":\"{}\",\"shed\":{},\"queue_wait_us\":{},\"ttfc_us\":{},\"candidates\":{}}}\n",
        id,
        outcome.status.label(),
        shed,
        outcome.queue_wait.as_micros(),
        ttfc,
        emitted,
    )
}

/// The terminal `error` event line.
pub fn error_line(reason: &str) -> String {
    format!("{{\"event\":\"error\",\"reason\":{}}}\n", escape_string(reason))
}

/// An error body for non-streaming error responses (400/404/503 …).
pub fn error_body(reason: &str) -> String {
    format!("{{\"error\":{}}}\n", escape_string(reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_frame_round_trips() {
        let frame = SubmitWire {
            task: "movies \"before\"\n1995".into(),
            priority: Some(PriorityClass::Batch),
            deadline_ms: Some(250),
            max_candidates: Some(5),
        };
        assert_eq!(SubmitWire::parse(&frame.to_json()).unwrap(), frame);
        let bare = SubmitWire::task("t0");
        assert_eq!(SubmitWire::parse(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn submit_frame_rejects_bad_input() {
        assert!(SubmitWire::parse("").is_err());
        assert!(SubmitWire::parse("{}").is_err());
        assert!(SubmitWire::parse("{\"task\":7}").is_err());
        assert!(SubmitWire::parse("{\"task\":\"t\",\"priority\":\"vip\"}").is_err());
        assert!(SubmitWire::parse("{\"task\":\"t\",\"deadline_ms\":-4}").is_err());
        assert!(SubmitWire::parse("{\"task\":\"t\",\"max_candidates\":\"lots\"}").is_err());
        assert!(SubmitWire::parse(&"[".repeat(100_000)).is_err());
    }

    #[test]
    fn event_lines_are_parseable_json() {
        let accepted = Json::parse(accepted_line(7).trim()).unwrap();
        assert_eq!(accepted.get("event").and_then(Json::as_str), Some("accepted"));
        assert_eq!(accepted.get("id").and_then(Json::as_u64), Some(7));
        let error = Json::parse(error_line("bad \"frame\"\n").trim()).unwrap();
        assert_eq!(error.get("reason").and_then(Json::as_str), Some("bad \"frame\"\n"));
    }
}
