//! The per-connection handler: one short-lived thread per accepted socket
//! (sessions themselves are thread-free scheduler-driven state machines, so
//! the thread count tracks open *connections*, not running requests — and a
//! connection thread spends its life blocked on I/O, not computing).
//!
//! Routes:
//!
//! * `GET /stats` — live service + net counters as JSON.
//! * `POST /cancel` — `{"id":N}` cancels a request by service id.
//! * `POST /submit` — streams the run as chunked NDJSON (see
//!   [`crate::wire`]); the handler couples the run to the connection's
//!   lifetime: a disconnect or write stall cancels the run exactly like a
//!   dropped in-process `Ticket`.

use crate::http;
use crate::outbox::{Outbox, Popped};
use crate::wire::{self, SubmitWire};
use crate::ServerCtx;
use duoquest_core::Candidate;
use duoquest_service::json::Json;
use duoquest_service::AdmissionError;
use std::io::{self, Read};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How long the streaming loop waits on the outbox before re-checking the
/// run's outcome, the shutdown flag and the peer's liveness.
const POLL: Duration = Duration::from_millis(25);

/// Handle one accepted connection to completion. Never panics outward; all
/// errors resolve into an HTTP error response or a closed socket.
pub(crate) fn handle(mut stream: TcpStream, ctx: Arc<ServerCtx>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(ctx.cfg.write_timeout));

    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            ctx.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(
                &mut stream,
                e.status,
                "application/json",
                &wire::error_body(&e.reason),
            );
            return;
        }
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/stats") => {
            ctx.metrics.routes.stats.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, 200, "application/json", &ctx.stats_json());
        }
        ("GET", "/metrics") => {
            ctx.metrics.routes.metrics.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(
                &mut stream,
                200,
                "text/plain; version=0.0.4",
                &ctx.metrics_text(),
            );
        }
        ("GET", path) if path.starts_with("/trace/") => {
            ctx.metrics.routes.trace.fetch_add(1, Ordering::Relaxed);
            handle_trace(&mut stream, &ctx, path);
        }
        ("POST", "/cancel") => {
            ctx.metrics.routes.cancel.fetch_add(1, Ordering::Relaxed);
            handle_cancel(&mut stream, &ctx, &request.body);
        }
        ("POST", "/submit") => {
            ctx.metrics.routes.submit.fetch_add(1, Ordering::Relaxed);
            handle_submit(&mut stream, &ctx, &request.body);
        }
        (_, "/stats" | "/cancel" | "/submit" | "/metrics") => {
            ctx.metrics.routes.other.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(
                &mut stream,
                405,
                "application/json",
                &wire::error_body("method not allowed on this path"),
            );
        }
        (_, path) if path.starts_with("/trace/") => {
            ctx.metrics.routes.other.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(
                &mut stream,
                405,
                "application/json",
                &wire::error_body("method not allowed on this path"),
            );
        }
        (_, path) => {
            ctx.metrics.routes.other.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(
                &mut stream,
                404,
                "application/json",
                &wire::error_body(&format!("no such path {path:?}")),
            );
        }
    }
}

/// `GET /trace/<id>`: serve a finished request's span timeline from the
/// service's flight recorder. 400 on a malformed id, 404 when the recorder
/// no longer (or never) retains the id — live requests are not served, a
/// trace becomes fetchable when its request resolves.
fn handle_trace(stream: &mut TcpStream, ctx: &ServerCtx, path: &str) {
    let Ok(id) = path["/trace/".len()..].parse::<u64>() else {
        ctx.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(
            stream,
            400,
            "application/json",
            &wire::error_body("trace path needs an integer request id"),
        );
        return;
    };
    match ctx.service.trace_json(id) {
        Some(body) => {
            let _ = http::write_response(stream, 200, "application/json", &format!("{body}\n"));
        }
        None => {
            let _ = http::write_response(
                stream,
                404,
                "application/json",
                &wire::error_body(&format!("no retained trace for request {id}")),
            );
        }
    }
}

fn handle_cancel(stream: &mut TcpStream, ctx: &ServerCtx, body: &str) {
    let id = Json::parse(body).ok().and_then(|json| json.get("id").and_then(Json::as_u64));
    let Some(id) = id else {
        ctx.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(
            stream,
            400,
            "application/json",
            &wire::error_body("cancel frame needs an integer \"id\" field"),
        );
        return;
    };
    let cancelled = ctx.service.cancel(id);
    if cancelled {
        ctx.metrics.remote_cancels.fetch_add(1, Ordering::Relaxed);
    }
    let _ = http::write_response(
        stream,
        200,
        "application/json",
        &format!("{{\"id\":{id},\"cancelled\":{cancelled}}}\n"),
    );
}

fn handle_submit(stream: &mut TcpStream, ctx: &ServerCtx, body: &str) {
    let frame = match SubmitWire::parse(body) {
        Ok(frame) => frame,
        Err(reason) => {
            ctx.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ =
                http::write_response(stream, 400, "application/json", &wire::error_body(&reason));
            return;
        }
    };
    let Some(db) = ctx.registry.get(&frame.task).map(|spec| Arc::clone(&spec.db)) else {
        ctx.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(
            stream,
            404,
            "application/json",
            &wire::error_body(&format!("unknown task {:?}", frame.task)),
        );
        return;
    };
    let request = ctx.registry.build_request(&frame).expect("task resolved above");

    // The observer runs on pool workers: render the event line and push it
    // to the bounded outbox. A full outbox (client slower than the engine,
    // kernel socket buffer already full) fails the push; returning false
    // stops the run — the service resolves it as cancelled and this thread
    // reports `shed:true`.
    let outbox = Arc::new(Outbox::new(ctx.cfg.outbox_capacity));
    let sink = Arc::clone(&outbox);
    let mut emit_index = 0usize;
    let observer = Box::new(move |candidate: &Candidate| {
        let line = wire::candidate_line(emit_index, candidate, db.schema());
        emit_index += 1;
        sink.push(line).is_ok()
    });

    let mut ticket = match ctx.service.submit_with_observer(request, observer) {
        Ok(ticket) => ticket,
        Err(error) => {
            let status = match error {
                AdmissionError::Overloaded { .. } => {
                    ctx.metrics.admission_shed.fetch_add(1, Ordering::Relaxed);
                    503
                }
                AdmissionError::ShuttingDown => 503,
            };
            let _ = http::write_response(
                stream,
                status,
                "application/json",
                &wire::error_body(&error.to_string()),
            );
            return;
        }
    };
    ctx.metrics.submits.fetch_add(1, Ordering::Relaxed);

    if http::write_chunked_head(stream, "application/x-ndjson").is_err()
        || http::write_chunk(stream, &wire::accepted_line(ticket.id())).is_err()
    {
        // Peer vanished before the stream even started: drop the ticket,
        // which cancels the run.
        ctx.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
        return;
    }

    let mut delivered = 0usize;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            // Server going down: cancel the run, answer with a terminal
            // error line, close.
            ticket.cancel();
            let _ = http::write_chunk(stream, &wire::error_line("server shutting down"));
            let _ = http::write_chunk_end(stream);
            return;
        }
        match outbox.pop_wait(POLL) {
            Popped::Line(line) => {
                if http::write_chunk(stream, &line).is_err() {
                    // Write failed or timed out: the client is gone or
                    // wedged. Dropping the ticket cancels the run and reaps
                    // its queued pool units — a dead client behaves exactly
                    // like a dropped in-process ticket.
                    ctx.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                delivered += 1;
            }
            Popped::Empty | Popped::Closed => {
                if ticket.try_wait().is_some() {
                    break;
                }
                if client_gone(stream) {
                    ctx.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                    return; // ticket drop cancels the run
                }
            }
        }
    }

    // The run resolved. The observer (and with it the last push) completed
    // before the outcome was delivered, so one final drain empties the
    // stream, then the terminal line reports how the run ended.
    for line in outbox.drain() {
        if http::write_chunk(stream, &line).is_err() {
            ctx.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        delivered += 1;
    }
    let shed = outbox.overflowed();
    if shed {
        ctx.metrics.overflow_shed.fetch_add(1, Ordering::Relaxed);
    }
    let id = ticket.id();
    let outcome = ticket.try_wait().expect("outcome checked above").clone();
    ctx.metrics.completed.fetch_add(1, Ordering::Relaxed);
    let _ = http::write_chunk(stream, &wire::done_line(id, &outcome, delivered, shed));
    let _ = http::write_chunk_end(stream);
}

/// Probe whether the peer hung up while the stream is idle: a non-blocking
/// read returning 0 is EOF (client closed); `WouldBlock` means alive.
/// Anything the client pipelines after its request is read and ignored.
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 64];
    let gone = match (&*stream).read(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    stream.set_nonblocking(false).is_err() || gone
}
