//! The task registry: the server-side catalog mapping wire task names to
//! full synthesis fixtures.
//!
//! The wire protocol names tasks instead of shipping databases and guidance
//! models over the socket — those are process-local objects (a `Database`
//! is shared by `Arc`, a `GuidanceModel` is a trait object). A deployment
//! registers its catalog once at server construction; a submit frame then
//! picks a task by name and overrides only the serving knobs (priority,
//! deadline, candidate budget).

use crate::wire::SubmitWire;
use duoquest_core::{DuoquestConfig, TableSketchQuery};
use duoquest_db::Database;
use duoquest_nlq::{GuidanceModel, Nlq};
use duoquest_service::SynthesisRequest;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything needed to build a [`SynthesisRequest`] for one named task.
#[derive(Clone)]
pub struct TaskSpec {
    /// The database the task runs against.
    pub db: Arc<Database>,
    /// The natural-language half of the dual specification.
    pub nlq: Nlq,
    /// The guidance model scoring enumeration choices.
    pub model: Arc<dyn GuidanceModel>,
    /// The table-sketch half of the dual specification, if any.
    pub tsq: Option<TableSketchQuery>,
    /// The engine configuration (a submit frame may override
    /// `max_candidates`).
    pub config: DuoquestConfig,
}

/// The name → [`TaskSpec`] catalog a [`NetServer`](crate::NetServer) serves.
#[derive(Default, Clone)]
pub struct TaskRegistry {
    tasks: HashMap<String, TaskSpec>,
}

impl TaskRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TaskRegistry::default()
    }

    /// Register (or replace) a task under `name`.
    pub fn register(&mut self, name: impl Into<String>, spec: TaskSpec) -> &mut Self {
        self.tasks.insert(name.into(), spec);
        self
    }

    /// Look a task up by name.
    pub fn get(&self, name: &str) -> Option<&TaskSpec> {
        self.tasks.get(name)
    }

    /// Registered task names, unordered.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tasks.keys().map(String::as_str)
    }

    /// Registered task specs, unordered (the `/metrics` scrape walks these
    /// to aggregate probe-cache counters over the **distinct** databases —
    /// tasks sharing one `Arc<Database>` are deduplicated by pointer).
    pub fn specs(&self) -> impl Iterator<Item = &TaskSpec> {
        self.tasks.values()
    }

    /// Number of registered tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Build the request a submit frame describes: the named spec with the
    /// frame's serving overrides applied. `None` when the task name is
    /// unknown.
    pub fn build_request(&self, frame: &SubmitWire) -> Option<SynthesisRequest> {
        let spec = self.get(&frame.task)?;
        let mut config = spec.config.clone();
        if let Some(max) = frame.max_candidates {
            config.max_candidates = max;
        }
        let mut request =
            SynthesisRequest::new(Arc::clone(&spec.db), spec.nlq.clone(), Arc::clone(&spec.model))
                .with_config(config);
        if let Some(tsq) = &spec.tsq {
            request = request.with_tsq(tsq.clone());
        }
        if let Some(priority) = frame.priority {
            request = request.with_priority(priority);
        }
        if let Some(deadline_ms) = frame.deadline_ms {
            request = request.with_deadline(std::time::Duration::from_millis(deadline_ms));
        }
        Some(request)
    }
}

impl std::fmt::Debug for TaskRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.names().collect();
        names.sort_unstable();
        f.debug_struct("TaskRegistry").field("tasks", &names).finish()
    }
}
