//! # duoquest-net
//!
//! The dependency-free TCP serving front for the Duoquest synthesis
//! service: a hand-rolled HTTP/1.1 edge (no async runtime, no HTTP crate)
//! that exposes the in-process [`SynthesisService`] over real sockets with
//! **streamed** candidate delivery.
//!
//! ```text
//!  client ──POST /submit──► acceptor thread ──► connection thread
//!                                                    │ submit_with_observer
//!                                                    ▼
//!                       pool workers ──candidate──► bounded Outbox
//!                                                    │ pop + chunked write
//!                                                    ▼
//!                                     NDJSON events over one response
//! ```
//!
//! Three routes, all speaking the `duoquest_service::json` wire dialect:
//!
//! * `POST /submit` — admit a named task; the response is a chunked NDJSON
//!   stream of `accepted` / `candidate` / `done` events, candidates
//!   delivered **as they are emitted** (see [`wire`]).
//! * `POST /cancel` — cancel a request by its service id, from any
//!   connection.
//! * `GET /stats` — live [`ServiceStats`](duoquest_service::ServiceStats)
//!   JSON wrapped with the net front's own counters.
//!
//! **Backpressure feeds admission.** Each connection owns a bounded
//! [`Outbox`](outbox::Outbox) that the engine-side observer pushes into: a
//! client that stops reading fills the kernel socket buffer, then stalls
//! the writer (bounded by a write timeout), then fills the outbox — at
//! which point the observer returns `false` and the service **cancels the
//! run** (`shed:true` on the terminal event). A disconnected client is
//! detected by write failure or an EOF probe and reaps its session exactly
//! like a dropped in-process [`Ticket`](duoquest_service::Ticket) — slots
//! free, queued work promotes, nothing leaks. `docs/NET.md` walks the full
//! contract.
//!
//! Threading: one acceptor thread plus one small-stack thread per **open
//! connection** (I/O-bound; requests themselves stay thread-free
//! scheduler-driven sessions). A thousand idle streaming connections cost
//! a thousand parked threads and zero engine threads — the load-generator
//! example (`examples/net_load.rs`) drives exactly that shape.

#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod http;
pub mod outbox;
mod registry;
pub mod wire;

pub use registry::{TaskRegistry, TaskSpec};

// The wire dialect's reader/escaper, re-exported so clients of the front
// can parse event lines without depending on `duoquest-service` directly.
pub use duoquest_service::json;

use duoquest_service::SynthesisService;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs of the TCP front.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bound on each connection's outbox, in event lines. When a slow
    /// client lets the queue hit this bound the run is shed (cancelled)
    /// rather than buffered without limit.
    pub outbox_capacity: usize,
    /// Socket write timeout. A write stalled this long (client wedged with
    /// full kernel buffers) counts as a disconnect and cancels the run.
    pub write_timeout: Duration,
    /// Socket read timeout while parsing a request head/body.
    pub read_timeout: Duration,
    /// Stack size of per-connection threads. Connection threads only do
    /// I/O and string shuffling, so the default stays far below the Rust
    /// default thread stack — what lets 1k+ concurrent connections fit
    /// comfortably.
    pub conn_stack_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            outbox_capacity: 256,
            write_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            conn_stack_bytes: 128 * 1024,
        }
    }
}

/// The net front's own counters, served alongside the service stats.
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Connections accepted since bind.
    pub accepted: AtomicU64,
    /// Currently open connections (gauge).
    pub open: AtomicUsize,
    /// Requests admitted through `/submit`.
    pub submits: AtomicU64,
    /// Submit streams that reached their terminal `done` event.
    pub completed: AtomicU64,
    /// Requests refused at admission (HTTP 503).
    pub admission_shed: AtomicU64,
    /// Runs cut because a connection's outbox overflowed (slow reader).
    pub overflow_shed: AtomicU64,
    /// Runs cut because the client disconnected or wedged mid-stream.
    pub disconnects: AtomicU64,
    /// Successful `POST /cancel` hits.
    pub remote_cancels: AtomicU64,
    /// Requests rejected before admission (bad frame, unknown task …).
    pub bad_requests: AtomicU64,
}

impl NetMetrics {
    /// Render as a JSON object (the `"net"` section of `GET /stats`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"open\":{},\"submits\":{},\"completed\":{},\
             \"admission_shed\":{},\"overflow_shed\":{},\"disconnects\":{},\
             \"remote_cancels\":{},\"bad_requests\":{}}}",
            self.accepted.load(Ordering::Relaxed),
            self.open.load(Ordering::Relaxed),
            self.submits.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.admission_shed.load(Ordering::Relaxed),
            self.overflow_shed.load(Ordering::Relaxed),
            self.disconnects.load(Ordering::Relaxed),
            self.remote_cancels.load(Ordering::Relaxed),
            self.bad_requests.load(Ordering::Relaxed),
        )
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
pub(crate) struct ServerCtx {
    pub(crate) service: Arc<SynthesisService>,
    pub(crate) registry: TaskRegistry,
    pub(crate) cfg: NetConfig,
    pub(crate) metrics: NetMetrics,
    pub(crate) shutdown: AtomicBool,
}

impl ServerCtx {
    /// The `GET /stats` body: live service stats plus net counters.
    pub(crate) fn stats_json(&self) -> String {
        format!(
            "{{\"service\":{},\"net\":{}}}\n",
            self.service.stats().to_json(),
            self.metrics.to_json()
        )
    }
}

/// A bound, accepting TCP front over one [`SynthesisService`].
///
/// Bind with [`NetServer::bind`]; the acceptor runs until the server is
/// shut down (explicitly or on drop). Shutdown cancels in-flight streams'
/// runs and waits briefly for connection threads to drain.
pub struct NetServer {
    ctx: Arc<ServerCtx>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port — [`NetServer::addr`]
    /// reports the actual one) and start accepting.
    pub fn bind(
        addr: &str,
        service: Arc<SynthesisService>,
        registry: TaskRegistry,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let ctx = Arc::new(ServerCtx {
            service,
            registry,
            cfg,
            metrics: NetMetrics::default(),
            shutdown: AtomicBool::new(false),
        });
        let acceptor_ctx = Arc::clone(&ctx);
        let acceptor = thread::Builder::new()
            .name("duoquest-net-acceptor".into())
            .spawn(move || accept_loop(listener, acceptor_ctx))
            .expect("spawning the acceptor thread");
        Ok(NetServer { ctx, local_addr, acceptor: Some(acceptor) })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The net front's counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.ctx.metrics
    }

    /// Currently open connections.
    pub fn open_connections(&self) -> usize {
        self.ctx.metrics.open.load(Ordering::Relaxed)
    }

    /// The `GET /stats` body, as served (for in-process scraping).
    pub fn stats_json(&self) -> String {
        self.ctx.stats_json()
    }

    /// Stop accepting, cancel in-flight streams, and wait up to `grace`
    /// for connection threads to drain. Idempotent.
    pub fn shutdown(&mut self, grace: Duration) {
        if self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let deadline = Instant::now() + grace;
        while self.open_connections() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(5));
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.local_addr)
            .field("open_connections", &self.open_connections())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) if ctx.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        ctx.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        ctx.metrics.open.fetch_add(1, Ordering::Relaxed);
        let conn_ctx = Arc::clone(&ctx);
        let spawned = thread::Builder::new()
            .name("duoquest-net-conn".into())
            .stack_size(ctx.cfg.conn_stack_bytes)
            .spawn(move || {
                // The gauge decrements however the handler exits; handler
                // errors resolve into closed sockets, not unwinding, but a
                // guard keeps the gauge honest even against a bug.
                struct OpenGuard<'a>(&'a AtomicUsize);
                impl Drop for OpenGuard<'_> {
                    fn drop(&mut self) {
                        self.0.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                let _guard = OpenGuard(&conn_ctx.metrics.open);
                conn::handle(stream, Arc::clone(&conn_ctx));
            });
        if spawned.is_err() {
            // Thread exhaustion: shed the connection instead of dying.
            ctx.metrics.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}
