//! # duoquest-net
//!
//! The dependency-free TCP serving front for the Duoquest synthesis
//! service: a hand-rolled HTTP/1.1 edge (no async runtime, no HTTP crate)
//! that exposes the in-process [`SynthesisService`] over real sockets with
//! **streamed** candidate delivery.
//!
//! ```text
//!  client ──POST /submit──► acceptor thread ──► connection thread
//!                                                    │ submit_with_observer
//!                                                    ▼
//!                       pool workers ──candidate──► bounded Outbox
//!                                                    │ pop + chunked write
//!                                                    ▼
//!                                     NDJSON events over one response
//! ```
//!
//! Five routes (`docs/OBSERVABILITY.md` covers the scraping surface):
//!
//! * `POST /submit` — admit a named task; the response is a chunked NDJSON
//!   stream of `accepted` / `candidate` / `done` events, candidates
//!   delivered **as they are emitted** (see [`wire`]).
//! * `POST /cancel` — cancel a request by its service id, from any
//!   connection.
//! * `GET /stats` — live [`ServiceStats`](duoquest_service::ServiceStats)
//!   JSON wrapped with the net front's own counters, per-route request
//!   counts and server uptime.
//! * `GET /metrics` — the whole stack's counters, gauges and latency
//!   histograms in the Prometheus text format.
//! * `GET /trace/<id>` — a finished request's span timeline as JSON, from
//!   the service's flight recorder.
//!
//! **Backpressure feeds admission.** Each connection owns a bounded
//! [`Outbox`](outbox::Outbox) that the engine-side observer pushes into: a
//! client that stops reading fills the kernel socket buffer, then stalls
//! the writer (bounded by a write timeout), then fills the outbox — at
//! which point the observer returns `false` and the service **cancels the
//! run** (`shed:true` on the terminal event). A disconnected client is
//! detected by write failure or an EOF probe and reaps its session exactly
//! like a dropped in-process [`Ticket`](duoquest_service::Ticket) — slots
//! free, queued work promotes, nothing leaks. `docs/NET.md` walks the full
//! contract.
//!
//! Threading: one acceptor thread plus one small-stack thread per **open
//! connection** (I/O-bound; requests themselves stay thread-free
//! scheduler-driven sessions). A thousand idle streaming connections cost
//! a thousand parked threads and zero engine threads — the load-generator
//! example (`examples/net_load.rs`) drives exactly that shape.

#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod http;
pub mod outbox;
mod registry;
pub mod wire;

pub use registry::{TaskRegistry, TaskSpec};

// The wire dialect's reader/escaper, re-exported so clients of the front
// can parse event lines without depending on `duoquest-service` directly.
pub use duoquest_service::json;

use duoquest_core::SharedClock;
use duoquest_db::{CacheStats, Database};
use duoquest_obs::Exposition;
use duoquest_service::SynthesisService;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs of the TCP front.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bound on each connection's outbox, in event lines. When a slow
    /// client lets the queue hit this bound the run is shed (cancelled)
    /// rather than buffered without limit.
    pub outbox_capacity: usize,
    /// Socket write timeout. A write stalled this long (client wedged with
    /// full kernel buffers) counts as a disconnect and cancels the run.
    pub write_timeout: Duration,
    /// Socket read timeout while parsing a request head/body.
    pub read_timeout: Duration,
    /// Stack size of per-connection threads. Connection threads only do
    /// I/O and string shuffling, so the default stays far below the Rust
    /// default thread stack — what lets 1k+ concurrent connections fit
    /// comfortably.
    pub conn_stack_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            outbox_capacity: 256,
            write_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            conn_stack_bytes: 128 * 1024,
        }
    }
}

/// Per-route request counters: every request whose head parses increments
/// exactly one of these, so their sum is the total routed request count.
#[derive(Debug, Default)]
pub struct RouteCounters {
    /// `GET /stats` hits.
    pub stats: AtomicU64,
    /// `POST /submit` hits (including ones later refused at admission).
    pub submit: AtomicU64,
    /// `POST /cancel` hits.
    pub cancel: AtomicU64,
    /// `GET /metrics` scrapes.
    pub metrics: AtomicU64,
    /// `GET /trace/<id>` fetches.
    pub trace: AtomicU64,
    /// Requests to unknown paths or with the wrong method (404/405).
    pub other: AtomicU64,
}

impl RouteCounters {
    /// Label → current value, in a fixed order (used by both the `/stats`
    /// JSON and the `/metrics` exposition, which keeps the two surfaces'
    /// names aligned by construction).
    pub fn entries(&self) -> [(&'static str, u64); 6] {
        [
            ("stats", self.stats.load(Ordering::Relaxed)),
            ("submit", self.submit.load(Ordering::Relaxed)),
            ("cancel", self.cancel.load(Ordering::Relaxed)),
            ("metrics", self.metrics.load(Ordering::Relaxed)),
            ("trace", self.trace.load(Ordering::Relaxed)),
            ("other", self.other.load(Ordering::Relaxed)),
        ]
    }

    /// Render as a JSON object (the `"routes"` section of `GET /stats`).
    pub fn to_json(&self) -> String {
        let fields = self
            .entries()
            .iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{fields}}}")
    }
}

/// The net front's own counters, served alongside the service stats.
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Connections accepted since bind.
    pub accepted: AtomicU64,
    /// Currently open connections (gauge).
    pub open: AtomicUsize,
    /// Requests admitted through `/submit`.
    pub submits: AtomicU64,
    /// Submit streams that reached their terminal `done` event.
    pub completed: AtomicU64,
    /// Requests refused at admission (HTTP 503).
    pub admission_shed: AtomicU64,
    /// Runs cut because a connection's outbox overflowed (slow reader).
    pub overflow_shed: AtomicU64,
    /// Runs cut because the client disconnected or wedged mid-stream.
    pub disconnects: AtomicU64,
    /// Successful `POST /cancel` hits.
    pub remote_cancels: AtomicU64,
    /// Requests rejected before admission (bad frame, unknown task …).
    pub bad_requests: AtomicU64,
    /// Per-route request counts.
    pub routes: RouteCounters,
}

impl NetMetrics {
    /// Render as a JSON object (the `"net"` section of `GET /stats`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"open\":{},\"submits\":{},\"completed\":{},\
             \"admission_shed\":{},\"overflow_shed\":{},\"disconnects\":{},\
             \"remote_cancels\":{},\"bad_requests\":{}}}",
            self.accepted.load(Ordering::Relaxed),
            self.open.load(Ordering::Relaxed),
            self.submits.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.admission_shed.load(Ordering::Relaxed),
            self.overflow_shed.load(Ordering::Relaxed),
            self.disconnects.load(Ordering::Relaxed),
            self.remote_cancels.load(Ordering::Relaxed),
            self.bad_requests.load(Ordering::Relaxed),
        )
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
pub(crate) struct ServerCtx {
    pub(crate) service: Arc<SynthesisService>,
    pub(crate) registry: TaskRegistry,
    pub(crate) cfg: NetConfig,
    pub(crate) metrics: NetMetrics,
    pub(crate) shutdown: AtomicBool,
    /// The service clock — uptime is measured on it, so a simulated run
    /// reports simulated uptime (no real-time leak into the stats surface).
    pub(crate) clock: SharedClock,
    /// The clock's reading when the server bound its listener.
    pub(crate) started: Instant,
}

impl ServerCtx {
    /// Server uptime on the service clock (virtual under a `SimClock`).
    pub(crate) fn uptime(&self) -> Duration {
        self.clock.now().saturating_duration_since(self.started)
    }

    /// The `GET /stats` body: live service stats, net counters, per-route
    /// request counts, and the server's uptime in microseconds.
    pub(crate) fn stats_json(&self) -> String {
        format!(
            "{{\"service\":{},\"net\":{},\"routes\":{},\"uptime_us\":{}}}\n",
            self.service.stats().to_json(),
            self.metrics.to_json(),
            self.metrics.routes.to_json(),
            self.uptime().as_micros(),
        )
    }

    /// The `GET /metrics` body: the whole stack's metric families in the
    /// Prometheus text format — service counters/histograms (via
    /// [`SynthesisService::render_metrics`]), the net front's counters and
    /// per-route counts, uptime, and probe-cache counters aggregated over
    /// the registry's **distinct** databases (tasks sharing one
    /// `Arc<Database>` are deduplicated by pointer, so shared caches are
    /// not double-counted).
    pub(crate) fn metrics_text(&self) -> String {
        let mut expo = Exposition::new();
        self.service.render_metrics(&mut expo);
        let m = &self.metrics;
        expo.counter(
            "duoquest_net_connections_accepted_total",
            "Connections accepted since bind.",
            &[],
            m.accepted.load(Ordering::Relaxed),
        );
        expo.gauge(
            "duoquest_net_connections_open",
            "Currently open connections.",
            &[],
            m.open.load(Ordering::Relaxed) as u64,
        );
        expo.counter(
            "duoquest_net_submits_total",
            "Requests admitted through POST /submit.",
            &[],
            m.submits.load(Ordering::Relaxed),
        );
        expo.counter(
            "duoquest_net_streams_completed_total",
            "Submit streams that reached their terminal done event.",
            &[],
            m.completed.load(Ordering::Relaxed),
        );
        expo.counter(
            "duoquest_net_admission_shed_total",
            "Requests refused at admission (HTTP 503).",
            &[],
            m.admission_shed.load(Ordering::Relaxed),
        );
        expo.counter(
            "duoquest_net_overflow_shed_total",
            "Runs cut because a connection outbox overflowed (slow reader).",
            &[],
            m.overflow_shed.load(Ordering::Relaxed),
        );
        expo.counter(
            "duoquest_net_disconnects_total",
            "Runs cut because the client disconnected or wedged mid-stream.",
            &[],
            m.disconnects.load(Ordering::Relaxed),
        );
        expo.counter(
            "duoquest_net_remote_cancels_total",
            "Successful POST /cancel hits.",
            &[],
            m.remote_cancels.load(Ordering::Relaxed),
        );
        expo.counter(
            "duoquest_net_bad_requests_total",
            "Requests rejected before admission (bad frame, unknown task).",
            &[],
            m.bad_requests.load(Ordering::Relaxed),
        );
        for (route, value) in m.routes.entries() {
            expo.counter(
                "duoquest_net_requests_total",
                "HTTP requests by route.",
                &[("route", route)],
                value,
            );
        }
        expo.gauge(
            "duoquest_net_uptime_us",
            "Server uptime in microseconds, on the service clock.",
            &[],
            self.uptime().as_micros() as u64,
        );
        let mut seen: Vec<*const Database> = Vec::new();
        let mut cache = CacheStats::default();
        for spec in self.registry.specs() {
            let ptr = Arc::as_ptr(&spec.db);
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            let stats = spec.db.cache_stats();
            cache.hits += stats.hits;
            cache.misses += stats.misses;
            cache.bytes += stats.bytes;
            cache.entries += stats.entries;
            cache.rotations += stats.rotations;
            cache.single_flight_lookups += stats.single_flight_lookups;
            cache.single_flight_hits += stats.single_flight_hits;
            cache.single_flight_leaders += stats.single_flight_leaders;
        }
        expo.counter(
            "duoquest_db_probe_cache_hits_total",
            "Probes answered from the probe cache, over distinct databases.",
            &[],
            cache.hits,
        );
        expo.counter(
            "duoquest_db_probe_cache_misses_total",
            "Probes that had to run the executor, over distinct databases.",
            &[],
            cache.misses,
        );
        expo.gauge(
            "duoquest_db_probe_cache_bytes",
            "Estimated bytes of cached probe results currently retained.",
            &[],
            cache.bytes,
        );
        expo.gauge(
            "duoquest_db_probe_cache_entries",
            "Cached probe entries currently retained.",
            &[],
            cache.entries,
        );
        expo.counter(
            "duoquest_db_probe_cache_rotations_total",
            "Probe-cache segment rotations (generations aged out).",
            &[],
            cache.rotations,
        );
        expo.counter(
            "duoquest_db_single_flight_lookups_total",
            "In-flight probe table lookups (cache misses that consulted the \
             single-flight table), over distinct databases.",
            &[],
            cache.single_flight_lookups,
        );
        expo.counter(
            "duoquest_db_single_flight_hits_total",
            "Probes served by waiting on another session's identical in-flight \
             execution, over distinct databases.",
            &[],
            cache.single_flight_hits,
        );
        expo.counter(
            "duoquest_db_single_flight_leaders_total",
            "Probes elected leader of their single-flight slot (ran the \
             executor for every waiter), over distinct databases.",
            &[],
            cache.single_flight_leaders,
        );
        expo.finish()
    }
}

/// A bound, accepting TCP front over one [`SynthesisService`].
///
/// Bind with [`NetServer::bind`]; the acceptor runs until the server is
/// shut down (explicitly or on drop). Shutdown cancels in-flight streams'
/// runs and waits briefly for connection threads to drain.
pub struct NetServer {
    ctx: Arc<ServerCtx>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port — [`NetServer::addr`]
    /// reports the actual one) and start accepting.
    pub fn bind(
        addr: &str,
        service: Arc<SynthesisService>,
        registry: TaskRegistry,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let clock = service.clock();
        let started = clock.now();
        let ctx = Arc::new(ServerCtx {
            service,
            registry,
            cfg,
            metrics: NetMetrics::default(),
            shutdown: AtomicBool::new(false),
            clock,
            started,
        });
        let acceptor_ctx = Arc::clone(&ctx);
        let acceptor = thread::Builder::new()
            .name("duoquest-net-acceptor".into())
            .spawn(move || accept_loop(listener, acceptor_ctx))
            .expect("spawning the acceptor thread");
        Ok(NetServer { ctx, local_addr, acceptor: Some(acceptor) })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The net front's counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.ctx.metrics
    }

    /// Currently open connections.
    pub fn open_connections(&self) -> usize {
        self.ctx.metrics.open.load(Ordering::Relaxed)
    }

    /// The `GET /stats` body, as served (for in-process scraping).
    pub fn stats_json(&self) -> String {
        self.ctx.stats_json()
    }

    /// The `GET /metrics` body, as served (Prometheus text format).
    pub fn metrics_text(&self) -> String {
        self.ctx.metrics_text()
    }

    /// Stop accepting, cancel in-flight streams, and wait up to `grace`
    /// for connection threads to drain. Idempotent.
    pub fn shutdown(&mut self, grace: Duration) {
        if self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let deadline = Instant::now() + grace;
        while self.open_connections() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(5));
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.local_addr)
            .field("open_connections", &self.open_connections())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) if ctx.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        ctx.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        ctx.metrics.open.fetch_add(1, Ordering::Relaxed);
        let conn_ctx = Arc::clone(&ctx);
        let spawned = thread::Builder::new()
            .name("duoquest-net-conn".into())
            .stack_size(ctx.cfg.conn_stack_bytes)
            .spawn(move || {
                // The gauge decrements however the handler exits; handler
                // errors resolve into closed sockets, not unwinding, but a
                // guard keeps the gauge honest even against a bug.
                struct OpenGuard<'a>(&'a AtomicUsize);
                impl Drop for OpenGuard<'_> {
                    fn drop(&mut self) {
                        self.0.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                let _guard = OpenGuard(&conn_ctx.metrics.open);
                conn::handle(stream, Arc::clone(&conn_ctx));
            });
        if spawned.is_err() {
            // Thread exhaustion: shed the connection instead of dying.
            ctx.metrics.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}
