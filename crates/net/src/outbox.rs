//! The bounded per-connection outbox: the coupling point between candidate
//! emission (pool workers) and socket delivery (the connection thread).
//!
//! The engine-side observer pushes event lines; the connection thread pops
//! and writes them. The queue is **bounded**: when a client reads slower
//! than the engine emits and the kernel's socket buffer plus this queue
//! both fill, [`Outbox::push`] fails, the observer returns `false`, and the
//! service cancels the run — backpressure reaches admission control instead
//! of accumulating unbounded memory. The overflow is latched so the
//! connection thread can report `shed:true` in its terminal event.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why an [`Outbox::push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the overflow flag is now latched.
    Full,
    /// The outbox was closed — the consumer is gone, nothing to shed.
    Closed,
}

/// What [`Outbox::pop_wait`] observed.
#[derive(Debug, PartialEq, Eq)]
pub enum Popped {
    /// An event line, in push order.
    Line(String),
    /// Nothing arrived within the wait; the outbox is still open.
    Empty,
    /// The outbox was closed and fully drained — nothing more will come.
    Closed,
}

struct State {
    lines: VecDeque<String>,
    closed: bool,
    overflowed: bool,
}

/// A bounded MPSC line queue with a latched overflow flag. See the module
/// docs for its role in the backpressure cascade.
pub struct Outbox {
    state: Mutex<State>,
    available: Condvar,
    capacity: usize,
}

impl Outbox {
    /// An open outbox holding at most `capacity` lines (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Outbox {
            state: Mutex::new(State { lines: VecDeque::new(), closed: false, overflowed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Append a line. Fails — latching the overflow flag — when the queue
    /// is full, and fails without latching when the outbox was closed (the
    /// consumer is gone; nothing to shed, the run is already being torn
    /// down). Never blocks: this runs on a shared pool worker.
    pub fn push(&self, line: String) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("outbox poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.lines.len() >= self.capacity {
            state.overflowed = true;
            return Err(PushError::Full);
        }
        state.lines.push_back(line);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Pop the next line, waiting up to `wait` for one to arrive.
    pub fn pop_wait(&self, wait: Duration) -> Popped {
        let mut state = self.state.lock().expect("outbox poisoned");
        if let Some(line) = state.lines.pop_front() {
            return Popped::Line(line);
        }
        if state.closed {
            return Popped::Closed;
        }
        let (mut state, _timeout) =
            self.available.wait_timeout(state, wait).expect("outbox poisoned");
        match state.lines.pop_front() {
            Some(line) => Popped::Line(line),
            None if state.closed => Popped::Closed,
            None => Popped::Empty,
        }
    }

    /// Drain whatever is queued right now, without waiting.
    pub fn drain(&self) -> Vec<String> {
        let mut state = self.state.lock().expect("outbox poisoned");
        state.lines.drain(..).collect()
    }

    /// Close the outbox: pushes fail from now on; pops drain the remainder
    /// then report [`Popped::Closed`].
    pub fn close(&self) {
        self.state.lock().expect("outbox poisoned").closed = true;
        self.available.notify_all();
    }

    /// Whether a push ever overflowed the bound (latched).
    pub fn overflowed(&self) -> bool {
        self.state.lock().expect("outbox poisoned").overflowed
    }

    /// Lines currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("outbox poisoned").lines.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_order() {
        let outbox = Outbox::new(8);
        outbox.push("a".into()).unwrap();
        outbox.push("b".into()).unwrap();
        assert_eq!(outbox.pop_wait(Duration::ZERO), Popped::Line("a".into()));
        assert_eq!(outbox.pop_wait(Duration::ZERO), Popped::Line("b".into()));
        assert_eq!(outbox.pop_wait(Duration::ZERO), Popped::Empty);
    }

    #[test]
    fn overflow_fails_the_push_and_latches() {
        let outbox = Outbox::new(2);
        outbox.push("a".into()).unwrap();
        outbox.push("b".into()).unwrap();
        assert!(!outbox.overflowed());
        assert!(outbox.push("c".into()).is_err(), "push past the bound must fail");
        assert!(outbox.overflowed(), "overflow must latch");
        // The queued prefix is intact: backpressure sheds the tail, never
        // corrupts what was already accepted.
        assert_eq!(outbox.drain(), vec!["a".to_string(), "b".to_string()]);
        assert!(outbox.overflowed(), "drain does not clear the latch");
    }

    #[test]
    fn close_fails_pushes_without_latching_and_drains_pops() {
        let outbox = Outbox::new(4);
        outbox.push("a".into()).unwrap();
        outbox.close();
        assert!(outbox.push("b".into()).is_err());
        assert!(!outbox.overflowed(), "a closed outbox is not an overflow");
        assert_eq!(outbox.pop_wait(Duration::ZERO), Popped::Line("a".into()));
        assert_eq!(outbox.pop_wait(Duration::ZERO), Popped::Closed);
    }

    #[test]
    fn pop_wait_wakes_on_cross_thread_push() {
        let outbox = Arc::new(Outbox::new(4));
        let producer = Arc::clone(&outbox);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            producer.push("late".into()).unwrap();
        });
        assert_eq!(
            outbox.pop_wait(Duration::from_secs(5)),
            Popped::Line("late".into()),
            "the condvar must deliver the push within the wait"
        );
        handle.join().unwrap();
    }
}
