//! Socket-level lifecycle tests: the connection/session coupling contract,
//! driven through real TCP sockets against a real service.
//!
//! * streamed results are **byte-identical** to in-process submission;
//! * `/cancel`, deadlines and client disconnects all resolve the session
//!   and leave the pool idle (no leaked admission slot);
//! * a stalled client cannot block other connections;
//! * malformed input at every layer gets an HTTP error, never a panic.

use duoquest_core::DuoquestConfig;
use duoquest_db::{CmpOp, ColumnDef, Database, Schema, TableDef, Value};
use duoquest_net::json::Json;
use duoquest_net::{client, wire, NetConfig, NetServer, TaskRegistry, TaskSpec};
use duoquest_nlq::{
    Choice, GuidanceContext, GuidanceModel, Literal, Nlq, NoisyOracleGuidance, OracleConfig,
};
use duoquest_service::{ServiceConfig, SynthesisService};
use duoquest_sql::QueryBuilder;
use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

fn movie_db() -> Arc<Database> {
    let mut schema = Schema::new("net-test");
    schema.add_table(TableDef::new(
        "movies",
        vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
        Some(0),
    ));
    let mut db = Database::new(schema).unwrap();
    db.insert_all(
        "movies",
        vec![
            vec![Value::int(1), Value::text("Heat"), Value::int(1995)],
            vec![Value::int(2), Value::text("Forrest Gump"), Value::int(1994)],
            vec![Value::int(3), Value::text("Up"), Value::int(2009)],
        ],
    )
    .unwrap();
    db.rebuild_index();
    db.into_shared()
}

/// A guidance wrapper that sleeps per score call — turns the tiny fixture
/// into a run long enough to cancel, expire or abandon mid-flight.
struct SlowGuidance {
    inner: Arc<dyn GuidanceModel>,
    delay: Duration,
}

impl GuidanceModel for SlowGuidance {
    fn score(&self, ctx: &GuidanceContext<'_>, candidates: &[Choice]) -> Vec<f64> {
        std::thread::sleep(self.delay);
        self.inner.score(ctx, candidates)
    }

    fn name(&self) -> &str {
        "net-test-slow"
    }
}

fn task_spec(db: &Arc<Database>, slow: Option<Duration>, max_candidates: usize) -> TaskSpec {
    let gold = QueryBuilder::new(db.schema())
        .select("movies.name")
        .filter("movies.year", CmpOp::Lt, 1995)
        .build()
        .unwrap();
    let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
    let mut model: Arc<dyn GuidanceModel> =
        Arc::new(NoisyOracleGuidance::with_config(gold, 3, OracleConfig::perfect()));
    if let Some(delay) = slow {
        model = Arc::new(SlowGuidance { inner: model, delay });
    }
    let mut config = DuoquestConfig::fast();
    config.max_candidates = max_candidates;
    config.time_budget = None;
    config.workers = 1;
    TaskSpec { db: Arc::clone(db), nlq, model, tsq: None, config }
}

fn serve(service_cfg: ServiceConfig, net_cfg: NetConfig) -> (NetServer, Arc<SynthesisService>) {
    let db = movie_db();
    let service = Arc::new(SynthesisService::new(service_cfg));
    let mut registry = TaskRegistry::new();
    registry.register("fast", task_spec(&db, None, 6));
    registry.register("slow", task_spec(&db, Some(Duration::from_millis(10)), 500));
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), registry, net_cfg)
        .expect("bind ephemeral port");
    (server, service)
}

fn wait_for_idle(service: &SynthesisService, grace: Duration) {
    let deadline = Instant::now() + grace;
    loop {
        let stats = service.stats();
        if stats.live_sessions == 0 && stats.queued_requests == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "service never drained: live={}, queued={}",
            stats.live_sessions,
            stats.queued_requests
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn event_of(line: &str) -> (String, Json) {
    let json = Json::parse(line).unwrap_or_else(|e| panic!("unparseable event {line:?}: {e}"));
    let event = json.get("event").and_then(Json::as_str).expect("event field").to_string();
    (event, json)
}

#[test]
fn streamed_results_are_byte_identical_to_in_process_submission() {
    let (server, service) = serve(ServiceConfig::default(), NetConfig::default());

    // In-process reference: same task spec, candidates rendered with the
    // same wire renderer the server uses.
    let db = movie_db();
    let spec = task_spec(&db, None, 6);
    let request = duoquest_service::SynthesisRequest::new(
        Arc::clone(&spec.db),
        spec.nlq.clone(),
        Arc::clone(&spec.model),
    )
    .with_config(spec.config.clone());
    let reference: Vec<String> = service
        .submit(request)
        .unwrap()
        .enumerate()
        .map(|(index, c)| wire::candidate_line(index, &c, spec.db.schema()).trim_end().to_string())
        .collect();
    assert!(!reference.is_empty(), "the fixture task must emit candidates");

    let body = wire::SubmitWire::task("fast").to_json();
    let response = client::request(server.addr(), "POST", "/submit", Some(&body), TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    let lines: Vec<&str> = response.lines().collect();
    let (first_event, first) = event_of(lines[0]);
    assert_eq!(first_event, "accepted");
    assert!(first.get("id").and_then(Json::as_u64).is_some());
    let (last_event, last) = event_of(lines[lines.len() - 1]);
    assert_eq!(last_event, "done");
    assert_eq!(last.get("status").and_then(Json::as_str), Some("completed"));
    assert_eq!(last.get("shed").and_then(Json::as_bool), Some(false));
    assert!(last.get("queue_wait_us").and_then(Json::as_u64).is_some());

    let candidates: Vec<String> = lines[1..lines.len() - 1].iter().map(|l| l.to_string()).collect();
    assert_eq!(candidates, reference, "socket stream must be byte-identical to in-process");
    assert_eq!(
        last.get("candidates").and_then(Json::as_u64),
        Some(candidates.len() as u64),
        "the done event counts the delivered candidates"
    );
    wait_for_idle(&service, TIMEOUT);
}

#[test]
fn remote_cancel_stops_a_running_request() {
    let (server, service) = serve(ServiceConfig::default(), NetConfig::default());

    // Start a slow streaming submit on a raw socket so we can observe the
    // accepted id while the run is still going.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    let body = wire::SubmitWire::task("slow").to_json();
    client::send_request(&mut stream, "POST", "/submit", Some(&body)).unwrap();

    let mut decoder = client::ResponseDecoder::new();
    let mut buf = [0u8; 4096];
    let mut id = None;
    let mut done_status = None;
    while !decoder.is_done() {
        let n = stream.read(&mut buf).expect("stream read");
        assert!(n > 0 || decoder.is_done(), "server closed the stream without a terminal event");
        decoder.feed(&buf[..n]);
        for line in decoder.take_lines() {
            let (event, json) = event_of(&line);
            match event.as_str() {
                "accepted" => {
                    let accepted_id = json.get("id").and_then(Json::as_u64).unwrap();
                    id = Some(accepted_id);
                    // Cancel from a *different* connection, by id.
                    let cancel = client::request(
                        server.addr(),
                        "POST",
                        "/cancel",
                        Some(&format!("{{\"id\":{accepted_id}}}")),
                        TIMEOUT,
                    )
                    .unwrap();
                    assert_eq!(cancel.status, 200);
                    let json = Json::parse(cancel.body.trim()).unwrap();
                    assert_eq!(json.get("cancelled").and_then(Json::as_bool), Some(true));
                }
                "done" => {
                    done_status = json.get("status").and_then(Json::as_str).map(str::to_string);
                }
                _ => {}
            }
        }
    }
    assert!(id.is_some(), "never saw the accepted event");
    assert_eq!(done_status.as_deref(), Some("cancelled"));
    assert_eq!(server.metrics().remote_cancels.load(std::sync::atomic::Ordering::Relaxed), 1);
    wait_for_idle(&service, TIMEOUT);
}

#[test]
fn deadline_expires_through_the_socket() {
    let (server, service) = serve(
        ServiceConfig { workers: 1, max_live_sessions: 1, max_queued: 4, ..Default::default() },
        NetConfig::default(),
    );
    // Occupy the single live slot with a slow run (abandoned at test end),
    // then submit a queued request with a deadline far shorter than the
    // blocker: it must expire while queued and say so on the wire.
    let mut blocker = TcpStream::connect(server.addr()).unwrap();
    blocker.set_read_timeout(Some(TIMEOUT)).unwrap();
    client::send_request(
        &mut blocker,
        "POST",
        "/submit",
        Some(&wire::SubmitWire::task("slow").to_json()),
    )
    .unwrap();
    // Wait until the blocker is actually live before submitting the doomed
    // request (its accepted event proves admission).
    let mut decoder = client::ResponseDecoder::new();
    let mut buf = [0u8; 1024];
    'outer: loop {
        let n = blocker.read(&mut buf).unwrap();
        decoder.feed(&buf[..n]);
        for line in decoder.take_lines() {
            if line.contains("accepted") {
                break 'outer;
            }
        }
    }

    let mut frame = wire::SubmitWire::task("fast");
    frame.deadline_ms = Some(40);
    let response =
        client::request(server.addr(), "POST", "/submit", Some(&frame.to_json()), TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    let lines: Vec<&str> = response.lines().collect();
    let (event, done) = event_of(lines[lines.len() - 1]);
    assert_eq!(event, "done");
    assert_eq!(done.get("status").and_then(Json::as_str), Some("deadline_exceeded"));
    drop(blocker); // disconnect reaps the slow run
    wait_for_idle(&service, TIMEOUT);
}

#[test]
fn disconnect_reaps_the_session_and_pool_goes_idle() {
    let (server, service) = serve(ServiceConfig::default(), NetConfig::default());
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        client::send_request(
            &mut stream,
            "POST",
            "/submit",
            Some(&wire::SubmitWire::task("slow").to_json()),
        )
        .unwrap();
        // Read just the accepted event so the run is definitely live, then
        // drop the socket mid-stream.
        let mut decoder = client::ResponseDecoder::new();
        let mut buf = [0u8; 1024];
        'outer: loop {
            let n = stream.read(&mut buf).unwrap();
            decoder.feed(&buf[..n]);
            for line in decoder.take_lines() {
                if line.contains("accepted") {
                    break 'outer;
                }
            }
        }
    } // socket dropped here

    // The dead client's session must be reaped like a dropped ticket: the
    // pool drains to zero live sessions without any consumer waiting.
    wait_for_idle(&service, TIMEOUT);
    let stats = service.stats();
    let cancelled: u64 = stats.classes.iter().map(|c| c.cancelled).sum();
    assert_eq!(cancelled, 1, "the abandoned run must resolve as cancelled");

    // And the connection thread must notice and exit.
    let deadline = Instant::now() + TIMEOUT;
    while server.open_connections() > 0 {
        assert!(Instant::now() < deadline, "connection thread leaked after disconnect");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.metrics().disconnects.load(std::sync::atomic::Ordering::Relaxed), 1);
}

#[test]
fn a_stalled_client_does_not_block_other_connections() {
    let (server, service) = serve(
        ServiceConfig { workers: 1, max_live_sessions: 8, max_queued: 8, ..Default::default() },
        NetConfig::default(),
    );
    // The staller submits a slow run and then never reads a byte.
    let mut staller = TcpStream::connect(server.addr()).unwrap();
    client::send_request(
        &mut staller,
        "POST",
        "/submit",
        Some(&wire::SubmitWire::task("slow").to_json()),
    )
    .unwrap();

    // Meanwhile three well-behaved clients complete end to end.
    for _ in 0..3 {
        let response = client::request(
            server.addr(),
            "POST",
            "/submit",
            Some(&wire::SubmitWire::task("fast").to_json()),
            TIMEOUT,
        )
        .unwrap();
        assert_eq!(response.status, 200);
        let lines: Vec<&str> = response.lines().collect();
        let (event, done) = event_of(lines[lines.len() - 1]);
        assert_eq!(event, "done");
        assert_eq!(done.get("status").and_then(Json::as_str), Some("completed"));
    }

    // Disconnect the staller; its slot must free without it ever reading.
    drop(staller);
    wait_for_idle(&service, TIMEOUT);
    let deadline = Instant::now() + TIMEOUT;
    while server.open_connections() > 0 {
        assert!(Instant::now() < deadline, "stalled connection leaked");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn stats_endpoint_serves_live_service_json() {
    let (server, _service) = serve(ServiceConfig::default(), NetConfig::default());
    let before = client::request(server.addr(), "GET", "/stats", None, TIMEOUT).unwrap();
    assert_eq!(before.status, 200);
    let json = Json::parse(before.body.trim()).unwrap();
    assert!(json.get("service").and_then(|s| s.get("live_sessions")).is_some());
    assert!(json.get("net").and_then(|n| n.get("open")).is_some());

    let body = wire::SubmitWire::task("fast").to_json();
    let response = client::request(server.addr(), "POST", "/submit", Some(&body), TIMEOUT).unwrap();
    assert_eq!(response.status, 200);

    let after = client::request(server.addr(), "GET", "/stats", None, TIMEOUT).unwrap();
    let json = Json::parse(after.body.trim()).unwrap();
    let submits = json.get("net").and_then(|n| n.get("submits")).and_then(Json::as_u64);
    assert_eq!(submits, Some(1), "the stats must be live, not a bind-time snapshot");
    let completed = json
        .get("service")
        .and_then(|s| s.get("classes"))
        .and_then(|c| c.get("interactive"))
        .and_then(|i| i.get("completed"))
        .and_then(Json::as_u64);
    assert_eq!(completed, Some(1));
}

/// `GET /metrics` serves a valid Prometheus exposition reflecting live
/// counters and `GET /trace/<id>` serves a completed request's timeline;
/// both reject what they should (malformed id → 400, unknown id → 404,
/// wrong method → 405), and the `/stats` routes object and the
/// exposition's per-route counter agree name for name.
#[test]
fn metrics_and_trace_routes_serve_the_observability_surface() {
    let (server, _service) = serve(ServiceConfig::default(), NetConfig::default());
    let addr = server.addr();

    // One completed request gives both surfaces something to show.
    let body = wire::SubmitWire::task("fast").to_json();
    let response = client::request(addr, "POST", "/submit", Some(&body), TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    let accepted = response.body.lines().next().expect("accepted line");
    let id = Json::parse(accepted)
        .ok()
        .and_then(|j| j.get("id").and_then(Json::as_u64))
        .expect("accepted line carries the request id");

    let scrape = client::request(addr, "GET", "/metrics", None, TIMEOUT).unwrap();
    assert_eq!(scrape.status, 200);
    duoquest_obs::validate_exposition(&scrape.body).expect("well-formed exposition");
    assert!(
        scrape.body.contains("duoquest_requests_submitted_total{class=\"interactive\"} 1"),
        "submitted counter missing: {}",
        scrape.body
    );
    assert!(scrape.body.contains("duoquest_net_requests_total{route=\"submit\"} 1"));
    assert!(scrape.body.contains("duoquest_ttfc_us_bucket"));

    // The resolved request's timeline, served from the flight recorder.
    let trace = client::request(addr, "GET", &format!("/trace/{id}"), None, TIMEOUT).unwrap();
    assert_eq!(trace.status, 200);
    let json = Json::parse(trace.body.trim()).expect("trace JSON parses");
    assert_eq!(json.get("id").and_then(Json::as_u64), Some(id));
    assert!(trace.body.contains("\"request\""), "root span missing: {}", trace.body);
    assert!(trace.body.contains("\"deliver\""), "outbox write span missing: {}", trace.body);

    // Error paths.
    let bad = client::request(addr, "GET", "/trace/not-a-number", None, TIMEOUT).unwrap();
    assert_eq!(bad.status, 400);
    let missing = client::request(addr, "GET", "/trace/424242", None, TIMEOUT).unwrap();
    assert_eq!(missing.status, 404);
    let method = client::request(addr, "POST", "/metrics", None, TIMEOUT).unwrap();
    assert_eq!(method.status, 405);
    let method = client::request(addr, "POST", &format!("/trace/{id}"), None, TIMEOUT).unwrap();
    assert_eq!(method.status, 405);

    // Counter-name audit: every route named by the `/stats` JSON appears as
    // a `route` label on the exposition's request counter, and vice versa —
    // both render from the same `RouteCounters::entries()` table.
    let stats = client::request(addr, "GET", "/stats", None, TIMEOUT).unwrap();
    let json = Json::parse(stats.body.trim()).unwrap();
    let scrape = client::request(addr, "GET", "/metrics", None, TIMEOUT).unwrap();
    for route in ["stats", "submit", "cancel", "metrics", "trace", "other"] {
        assert!(
            json.get("routes").and_then(|r| r.get(route)).is_some(),
            "route {route} missing from /stats"
        );
        assert!(
            scrape.body.contains(&format!("duoquest_net_requests_total{{route=\"{route}\"}}")),
            "route {route} missing from /metrics"
        );
    }
}

#[test]
fn malformed_input_gets_http_errors_not_panics() {
    use std::io::Write;
    let (server, service) = serve(ServiceConfig::default(), NetConfig::default());

    // Unknown path and bad method.
    let r = client::request(server.addr(), "GET", "/nope", None, TIMEOUT).unwrap();
    assert_eq!(r.status, 404);
    let r = client::request(server.addr(), "GET", "/submit", None, TIMEOUT).unwrap();
    assert_eq!(r.status, 405);

    // Broken JSON frames, deep-nesting bomb included.
    for body in ["", "{", "{\"task\":7}", "[1,", &"[".repeat(50_000)] {
        let r = client::request(server.addr(), "POST", "/submit", Some(body), TIMEOUT).unwrap();
        assert_eq!(r.status, 400, "body {:?} must 400", &body[..body.len().min(20)]);
    }

    // Unknown task.
    let r = client::request(
        server.addr(),
        "POST",
        "/submit",
        Some(&wire::SubmitWire::task("no-such-task").to_json()),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(r.status, 404);

    // Cancel without an id, and of an unknown id.
    let r = client::request(server.addr(), "POST", "/cancel", Some("{}"), TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    let r = client::request(server.addr(), "POST", "/cancel", Some("{\"id\":424242}"), TIMEOUT)
        .unwrap();
    assert_eq!(r.status, 200);
    let json = Json::parse(r.body.trim()).unwrap();
    assert_eq!(json.get("cancelled").and_then(Json::as_bool), Some(false));

    // Raw non-HTTP garbage on the socket.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.write_all(b"\x00\x01\x02 utter garbage\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 400"), "garbage must get a 400, got {text:?}");

    // After all that abuse the front still serves.
    let body = wire::SubmitWire::task("fast").to_json();
    let r = client::request(server.addr(), "POST", "/submit", Some(&body), TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    wait_for_idle(&service, TIMEOUT);
}
