//! # duoquest-nlq
//!
//! Natural language query handling and enumeration guidance for the Duoquest
//! reproduction.
//!
//! The crate provides:
//!
//! * [`tokenize`] — NLQ tokenization and normalization;
//! * [`literals`] — literal tagging (quoted text values and numbers), backed by
//!   the database's inverted column index as in the autocomplete interface of
//!   the paper's front end (§4);
//! * [`similarity`] — lexical similarity between NLQ tokens and schema names;
//! * [`guidance`] — the [`GuidanceModel`] trait: the
//!   pluggable enumeration guidance interface described in §3.3.5 of the paper
//!   (any model producing per-decision scores in `[0, 1]` that satisfy
//!   Property 1 can drive GPQE);
//! * [`heuristic`] — a purely lexical guidance model usable without any
//!   training data;
//! * [`oracle`] — a calibrated noisy-oracle guidance model that substitutes for
//!   the pre-trained SyntaxSQLNet network of the paper's prototype (see
//!   DESIGN.md §3 for the substitution argument).

pub mod guidance;
pub mod heuristic;
pub mod literals;
pub mod oracle;
pub mod similarity;
pub mod tokenize;

pub use guidance::{Choice, GuidanceContext, GuidanceModel, HavingChoice, OrderChoice};
pub use heuristic::HeuristicGuidance;
pub use literals::{candidate_columns, extract_literals, literal_mentioned, Literal, LiteralKind};
pub use oracle::{NoisyOracleGuidance, OracleConfig};
pub use tokenize::Nlq;
