//! A calibrated noisy-oracle guidance model.
//!
//! The paper's prototype drives GPQE with SyntaxSQLNet, a neural model
//! pre-trained on the Spider training set. Training and running that network is
//! out of scope for this self-contained reproduction (see DESIGN.md §3), so the
//! evaluation harness substitutes this model: it knows the task's gold query
//! and, for every inference decision, ranks the gold-consistent candidate first
//! with a per-module probability (the module's "accuracy"). With the default
//! calibration the *NLI-only* baseline (no TSQ) lands in the same accuracy
//! region the paper reports for SyntaxSQLNet, and all relative comparisons
//! (Duoquest vs NLI vs PBE, ablations, TSQ detail sweeps) exercise the same
//! code paths as the original system.
//!
//! The model is deterministic: the per-decision randomness is derived from a
//! task seed plus a hash of the candidate set, so repeated runs produce
//! identical results.

use crate::guidance::{Choice, GuidanceContext, GuidanceModel, HavingChoice, OrderChoice};
use duoquest_db::{OrderKey, Predicate, SelectItem, SelectSpec};
use duoquest_sql::{ClauseSet, SelectColumn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Per-module accuracies of the simulated guidance model.
///
/// Each field is the probability that the corresponding module ranks the
/// gold-consistent candidate first at a given decision point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleConfig {
    /// KW module (clause set).
    pub keyword: f64,
    /// COL module in SELECT position.
    pub select_columns: f64,
    /// AGG module.
    pub aggregate: f64,
    /// COL module in WHERE position.
    pub where_columns: f64,
    /// OP module.
    pub operator: f64,
    /// Constant binding.
    pub value: f64,
    /// AND/OR module.
    pub connective: f64,
    /// COL module in GROUP BY position.
    pub group_by: f64,
    /// HAVING module.
    pub having: f64,
    /// DESC/ASC + LIMIT module.
    pub order_by: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        // Calibrated so that the NLI-only baseline reaches roughly the paper's
        // SyntaxSQLNet accuracy band on the synthetic Spider workload
        // (~30% top-1 / ~56% top-10); see EXPERIMENTS.md.
        OracleConfig {
            keyword: 0.86,
            select_columns: 0.66,
            aggregate: 0.88,
            where_columns: 0.74,
            operator: 0.82,
            value: 0.96,
            connective: 0.92,
            group_by: 0.80,
            having: 0.84,
            order_by: 0.84,
        }
    }
}

impl OracleConfig {
    /// A perfect oracle: every module always ranks the gold candidate first.
    /// Useful in unit tests and as an upper bound in ablations.
    pub fn perfect() -> Self {
        OracleConfig {
            keyword: 1.0,
            select_columns: 1.0,
            aggregate: 1.0,
            where_columns: 1.0,
            operator: 1.0,
            value: 1.0,
            connective: 1.0,
            group_by: 1.0,
            having: 1.0,
            order_by: 1.0,
        }
    }

    /// Uniformly scale all module accuracies towards 1.0 (factor > 1) or towards
    /// chance (factor < 1). Used by ablation benches.
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |p: f64| (p * factor).clamp(0.05, 1.0);
        OracleConfig {
            keyword: scale(self.keyword),
            select_columns: scale(self.select_columns),
            aggregate: scale(self.aggregate),
            where_columns: scale(self.where_columns),
            operator: scale(self.operator),
            value: scale(self.value),
            connective: scale(self.connective),
            group_by: scale(self.group_by),
            having: scale(self.having),
            order_by: scale(self.order_by),
        }
    }
}

/// The noisy oracle guidance model for one task (one gold query).
#[derive(Debug, Clone)]
pub struct NoisyOracleGuidance {
    gold: SelectSpec,
    config: OracleConfig,
    seed: u64,
}

impl NoisyOracleGuidance {
    /// Create a model for a task with the default calibration.
    pub fn new(gold: SelectSpec, seed: u64) -> Self {
        NoisyOracleGuidance { gold, config: OracleConfig::default(), seed }
    }

    /// Create a model with an explicit configuration.
    pub fn with_config(gold: SelectSpec, seed: u64, config: OracleConfig) -> Self {
        NoisyOracleGuidance { gold, config, seed }
    }

    /// The gold query the oracle is built around.
    pub fn gold(&self) -> &SelectSpec {
        &self.gold
    }

    fn module_accuracy(&self, choice: &Choice) -> f64 {
        match choice {
            Choice::Clauses(_) => self.config.keyword,
            Choice::SelectColumns(_) => self.config.select_columns,
            Choice::Aggregate { .. } => self.config.aggregate,
            Choice::WhereColumns(_) => self.config.where_columns,
            Choice::Operator { .. } => self.config.operator,
            Choice::PredicateValue { .. } => self.config.value,
            Choice::Connective(_) => self.config.connective,
            Choice::GroupBy(_) => self.config.group_by,
            Choice::Having(_) => self.config.having,
            Choice::OrderBy(_) => self.config.order_by,
        }
    }

    /// Deterministic per-decision RNG. The decision point is identified by the
    /// module (variant of the first candidate), the candidate count and a small
    /// fingerprint of the first candidate — cheap to compute even when a
    /// decision fans out into thousands of candidates.
    fn decision_rng(&self, candidates: &[Choice]) -> StdRng {
        let mut hasher = DefaultHasher::new();
        self.seed.hash(&mut hasher);
        candidates.len().hash(&mut hasher);
        if let Some(first) = candidates.first() {
            std::mem::discriminant(first).hash(&mut hasher);
            match first {
                Choice::Aggregate { column, .. } => format!("{column:?}").hash(&mut hasher),
                Choice::Operator { column, .. } => format!("{column:?}").hash(&mut hasher),
                Choice::PredicateValue { column, op, .. } => {
                    format!("{column:?}{op:?}").hash(&mut hasher)
                }
                _ => {}
            }
        }
        StdRng::seed_from_u64(hasher.finish())
    }

    /// Whether a candidate decision is consistent with the gold query.
    pub fn consistent(&self, choice: &Choice) -> bool {
        match choice {
            Choice::Clauses(cs) => *cs == gold_clauses(&self.gold),
            Choice::SelectColumns(cols) => {
                let mut got: Vec<String> = cols.iter().map(select_column_key).collect();
                let mut want: Vec<String> =
                    self.gold.select.iter().map(gold_select_column_key).collect();
                got.sort();
                want.sort();
                got == want
            }
            Choice::Aggregate { column, agg } => self.gold.select.iter().any(|item| {
                gold_select_column_key(item) == select_column_key(column) && item.agg == *agg
            }),
            Choice::WhereColumns(cols) => {
                let mut got: Vec<_> = cols.clone();
                let mut want: Vec<_> = self.gold.predicates.iter().filter_map(|p| p.col).collect();
                got.sort();
                want.sort();
                got == want
            }
            Choice::Operator { column, op } => {
                self.gold.predicates.iter().any(|p| p.col == Some(*column) && p.op == *op)
            }
            Choice::PredicateValue { column, op, value, value2 } => {
                self.gold.predicates.iter().any(|p| {
                    p.col == Some(*column)
                        && p.op == *op
                        && p.value.sql_eq(value)
                        && match (&p.value2, value2) {
                            (None, None) => true,
                            (Some(a), Some(b)) => a.sql_eq(b),
                            _ => false,
                        }
                })
            }
            Choice::Connective(op) => {
                self.gold.predicates.len() < 2 || *op == self.gold.predicate_op
            }
            Choice::GroupBy(cols) => {
                let mut got = cols.clone();
                let mut want = self.gold.group_by.clone();
                got.sort();
                want.sort();
                got == want
            }
            Choice::Having(h) => match (h, self.gold.having.first()) {
                (None, None) => true,
                (Some(h), Some(g)) => having_matches(h, g),
                _ => false,
            },
            Choice::OrderBy(o) => match (o, &self.gold.order_by) {
                (None, None) => true,
                (Some(o), Some(g)) => {
                    order_key_eq(&o.key, &g.key) && o.desc == g.desc && o.limit == self.gold.limit
                }
                _ => false,
            },
        }
    }
}

fn select_column_key(col: &SelectColumn) -> String {
    match col {
        SelectColumn::Star => "*".to_string(),
        SelectColumn::Column(c) => format!("{c}"),
    }
}

fn gold_select_column_key(item: &SelectItem) -> String {
    match item.col {
        None => "*".to_string(),
        Some(c) => format!("{c}"),
    }
}

fn having_matches(h: &HavingChoice, g: &Predicate) -> bool {
    Some(h.agg) == g.agg && h.col == g.col && h.op == g.op && h.value.sql_eq(&g.value)
}

fn order_key_eq(a: &OrderKey, b: &OrderKey) -> bool {
    a == b
}

fn gold_clauses(gold: &SelectSpec) -> ClauseSet {
    ClauseSet {
        where_clause: !gold.predicates.is_empty(),
        group_by: !gold.group_by.is_empty(),
        order_by: gold.order_by.is_some(),
    }
}

/// The optional ORDER BY choice corresponding to a gold query, convenient for tests.
pub fn gold_order_choice(gold: &SelectSpec) -> Option<OrderChoice> {
    gold.order_by.as_ref().map(|o| OrderChoice { key: o.key, desc: o.desc, limit: gold.limit })
}

impl GuidanceModel for NoisyOracleGuidance {
    fn name(&self) -> &str {
        "noisy-oracle"
    }

    fn score(&self, _ctx: &GuidanceContext<'_>, candidates: &[Choice]) -> Vec<f64> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let accuracy = self.module_accuracy(&candidates[0]);
        let consistent: Vec<bool> = candidates.iter().map(|c| self.consistent(c)).collect();
        let n_gold = consistent.iter().filter(|x| **x).count();
        let n_other = candidates.len() - n_gold;
        if n_gold == 0 || n_other == 0 {
            return vec![1.0; candidates.len()];
        }
        let mut rng = self.decision_rng(candidates);
        let confused = rng.gen::<f64>() > accuracy;
        if !confused {
            // Gold candidates get the bulk of the probability mass.
            candidates
                .iter()
                .zip(&consistent)
                .map(
                    |(_, is_gold)| {
                        if *is_gold {
                            0.75 / n_gold as f64
                        } else {
                            0.25 / n_other as f64
                        }
                    },
                )
                .collect()
        } else {
            // Mis-ranking: a random non-gold candidate is boosted above the gold
            // one, but the gold candidate keeps some mass so exhaustive
            // enumeration can still recover it (unlike beam search).
            let decoy_rank = rng.gen_range(0..n_other);
            let mut other_seen = 0usize;
            candidates
                .iter()
                .zip(&consistent)
                .map(|(_, is_gold)| {
                    if *is_gold {
                        0.2 / n_gold as f64
                    } else {
                        let score = if other_seen == decoy_rank {
                            0.6
                        } else {
                            0.2 / n_other.max(1) as f64
                        };
                        other_seen += 1;
                        score
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Nlq;
    use duoquest_db::{AggFunc, CmpOp, ColumnDef, JoinTree, Schema, SelectItem, TableDef, Value};

    fn schema() -> Schema {
        let mut s = Schema::new("m");
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s
    }

    fn gold(s: &Schema) -> SelectSpec {
        SelectSpec {
            select: vec![SelectItem::column(s.column_id("movies", "name").unwrap())],
            join: JoinTree::single(s.table_id("movies").unwrap()),
            predicates: vec![duoquest_db::Predicate::new(
                s.column_id("movies", "year").unwrap(),
                CmpOp::Lt,
                Value::int(1995),
            )],
            ..Default::default()
        }
    }

    #[test]
    fn perfect_oracle_always_ranks_gold_first() {
        let s = schema();
        let g = gold(&s);
        let oracle = NoisyOracleGuidance::with_config(g.clone(), 7, OracleConfig::perfect());
        let nlq = Nlq::new("movies before 1995");
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let candidates = vec![
            Choice::Clauses(ClauseSet::default()),
            Choice::Clauses(ClauseSet { where_clause: true, ..Default::default() }),
            Choice::Clauses(ClauseSet { order_by: true, ..Default::default() }),
        ];
        let scores = oracle.score(&ctx, &candidates);
        assert!(scores[1] > scores[0]);
        assert!(scores[1] > scores[2]);
    }

    #[test]
    fn consistency_checks_cover_all_modules() {
        let s = schema();
        let g = gold(&s);
        let oracle = NoisyOracleGuidance::new(g.clone(), 1);
        let name = s.column_id("movies", "name").unwrap();
        let year = s.column_id("movies", "year").unwrap();
        assert!(oracle.consistent(&Choice::SelectColumns(vec![SelectColumn::Column(name)])));
        assert!(!oracle.consistent(&Choice::SelectColumns(vec![SelectColumn::Star])));
        assert!(
            oracle.consistent(&Choice::Aggregate { column: SelectColumn::Column(name), agg: None })
        );
        assert!(oracle.consistent(&Choice::WhereColumns(vec![year])));
        assert!(oracle.consistent(&Choice::Operator { column: year, op: CmpOp::Lt }));
        assert!(!oracle.consistent(&Choice::Operator { column: year, op: CmpOp::Gt }));
        assert!(oracle.consistent(&Choice::PredicateValue {
            column: year,
            op: CmpOp::Lt,
            value: Value::int(1995),
            value2: None
        }));
        assert!(oracle.consistent(&Choice::GroupBy(vec![])));
        assert!(oracle.consistent(&Choice::Having(None)));
        assert!(oracle.consistent(&Choice::OrderBy(None)));
        assert!(!oracle.consistent(&Choice::OrderBy(Some(OrderChoice {
            key: OrderKey::Column(year),
            desc: false,
            limit: None
        }))));
    }

    #[test]
    fn scoring_is_deterministic() {
        let s = schema();
        let g = gold(&s);
        let oracle = NoisyOracleGuidance::new(g, 42);
        let nlq = Nlq::new("movies before 1995");
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let year = s.column_id("movies", "year").unwrap();
        let candidates: Vec<Choice> =
            CmpOp::ALL.iter().map(|op| Choice::Operator { column: year, op: *op }).collect();
        let a = oracle.score(&ctx, &candidates);
        let b = oracle.score(&ctx, &candidates);
        assert_eq!(a, b);
    }

    #[test]
    fn lower_accuracy_produces_more_confusions() {
        let s = schema();
        let g = gold(&s);
        let nlq = Nlq::new("movies before 1995");
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let year = s.column_id("movies", "year").unwrap();
        let mut confusions_low = 0;
        let mut confusions_high = 0;
        for seed in 0..200u64 {
            let low = NoisyOracleGuidance::with_config(
                g.clone(),
                seed,
                OracleConfig::default().scaled(0.3),
            );
            let high = NoisyOracleGuidance::with_config(g.clone(), seed, OracleConfig::perfect());
            let candidates: Vec<Choice> =
                CmpOp::ALL.iter().map(|op| Choice::Operator { column: year, op: *op }).collect();
            let gold_idx =
                candidates.iter().position(|c| low.consistent(c)).expect("gold operator present");
            let ls = low.score(&ctx, &candidates);
            let hs = high.score(&ctx, &candidates);
            if ls.iter().cloned().fold(f64::MIN, f64::max) > ls[gold_idx] {
                confusions_low += 1;
            }
            if hs.iter().cloned().fold(f64::MIN, f64::max) > hs[gold_idx] {
                confusions_high += 1;
            }
        }
        assert_eq!(confusions_high, 0);
        assert!(confusions_low > 50);
    }

    #[test]
    fn config_scaling_clamps() {
        let c = OracleConfig::default().scaled(10.0);
        assert!(c.keyword <= 1.0);
        let c = OracleConfig::default().scaled(0.0);
        assert!(c.keyword >= 0.05);
    }

    #[test]
    fn gold_order_choice_mirrors_gold() {
        let s = schema();
        let mut g = gold(&s);
        assert!(gold_order_choice(&g).is_none());
        g.order_by = Some(duoquest_db::OrderSpec {
            key: OrderKey::Column(s.column_id("movies", "year").unwrap()),
            desc: true,
        });
        g.limit = Some(5);
        let oc = gold_order_choice(&g).unwrap();
        assert!(oc.desc);
        assert_eq!(oc.limit, Some(5));
        let oracle = NoisyOracleGuidance::new(g, 3);
        assert!(oracle.consistent(&Choice::OrderBy(Some(oc))));
        assert_eq!(oracle.name(), "noisy-oracle");
        assert_eq!(oracle.gold().limit, Some(5));
        let _ = AggFunc::Count; // silence unused import in some cfg combinations
    }
}
