//! NLQ tokenization and normalization.

use crate::literals::Literal;
use serde::{Deserialize, Serialize};

/// Common English stop words removed before matching tokens against schema names.
const STOP_WORDS: [&str; 32] = [
    "a", "an", "the", "of", "in", "on", "for", "to", "and", "or", "with", "by", "from", "at", "is",
    "are", "was", "were", "be", "been", "their", "its", "his", "her", "each", "every", "all",
    "that", "those", "these", "which", "who",
];

/// A tokenized natural language query together with its tagged literal values.
///
/// In the paper the literal values `L` are a subset of the NLQ tokens obtained
/// through the autocomplete-based tagging interface (§2.3); here they are
/// carried explicitly on the [`Nlq`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Nlq {
    /// The raw query text.
    pub text: String,
    /// Normalized tokens (lowercased, stop words removed, lightly stemmed).
    pub tokens: Vec<String>,
    /// Tagged literal values.
    pub literals: Vec<Literal>,
}

impl Nlq {
    /// Tokenize a query with no tagged literals.
    pub fn new(text: impl Into<String>) -> Self {
        let text = text.into();
        let tokens = tokenize(&text);
        Nlq { text, tokens, literals: Vec::new() }
    }

    /// Tokenize a query and attach tagged literals.
    pub fn with_literals(text: impl Into<String>, literals: Vec<Literal>) -> Self {
        let mut nlq = Nlq::new(text);
        nlq.literals = literals;
        nlq
    }

    /// Whether a normalized token occurs in the query.
    pub fn contains_token(&self, token: &str) -> bool {
        let t = normalize_token(token);
        self.tokens.contains(&t)
    }

    /// Whether any of the given phrases occurs in the raw text (case-insensitive).
    pub fn contains_phrase(&self, phrases: &[&str]) -> bool {
        let lower = self.text.to_ascii_lowercase();
        phrases.iter().any(|p| lower.contains(p))
    }
}

/// Tokenize and normalize a sentence.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '\'')
        .filter(|s| !s.is_empty())
        .map(normalize_token)
        .filter(|t| !t.is_empty() && !STOP_WORDS.contains(&t.as_str()))
        .collect()
}

/// Lowercase and lightly stem one token (strip plural/verb suffixes).
pub fn normalize_token(token: &str) -> String {
    let t = token.trim_matches('\'').to_ascii_lowercase();
    stem(&t)
}

/// A deliberately small stemmer: enough to make `publications` match
/// `publication` and `starring` match `star`, without external NLP crates.
fn stem(t: &str) -> String {
    if t.len() > 3 && t.ends_with('s') && !t.ends_with("ss") && !t.ends_with("us") {
        return t[..t.len() - 1].to_string();
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::Value;

    #[test]
    fn tokenize_removes_stop_words_and_lowercases() {
        let tokens = tokenize("Show the names of all movies from before 1995");
        assert!(tokens.contains(&"name".to_string()));
        assert!(tokens.contains(&"movie".to_string()));
        assert!(tokens.contains(&"1995".to_string()));
        assert!(!tokens.contains(&"the".to_string()));
        assert!(!tokens.contains(&"of".to_string()));
    }

    #[test]
    fn stemming_folds_plurals() {
        assert_eq!(normalize_token("publications"), "publication");
        assert_eq!(normalize_token("movies"), "movie");
        assert_eq!(normalize_token("conferences"), "conference");
        assert_eq!(normalize_token("years"), "year");
        assert_eq!(normalize_token("class"), "class");
    }

    #[test]
    fn nlq_token_and_phrase_queries() {
        let nlq = Nlq::new("List keywords and the number of publications containing each");
        assert!(nlq.contains_token("keyword"));
        assert!(nlq.contains_token("publications"));
        assert!(nlq.contains_phrase(&["number of"]));
        assert!(!nlq.contains_phrase(&["more than"]));
    }

    #[test]
    fn nlq_with_literals() {
        let lit = Literal::text("SIGMOD", Value::text("SIGMOD"));
        let nlq = Nlq::with_literals("publications in \"SIGMOD\"", vec![lit.clone()]);
        assert_eq!(nlq.literals, vec![lit]);
    }

    #[test]
    fn stem_stability() {
        // Stemming the same token twice is a no-op.
        for token in ["publications", "years", "authors", "organizations"] {
            let once = normalize_token(token);
            assert_eq!(normalize_token(&once), once);
        }
    }
}
