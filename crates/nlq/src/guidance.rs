//! The pluggable enumeration guidance interface.
//!
//! GPQE requires a model that can score the candidate outputs of every
//! inference decision (paper Table 3 lists the SyntaxSQLNet modules: KW, COL,
//! OP, AGG, AND/OR, DESC/ASC+LIMIT, HAVING). Paper §3.3.5 explicitly makes the
//! model pluggable: anything that (1) incrementally updates executable partial
//! queries and (2) emits scores in `[0, 1]` satisfying Property 1 works.
//!
//! The enumerator (in `duoquest-core`) builds the candidate set for one
//! decision point, asks the [`GuidanceModel`] for raw scores, normalizes them
//! so they sum to 1 (which yields Property 1: the children of a state split the
//! parent's confidence mass), and multiplies each child's score into the
//! running confidence of its partial query.

use crate::tokenize::Nlq;
use duoquest_db::{AggFunc, CmpOp, ColumnId, LogicalOp, OrderKey, Schema, Value};
use duoquest_sql::{ClauseSet, SelectColumn};

/// A candidate HAVING predicate (the HAVING module's output).
#[derive(Debug, Clone, PartialEq)]
pub struct HavingChoice {
    /// Aggregate function.
    pub agg: AggFunc,
    /// Aggregated column; `None` means `COUNT(*)`.
    pub col: Option<ColumnId>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant.
    pub value: Value,
}

/// A candidate ORDER BY + LIMIT decision (the DESC/ASC module's output).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderChoice {
    /// Sort key.
    pub key: OrderKey,
    /// Direction.
    pub desc: bool,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

/// One candidate output of a single inference decision.
#[derive(Debug, Clone, PartialEq)]
pub enum Choice {
    /// KW module: which optional clauses the query has.
    Clauses(ClauseSet),
    /// COL module (SELECT position): the projected column list.
    SelectColumns(Vec<SelectColumn>),
    /// AGG module: the aggregate for one projected column.
    Aggregate {
        /// The projected column the aggregate applies to.
        column: SelectColumn,
        /// The chosen aggregate (`None` = no aggregate).
        agg: Option<AggFunc>,
    },
    /// COL module (WHERE position): the predicate column list.
    WhereColumns(Vec<ColumnId>),
    /// OP module: the operator of one predicate.
    Operator {
        /// The predicate column.
        column: ColumnId,
        /// The chosen operator.
        op: CmpOp,
    },
    /// Constant binding for one predicate (from the tagged literals).
    PredicateValue {
        /// The predicate column.
        column: ColumnId,
        /// The chosen operator (already decided).
        op: CmpOp,
        /// The bound constant.
        value: Value,
        /// Second constant for BETWEEN.
        value2: Option<Value>,
    },
    /// AND/OR module: the connective between WHERE predicates.
    Connective(LogicalOp),
    /// COL module (GROUP BY position): the grouping column list.
    GroupBy(Vec<ColumnId>),
    /// HAVING module: the optional HAVING predicate.
    Having(Option<HavingChoice>),
    /// DESC/ASC module: the optional ORDER BY + LIMIT.
    OrderBy(Option<OrderChoice>),
}

/// The inputs every module receives: the NLQ (with literals) and the schema.
#[derive(Debug, Clone, Copy)]
pub struct GuidanceContext<'a> {
    /// The natural language query with tagged literals.
    pub nlq: &'a Nlq,
    /// The database schema.
    pub schema: &'a Schema,
}

/// A guidance model scores the candidates of one inference decision.
pub trait GuidanceModel: Send + Sync {
    /// Return a non-negative raw score for every candidate. The enumerator
    /// normalizes the scores; returning all zeros is interpreted as a uniform
    /// distribution.
    fn score(&self, ctx: &GuidanceContext<'_>, candidates: &[Choice]) -> Vec<f64>;

    /// Human-readable model name (used in experiment reports).
    fn name(&self) -> &str {
        "guidance"
    }
}

/// Normalize raw scores into a probability distribution (Property 1).
pub fn normalize_scores(raw: &[f64]) -> Vec<f64> {
    let sum: f64 = raw.iter().map(|s| s.max(0.0)).sum();
    if sum <= f64::EPSILON {
        let uniform = 1.0 / raw.len().max(1) as f64;
        return vec![uniform; raw.len()];
    }
    raw.iter().map(|s| s.max(0.0) / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sums_to_one() {
        let scores = normalize_scores(&[2.0, 1.0, 1.0]);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((scores[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_all_zero_is_uniform() {
        let scores = normalize_scores(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(scores, vec![0.25; 4]);
    }

    #[test]
    fn normalize_clamps_negatives() {
        let scores = normalize_scores(&[-1.0, 1.0]);
        assert_eq!(scores, vec![0.0, 1.0]);
    }
}
