//! Literal value tagging.
//!
//! Duoquest's front end lets users tag domain-specific literal text values in
//! the NLQ search bar with an autocomplete over the database's inverted column
//! index; numbers are recognized directly (paper §2.3 and §4). The tagged
//! literal set `L` is part of the problem input and is consumed both by the
//! enumerator (to bind predicate constants) and the final `VerifyLiterals`
//! check.

use crate::tokenize::tokenize;
use duoquest_db::{ColumnId, DataType, Database, Value};
use serde::{Deserialize, Serialize};

/// Whether a literal is a text value or a number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LiteralKind {
    /// A quoted / autocompleted text value.
    Text,
    /// A numeric value.
    Number,
}

/// One literal value tagged in the NLQ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Literal {
    /// The surface form as it appears in the NLQ.
    pub surface: String,
    /// The literal value.
    pub value: Value,
    /// Text or number.
    pub kind: LiteralKind,
}

impl Literal {
    /// A tagged text literal.
    pub fn text(surface: impl Into<String>, value: Value) -> Self {
        Literal { surface: surface.into(), value, kind: LiteralKind::Text }
    }

    /// A tagged numeric literal.
    pub fn number(n: f64) -> Self {
        Literal { surface: format!("{n}"), value: Value::Number(n), kind: LiteralKind::Number }
    }

    /// The declared type this literal can compare against.
    pub fn data_type(&self) -> DataType {
        match self.kind {
            LiteralKind::Text => DataType::Text,
            LiteralKind::Number => DataType::Number,
        }
    }
}

/// Extract literal values from an NLQ:
///
/// * substrings enclosed in double quotes are treated as tagged text values
///   (the front end's `"`-activated autocomplete);
/// * bare numeric tokens become numeric literals;
/// * when a database is provided, un-quoted token n-grams that exactly match an
///   indexed text value are tagged as well — this emulates the autocomplete
///   suggestions a user would accept.
pub fn extract_literals(text: &str, db: Option<&Database>) -> Vec<Literal> {
    let mut out: Vec<Literal> = Vec::new();

    // Quoted text values.
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        match after.find('"') {
            Some(end) => {
                let inner = &after[..end];
                if !inner.is_empty() {
                    out.push(Literal::text(inner, Value::text(inner)));
                }
                rest = &after[end + 1..];
            }
            None => break,
        }
    }

    // Numeric tokens.
    for token in text.split(|c: char| !c.is_alphanumeric() && c != '.' && c != '-') {
        if token.is_empty() {
            continue;
        }
        if let Ok(n) = token.parse::<f64>() {
            if !out.iter().any(|l| l.kind == LiteralKind::Number && l.value == Value::Number(n)) {
                out.push(Literal::number(n));
            }
        }
    }

    // Database-backed n-gram matching (autocomplete emulation).
    if let Some(db) = db {
        let words: Vec<&str> = text
            .split(|c: char| !c.is_alphanumeric() && c != '\'')
            .filter(|s| !s.is_empty())
            .collect();
        for n in (1..=4usize).rev() {
            for window in words.windows(n) {
                let candidate = window.join(" ");
                if candidate.parse::<f64>().is_ok() {
                    continue;
                }
                if db.index().contains(&candidate)
                    && !out.iter().any(|l| l.surface.eq_ignore_ascii_case(&candidate))
                    && !out.iter().any(|l| {
                        l.surface.to_ascii_lowercase().contains(&candidate.to_ascii_lowercase())
                    })
                {
                    out.push(Literal::text(candidate.clone(), Value::text(candidate)));
                }
            }
        }
    }

    out
}

/// Candidate columns for a text literal: every text column whose indexed values
/// contain it, most frequent first.
pub fn candidate_columns(db: &Database, literal: &Literal) -> Vec<ColumnId> {
    match literal.kind {
        LiteralKind::Number => Vec::new(),
        LiteralKind::Text => {
            let mut hits: Vec<_> =
                db.index().lookup(literal.value.as_text().unwrap_or(&literal.surface)).to_vec();
            hits.sort_by_key(|h| std::cmp::Reverse(h.count));
            hits.into_iter().map(|h| h.column).collect()
        }
    }
}

/// Whether the NLQ tokens mention the literal (used by VerifyLiterals-style checks).
pub fn literal_mentioned(text: &str, literal: &Literal) -> bool {
    match literal.kind {
        LiteralKind::Number => tokenize(text).contains(&literal.surface.to_ascii_lowercase()),
        LiteralKind::Text => {
            text.to_ascii_lowercase().contains(&literal.surface.to_ascii_lowercase())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{ColumnDef, Schema, TableDef};

    fn db() -> Database {
        let mut s = Schema::new("mas");
        s.add_table(TableDef::new(
            "conference",
            vec![ColumnDef::number("cid"), ColumnDef::text("name")],
            Some(0),
        ));
        let mut d = Database::new(s).unwrap();
        d.insert("conference", vec![Value::int(1), Value::text("SIGMOD")]).unwrap();
        d.insert("conference", vec![Value::int(2), Value::text("Very Large Data Bases")]).unwrap();
        d.rebuild_index();
        d
    }

    #[test]
    fn quoted_and_numeric_literals() {
        let lits = extract_literals("publications in \"SIGMOD\" after 2010", None);
        assert_eq!(lits.len(), 2);
        assert_eq!(lits[0].kind, LiteralKind::Text);
        assert_eq!(lits[0].value, Value::text("SIGMOD"));
        assert_eq!(lits[1].kind, LiteralKind::Number);
        assert_eq!(lits[1].value, Value::Number(2010.0));
    }

    #[test]
    fn autocomplete_backed_ngram_matching() {
        let d = db();
        let lits = extract_literals("publications in Very Large Data Bases this year", Some(&d));
        assert!(lits.iter().any(|l| l.surface.eq_ignore_ascii_case("very large data bases")));
        // Single word "SIGMOD" also matches.
        let lits = extract_literals("count papers in sigmod", Some(&d));
        assert!(lits.iter().any(|l| l.surface.eq_ignore_ascii_case("sigmod")));
    }

    #[test]
    fn candidate_columns_for_text_literal() {
        let d = db();
        let lit = Literal::text("SIGMOD", Value::text("SIGMOD"));
        let cols = candidate_columns(&d, &lit);
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0], d.schema().column_id("conference", "name").unwrap());
        assert!(candidate_columns(&d, &Literal::number(3.0)).is_empty());
    }

    #[test]
    fn literal_mention_detection() {
        let lit = Literal::number(1995.0);
        assert!(literal_mentioned("movies before 1995", &lit));
        assert!(!literal_mentioned("movies before 2000", &lit));
        let lit = Literal::text("Tom Hanks", Value::text("Tom Hanks"));
        assert!(literal_mentioned("films starring tom hanks", &lit));
    }

    #[test]
    fn duplicate_numbers_not_repeated() {
        let lits = extract_literals("between 2010 and 2010", None);
        assert_eq!(lits.iter().filter(|l| l.kind == LiteralKind::Number).count(), 1);
    }
}
