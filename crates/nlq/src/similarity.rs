//! Lexical similarity between NLQ tokens and schema identifiers.
//!
//! The paper's prototype relies on off-the-shelf word embeddings inside
//! SyntaxSQLNet; the self-contained heuristic guidance model here uses a
//! combination of exact/stemmed token overlap and character-trigram Jaccard
//! similarity, which is sufficient for schemas that follow the paper's advice
//! of using complete words for table and column names (§4.1).

use crate::tokenize::{normalize_token, Nlq};
use duoquest_db::{ColumnId, Schema};

/// Split a schema identifier such as `birth_yr` or `domain_conference` into
/// normalized word tokens.
pub fn identifier_tokens(identifier: &str) -> Vec<String> {
    identifier.split(['_', ' ', '.']).filter(|s| !s.is_empty()).map(normalize_token).collect()
}

/// Character trigram Jaccard similarity between two words.
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> Vec<String> {
        let padded = format!("  {}  ", s.to_ascii_lowercase());
        let chars: Vec<char> = padded.chars().collect();
        chars.windows(3).map(|w| w.iter().collect()).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let inter = ga.iter().filter(|g| gb.contains(g)).count();
    let union = ga.len() + gb.len() - inter;
    inter as f64 / union as f64
}

/// Similarity in `[0, 1]` between an NLQ and one schema identifier: the best
/// per-word match (exact/stem match scores 1, otherwise trigram similarity),
/// averaged over the identifier's words.
pub fn name_similarity(nlq: &Nlq, identifier: &str) -> f64 {
    let id_tokens = identifier_tokens(identifier);
    if id_tokens.is_empty() || nlq.tokens.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for idt in &id_tokens {
        let mut best: f64 = 0.0;
        for tok in &nlq.tokens {
            if tok == idt {
                best = 1.0;
                break;
            }
            best = best.max(trigram_similarity(tok, idt));
        }
        total += best;
    }
    total / id_tokens.len() as f64
}

/// Similarity between an NLQ and a column, considering both the column name and
/// its table name (the table name contributes with a lower weight).
pub fn column_similarity(nlq: &Nlq, schema: &Schema, col: ColumnId) -> f64 {
    let col_name = &schema.column(col).name;
    let table_name = &schema.table(col.table).name;
    let col_sim = name_similarity(nlq, col_name);
    let table_sim = name_similarity(nlq, table_name);
    (0.75 * col_sim + 0.25 * table_sim).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{ColumnDef, TableDef};

    #[test]
    fn identifier_splitting() {
        assert_eq!(identifier_tokens("birth_yr"), vec!["birth", "yr"]);
        assert_eq!(identifier_tokens("domain_conference"), vec!["domain", "conference"]);
    }

    #[test]
    fn trigram_similarity_bounds() {
        assert!(trigram_similarity("year", "year") > 0.99);
        assert!(trigram_similarity("year", "years") > 0.4);
        assert!(trigram_similarity("year", "name") < 0.2);
        assert_eq!(trigram_similarity("", "x"), 0.0);
    }

    #[test]
    fn name_similarity_prefers_mentioned_columns() {
        let nlq = Nlq::new("List the titles and years of publications by author A");
        assert!(name_similarity(&nlq, "title") > 0.9);
        assert!(name_similarity(&nlq, "year") > 0.9);
        assert!(name_similarity(&nlq, "title") > name_similarity(&nlq, "homepage"));
    }

    #[test]
    fn column_similarity_uses_table_context() {
        let mut s = Schema::new("mas");
        s.add_table(TableDef::new(
            "publication",
            vec![ColumnDef::text("title"), ColumnDef::number("year")],
            None,
        ));
        s.add_table(TableDef::new("keyword", vec![ColumnDef::text("keyword")], None));
        let nlq = Nlq::new("List publication titles");
        let title = s.column_id("publication", "title").unwrap();
        let keyword = s.column_id("keyword", "keyword").unwrap();
        assert!(column_similarity(&nlq, &s, title) > column_similarity(&nlq, &s, keyword));
    }
}
