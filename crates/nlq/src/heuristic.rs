//! A purely lexical guidance model.
//!
//! This model needs no training data: it scores enumeration decisions with
//! keyword cues (e.g. "how many" → `COUNT`, "more than" → `>`) and lexical
//! similarity between NLQ tokens and schema names. It is useful for
//! self-contained demos and as a sanity baseline; the evaluation harness uses
//! the calibrated noisy oracle (see [`crate::oracle`]) as the stand-in for the
//! paper's trained SyntaxSQLNet.

use crate::guidance::{Choice, GuidanceContext, GuidanceModel};
use crate::literals::LiteralKind;
use crate::similarity::column_similarity;
use crate::tokenize::Nlq;
use duoquest_db::{AggFunc, CmpOp, DataType, LogicalOp, OrderKey, Value};
use duoquest_sql::SelectColumn;

/// Lexical cue based guidance (no training required).
#[derive(Debug, Clone, Default)]
pub struct HeuristicGuidance;

impl HeuristicGuidance {
    /// Construct the heuristic model.
    pub fn new() -> Self {
        HeuristicGuidance
    }
}

/// Keyword cue helpers over the NLQ.
struct Cues {
    count: bool,
    max: bool,
    min: bool,
    avg: bool,
    sum: bool,
    order: bool,
    descending: bool,
    ascending: bool,
    group: bool,
    top: bool,
    greater: bool,
    less: bool,
    between: bool,
    like: bool,
    or: bool,
    has_text_literal: bool,
    has_number_literal: bool,
}

impl Cues {
    fn of(nlq: &Nlq) -> Self {
        Cues {
            count: nlq.contains_phrase(&["how many", "number of", "count"]),
            max: nlq.contains_phrase(&["most ", "maximum", "largest", "highest", "biggest"]),
            min: nlq.contains_phrase(&["least ", "minimum", "smallest", "lowest", "fewest"]),
            avg: nlq.contains_phrase(&["average", "mean "]),
            sum: nlq.contains_phrase(&["total", "sum of", "combined"]),
            order: nlq.contains_phrase(&[
                "order",
                "sorted",
                "sort",
                "rank",
                "from earliest",
                "from most",
                "from least",
                "most recent",
                "earliest to",
                "oldest to",
                "newest",
            ]),
            descending: nlq.contains_phrase(&[
                "most to least",
                "descending",
                "newest",
                "most recent first",
                "highest first",
                "from most",
            ]),
            ascending: nlq.contains_phrase(&[
                "least to most",
                "ascending",
                "earliest to",
                "oldest to",
                "from earliest",
                "from oldest",
                "from least",
            ]),
            group: nlq.contains_phrase(&["each", "per ", "for every", "number of", "how many"]),
            top: nlq.contains_phrase(&["top ", "first ", "best "]),
            greater: nlq.contains_phrase(&[
                "more than",
                "greater than",
                "over ",
                "after",
                "above",
                "at least",
                "later than",
            ]),
            less: nlq.contains_phrase(&[
                "less than",
                "fewer than",
                "under ",
                "before",
                "below",
                "at most",
                "earlier than",
            ]),
            between: nlq.contains_phrase(&["between", "sometime between", "from 1", "from 2"]),
            like: nlq.contains_phrase(&["containing", "contains", "includes", "starting with"]),
            or: nlq.contains_phrase(&[" or "]),
            has_text_literal: nlq.literals.iter().any(|l| l.kind == LiteralKind::Text),
            has_number_literal: nlq.literals.iter().any(|l| l.kind == LiteralKind::Number),
        }
    }
}

fn clause_factor(present: bool, wanted: bool) -> f64 {
    if present == wanted {
        0.8
    } else {
        0.2
    }
}

impl GuidanceModel for HeuristicGuidance {
    fn name(&self) -> &str {
        "heuristic"
    }

    fn score(&self, ctx: &GuidanceContext<'_>, candidates: &[Choice]) -> Vec<f64> {
        let cues = Cues::of(ctx.nlq);
        candidates
            .iter()
            .map(|c| match c {
                Choice::Clauses(cs) => {
                    let want_where = cues.has_text_literal
                        || cues.has_number_literal
                        || cues.greater
                        || cues.less
                        || cues.like;
                    let want_group = cues.group && cues.count;
                    let want_order = cues.order || cues.top;
                    clause_factor(cs.where_clause, want_where)
                        * clause_factor(cs.group_by, want_group)
                        * clause_factor(cs.order_by, want_order)
                }
                Choice::SelectColumns(cols) => {
                    if cols.is_empty() {
                        return 0.0;
                    }
                    let mut total = 0.0;
                    for col in cols {
                        total += match col {
                            SelectColumn::Star => {
                                if cues.count {
                                    0.6
                                } else {
                                    0.05
                                }
                            }
                            SelectColumn::Column(c) => {
                                column_similarity(ctx.nlq, ctx.schema, *c).max(0.02)
                            }
                        };
                    }
                    total / cols.len() as f64
                }
                Choice::Aggregate { column, agg } => {
                    let numeric = matches!(
                        column,
                        SelectColumn::Column(c) if ctx.schema.column(*c).dtype == DataType::Number
                    );
                    match agg {
                        None => {
                            if cues.count || cues.max || cues.min || cues.avg || cues.sum {
                                0.35
                            } else {
                                0.8
                            }
                        }
                        Some(AggFunc::Count) => {
                            if cues.count {
                                0.7
                            } else {
                                0.08
                            }
                        }
                        Some(AggFunc::Max) => {
                            if cues.max && numeric {
                                0.6
                            } else {
                                0.05
                            }
                        }
                        Some(AggFunc::Min) => {
                            if cues.min && numeric {
                                0.6
                            } else {
                                0.05
                            }
                        }
                        Some(AggFunc::Avg) => {
                            if cues.avg && numeric {
                                0.6
                            } else {
                                0.05
                            }
                        }
                        Some(AggFunc::Sum) => {
                            if cues.sum && numeric {
                                0.6
                            } else {
                                0.05
                            }
                        }
                    }
                }
                Choice::WhereColumns(cols) => {
                    if cols.is_empty() {
                        return 0.05;
                    }
                    let mut total = 0.0;
                    for c in cols {
                        let sim = column_similarity(ctx.nlq, ctx.schema, *c);
                        let dt = ctx.schema.column(*c).dtype;
                        let lit_bonus = if ctx.nlq.literals.iter().any(|l| l.data_type() == dt) {
                            0.3
                        } else {
                            0.0
                        };
                        total += (sim + lit_bonus).clamp(0.02, 1.0);
                    }
                    total / cols.len() as f64
                }
                Choice::Operator { column, op } => {
                    let numeric = ctx.schema.column(*column).dtype == DataType::Number;
                    match op {
                        CmpOp::Eq => 0.45,
                        CmpOp::Gt | CmpOp::Ge => {
                            if cues.greater && numeric {
                                0.6
                            } else {
                                0.08
                            }
                        }
                        CmpOp::Lt | CmpOp::Le => {
                            if cues.less && numeric {
                                0.6
                            } else {
                                0.08
                            }
                        }
                        CmpOp::Between => {
                            if cues.between && numeric {
                                0.6
                            } else {
                                0.05
                            }
                        }
                        CmpOp::Like => {
                            if cues.like && !numeric {
                                0.5
                            } else {
                                0.03
                            }
                        }
                        CmpOp::Ne => 0.03,
                    }
                }
                Choice::PredicateValue { column, value, value2, .. } => {
                    let dt = ctx.schema.column(*column).dtype;
                    let matches_literal = ctx.nlq.literals.iter().any(|l| l.value.sql_eq(value));
                    let second_ok = value2
                        .as_ref()
                        .map(|v| ctx.nlq.literals.iter().any(|l| l.value.sql_eq(v)))
                        .unwrap_or(true);
                    let type_ok = value.data_type() == Some(dt);
                    if matches_literal && second_ok && type_ok {
                        1.0
                    } else if type_ok {
                        0.1
                    } else {
                        0.01
                    }
                }
                Choice::Connective(op) => match op {
                    LogicalOp::Or => {
                        if cues.or {
                            0.7
                        } else {
                            0.15
                        }
                    }
                    LogicalOp::And => {
                        if cues.or {
                            0.3
                        } else {
                            0.85
                        }
                    }
                },
                Choice::GroupBy(cols) => {
                    if cols.is_empty() {
                        return 0.05;
                    }
                    let sim: f64 = cols
                        .iter()
                        .map(|c| column_similarity(ctx.nlq, ctx.schema, *c).max(0.02))
                        .sum::<f64>()
                        / cols.len() as f64;
                    sim + if cues.group { 0.2 } else { 0.0 }
                }
                Choice::Having(having) => match having {
                    None => {
                        if cues.greater && cues.count {
                            0.3
                        } else {
                            0.8
                        }
                    }
                    Some(h) => {
                        let literal_match =
                            ctx.nlq.literals.iter().any(|l| l.value.sql_eq(&h.value));
                        let base =
                            if cues.count && (cues.greater || cues.less) { 0.6 } else { 0.1 };
                        if literal_match {
                            base
                        } else {
                            base * 0.2
                        }
                    }
                },
                Choice::OrderBy(order) => match order {
                    None => {
                        if cues.order || cues.top {
                            0.2
                        } else {
                            0.85
                        }
                    }
                    Some(o) => {
                        let dir_score = if o.desc {
                            if cues.descending {
                                0.6
                            } else if cues.ascending {
                                0.1
                            } else {
                                0.3
                            }
                        } else if cues.ascending {
                            0.6
                        } else if cues.descending {
                            0.1
                        } else {
                            0.3
                        };
                        let key_score = match o.key {
                            OrderKey::Column(c) => {
                                column_similarity(ctx.nlq, ctx.schema, c).max(0.05)
                            }
                            OrderKey::Aggregate(AggFunc::Count, _) => {
                                if cues.count {
                                    0.6
                                } else {
                                    0.1
                                }
                            }
                            OrderKey::Aggregate(..) => 0.1,
                        };
                        let limit_score = match (o.limit, cues.top) {
                            (Some(_), true) => 0.7,
                            (Some(_), false) => 0.1,
                            (None, true) => 0.3,
                            (None, false) => 0.8,
                        };
                        dir_score * key_score * limit_score * 4.0
                    }
                },
            })
            .map(|s: f64| s.max(1e-6))
            .collect()
    }
}

/// Convenience: score a single literal value against a candidate constant.
pub fn value_matches_literal(nlq: &Nlq, value: &Value) -> bool {
    nlq.literals.iter().any(|l| l.value.sql_eq(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guidance::normalize_scores;
    use crate::literals::Literal;
    use duoquest_db::{ColumnDef, Schema, TableDef};
    use duoquest_sql::ClauseSet;

    fn schema() -> Schema {
        let mut s = Schema::new("mas");
        s.add_table(TableDef::new(
            "publication",
            vec![ColumnDef::number("pid"), ColumnDef::text("title"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "author",
            vec![ColumnDef::number("aid"), ColumnDef::text("name")],
            Some(0),
        ));
        s
    }

    #[test]
    fn clause_scoring_prefers_where_with_literals() {
        let s = schema();
        let nlq = Nlq::with_literals(
            "List publications in \"SIGMOD\"",
            vec![Literal::text("SIGMOD", Value::text("SIGMOD"))],
        );
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let m = HeuristicGuidance::new();
        let candidates = vec![
            Choice::Clauses(ClauseSet::default()),
            Choice::Clauses(ClauseSet { where_clause: true, ..Default::default() }),
        ];
        let scores = m.score(&ctx, &candidates);
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn aggregate_scoring_follows_count_cue() {
        let s = schema();
        let nlq = Nlq::new("How many publications does each author have");
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let m = HeuristicGuidance::new();
        let star = SelectColumn::Star;
        let scores = m.score(
            &ctx,
            &[
                Choice::Aggregate { column: star, agg: None },
                Choice::Aggregate { column: star, agg: Some(AggFunc::Count) },
                Choice::Aggregate { column: star, agg: Some(AggFunc::Max) },
            ],
        );
        assert!(scores[1] > scores[0]);
        assert!(scores[1] > scores[2]);
    }

    #[test]
    fn operator_scoring_uses_comparative_cues() {
        let s = schema();
        let year = s.column_id("publication", "year").unwrap();
        let nlq = Nlq::new("publications from before 1995");
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let m = HeuristicGuidance::new();
        let scores = m.score(
            &ctx,
            &[
                Choice::Operator { column: year, op: CmpOp::Eq },
                Choice::Operator { column: year, op: CmpOp::Lt },
                Choice::Operator { column: year, op: CmpOp::Gt },
            ],
        );
        assert!(scores[1] > scores[2]);
    }

    #[test]
    fn predicate_value_prefers_tagged_literal() {
        let s = schema();
        let year = s.column_id("publication", "year").unwrap();
        let nlq = Nlq::with_literals("publications before 1995", vec![Literal::number(1995.0)]);
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let m = HeuristicGuidance::new();
        let scores = m.score(
            &ctx,
            &[
                Choice::PredicateValue {
                    column: year,
                    op: CmpOp::Lt,
                    value: Value::int(1995),
                    value2: None,
                },
                Choice::PredicateValue {
                    column: year,
                    op: CmpOp::Lt,
                    value: Value::int(3),
                    value2: None,
                },
            ],
        );
        assert!(scores[0] > scores[1]);
        assert!(value_matches_literal(&nlq, &Value::int(1995)));
    }

    #[test]
    fn select_columns_prefer_mentioned_names() {
        let s = schema();
        let title = s.column_id("publication", "title").unwrap();
        let name = s.column_id("author", "name").unwrap();
        let year = s.column_id("publication", "year").unwrap();
        let nlq = Nlq::new("List the titles and years of publications");
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let m = HeuristicGuidance::new();
        let scores = m.score(
            &ctx,
            &[
                Choice::SelectColumns(vec![
                    SelectColumn::Column(title),
                    SelectColumn::Column(year),
                ]),
                Choice::SelectColumns(vec![SelectColumn::Column(name)]),
            ],
        );
        assert!(scores[0] > scores[1]);
        let normalized = normalize_scores(&scores);
        assert!((normalized.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn connective_follows_or_cue() {
        let s = schema();
        let nlq = Nlq::new("movies from before 1995, or after 2000");
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let m = HeuristicGuidance::new();
        let scores =
            m.score(&ctx, &[Choice::Connective(LogicalOp::And), Choice::Connective(LogicalOp::Or)]);
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn scores_are_strictly_positive() {
        let s = schema();
        let nlq = Nlq::new("whatever");
        let ctx = GuidanceContext { nlq: &nlq, schema: &s };
        let m = HeuristicGuidance::new();
        let scores = m.score(&ctx, &[Choice::OrderBy(None), Choice::Having(None)]);
        assert!(scores.iter().all(|s| *s > 0.0));
        assert_eq!(m.name(), "heuristic");
    }
}
