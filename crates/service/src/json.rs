//! A minimal JSON reader for the hand-rolled `to_json` outputs of the stats
//! types ([`ServiceStats`](crate::ServiceStats),
//! `duoquest_core::EnumerationStats`, …).
//!
//! The vendored `serde` stand-ins have no-op derives and there is no
//! `serde_json` offline, so metric emission is hand-rolled string building —
//! this module is the matching reader, used by the round-trip tests and
//! available to scrapers that want typed access without a JSON dependency.
//! It supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) but is tuned for small metric payloads,
//! not large documents.
//!
//! Since the network front ([`duoquest-net`]) feeds this reader bytes that
//! arrive off a socket, it is hardened against hostile input: malformed,
//! truncated and deeply nested documents all return `Err` — nesting is
//! capped at [`MAX_DEPTH`] so a `[[[[…` bomb cannot blow the parser's
//! stack — and the writer side ([`escape_string`]) produces escapes this
//! reader round-trips exactly, control characters and non-ASCII included.
//!
//! [`duoquest-net`]: https://docs.rs/duoquest-net

/// Maximum nesting depth [`Json::parse`] accepts. Deeper documents return
/// an error instead of recursing toward a stack overflow (which would abort
/// the whole process — unacceptable for a parser fed from a socket).
pub const MAX_DEPTH: usize = 64;

/// Render `text` as a JSON string literal, double quotes included.
///
/// Control characters (U+0000..U+001F) are escaped (`\n`, `\r`, `\t`,
/// `\u00XX`), as are `"` and `\`; everything else — non-ASCII included —
/// passes through as raw UTF-8, which the JSON grammar permits and
/// [`Json::parse`] round-trips exactly. Every string the stats emitters and
/// the wire protocol embed in JSON must go through here: task names and SQL
/// candidate text are user-reachable and can contain anything.
pub fn escape_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, with insertion order preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document. Trailing non-whitespace is an error, as is
    /// nesting deeper than [`MAX_DEPTH`] — the parser never panics on
    /// malformed, truncated or hostile input (socket-fed callers rely on
    /// this; `tests` below drive a corpus of broken frames through it).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape at byte {pos}"))?;
                        *pos += 4;
                        // Surrogate pairs are not needed by the metric
                        // payloads; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape '\\{}'", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let ch = rest.chars().next().expect("non-empty by construction");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let doc = r#"{"a":1,"b":-2.5,"c":true,"d":null,"e":"x\ny","f":[1,2,{"g":3}]}"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("b").and_then(Json::as_f64), Some(-2.5));
        assert_eq!(json.get("c").and_then(Json::as_bool), Some(true));
        assert!(json.get("d").unwrap().is_null());
        assert_eq!(json.get("e").and_then(Json::as_str), Some("x\ny"));
        let Some(Json::Array(items)) = json.get("f") else { panic!("array expected") };
        assert_eq!(items[2].get("g").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    /// The corpus of broken frames the net front's reader must survive:
    /// every entry is a plausible product of truncation, corruption, or a
    /// hostile client, and every one must come back `Err` — not a panic,
    /// not a stack overflow, not an `Ok` of garbage.
    #[test]
    fn broken_frame_corpus_returns_errors() {
        let corpus: &[&str] = &[
            // Truncations of a well-formed submit frame.
            "",
            "{",
            "{\"",
            "{\"task",
            "{\"task\"",
            "{\"task\":",
            "{\"task\":\"mov",
            "{\"task\":\"movies\"",
            "{\"task\":\"movies\",",
            "{\"task\":\"movies\",\"priority\":",
            "[",
            "[1",
            "[1,",
            "[[1,2],",
            // Broken escapes.
            "\"\\",
            "\"\\q\"",
            "\"\\u\"",
            "\"\\u12\"",
            "\"\\uZZZZ\"",
            // Broken literals and numbers.
            "tru",
            "nul",
            "falsy",
            "+",
            "-",
            ".",
            "1.2.3",
            "0x10",
            "--5",
            "1e",
            // Structural garbage.
            ":",
            ",",
            "}",
            "]",
            "{]",
            "[}",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "{1:2}",
            "{\"a\":1 \"b\":2}",
            "[1 2]",
            "'single'",
            "{\"a\":1}}",
            "[1][2]",
        ];
        for frame in corpus {
            assert!(Json::parse(frame).is_err(), "expected error for frame {frame:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // Far beyond MAX_DEPTH: without the cap this would recurse ~100k
        // frames deep and abort the process.
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
        let bomb = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());

        // One past the cap fails; the cap itself parses.
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(Json::parse(&over).is_err());
        let at = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&at).is_ok());
    }

    #[test]
    fn escape_string_round_trips_through_the_reader() {
        let cases: &[&str] = &[
            "",
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "line\nbreaks\r\nand\ttabs",
            "control \u{0} \u{1} \u{8} \u{c} \u{1f} chars",
            "non-ASCII: caf\u{e9} \u{4e2d}\u{6587} \u{1f600}",
            "SELECT title FROM movies WHERE note = 'a\nb'",
            "/ solidus needs no escape",
        ];
        for case in cases {
            let literal = escape_string(case);
            let parsed = Json::parse(&literal)
                .unwrap_or_else(|e| panic!("round-trip parse failed for {case:?}: {e}"));
            assert_eq!(parsed.as_str(), Some(*case), "round-trip mismatch for {case:?}");
        }
    }

    #[test]
    fn escape_string_embeds_in_objects() {
        let text = "task\twith\n\"tricky\" \u{1} content \u{1f680}";
        let doc = format!("{{\"task\":{}}}", escape_string(text));
        let json = Json::parse(&doc).unwrap();
        assert_eq!(json.get("task").and_then(Json::as_str), Some(text));
    }
}
