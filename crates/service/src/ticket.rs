//! The consumer half of a submitted request: a [`Ticket`] streams candidates
//! while the request runs and resolves to a [`ServiceOutcome`].

use crate::request::PriorityClass;
use duoquest_core::{Candidate, SchedulerHandle, SessionControl, SynthesisResult};
use std::sync::mpsc::Receiver;
use std::sync::Weak;
use std::time::Duration;

/// How a request left the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// The run finished on its own: search exhausted or an engine budget
    /// reached — including the configuration's own `time_budget`, which is a
    /// normal completion mode distinct from the request's service deadline.
    Completed,
    /// The request's cancellation token fired — explicitly via
    /// [`Ticket::cancel`], implicitly by dropping the ticket, or because the
    /// service shut down — before the run finished.
    Cancelled,
    /// The request ran past its deadline (or expired while still queued) and
    /// carries the best candidates found up to that point.
    DeadlineExceeded,
}

impl RequestStatus {
    /// Lowercase label used in stats JSON and reports.
    pub fn label(self) -> &'static str {
        match self {
            RequestStatus::Completed => "completed",
            RequestStatus::Cancelled => "cancelled",
            RequestStatus::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// The resolution of one request: the ranked result (possibly truncated by a
/// deadline or cancellation) plus serving metadata.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// The ranked candidates and the run's `EnumerationStats`. Empty when the
    /// request was cancelled or expired before it started.
    pub result: SynthesisResult,
    /// How the request left the service.
    pub status: RequestStatus,
    /// Time spent in the admission queue before the run started (the full
    /// wait when the request never started).
    pub queue_wait: Duration,
    /// Time from submission to the first emitted candidate, if any was
    /// emitted — the service's headline latency metric.
    pub time_to_first_candidate: Option<Duration>,
}

/// A live handle on a submitted request.
///
/// Iterate (or call [`Ticket::next_timeout`]) to receive candidates in
/// emission order while the request is running; call [`Ticket::wait`] for the
/// final [`ServiceOutcome`]. **Dropping the ticket cancels the request**: the
/// session's cancellation token fires and its queued round-chunk units are
/// reaped from the shared pool, so an abandoned consumer never leaks
/// enumeration work. Cancellation never perturbs other requests — their
/// emission order is byte-identical either way.
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) priority: PriorityClass,
    pub(crate) control: SessionControl,
    pub(crate) candidates: Receiver<Candidate>,
    pub(crate) outcome: Receiver<ServiceOutcome>,
    pub(crate) scheduler: SchedulerHandle,
    /// Back-reference to the service so a cancellation can pull the
    /// scheduler's housekeeping tick forward (weak: tickets may outlive the
    /// service).
    pub(crate) shared: Weak<crate::Shared>,
    pub(crate) received: Option<ServiceOutcome>,
}

impl Ticket {
    /// The request's service-assigned id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request's priority class.
    pub fn priority(&self) -> PriorityClass {
        self.priority
    }

    /// Cancel the request: fires the cancellation token (the engine stops at
    /// its next cooperative check, mid-round if necessary) and reaps any of
    /// the session's units still queued on the shared pool. A request still
    /// waiting in the admission queue is discarded without ever starting.
    /// Idempotent.
    pub fn cancel(&self) {
        self.control.cancel();
        self.scheduler.reap_cancelled();
        // Pull the scheduler's housekeeping tick forward so a still-queued
        // request resolves now, not when a live slot happens to free.
        if let Some(shared) = self.shared.upgrade() {
            shared.notify_queue_changed();
        }
    }

    /// Whether the request's cancellation token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.control.is_cancelled()
    }

    /// Receive the next candidate, waiting up to `timeout`. `None` on timeout
    /// or once the candidate stream has ended.
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<Candidate> {
        self.candidates.recv_timeout(timeout).ok()
    }

    /// Non-blocking poll for the outcome: `Some` once the request has
    /// resolved. The outcome is retained, so a later [`Ticket::wait`] still
    /// returns it.
    pub fn try_wait(&mut self) -> Option<&ServiceOutcome> {
        if self.received.is_none() {
            self.received = self.outcome.try_recv().ok();
        }
        self.received.as_ref()
    }

    /// Whether the request has resolved (non-blocking).
    pub fn is_finished(&mut self) -> bool {
        self.try_wait().is_some()
    }

    /// Block until the request resolves and return its outcome. Candidates
    /// not consumed through the ticket are still reflected in
    /// [`ServiceOutcome::result`].
    ///
    /// # Panics
    ///
    /// Panics if the request's session itself panicked mid-step or mid-chunk
    /// (a bug in a guidance model or verifier). The service survives such a
    /// request — its live slot is freed and queued work is promoted; the
    /// pool workers are unharmed — but there is no outcome to deliver for
    /// it.
    pub fn wait(mut self) -> ServiceOutcome {
        if self.received.is_none() {
            self.received = self.outcome.recv().ok();
        }
        self.received.take().expect("service driver vanished without delivering an outcome")
    }
}

impl Iterator for Ticket {
    type Item = Candidate;

    /// Blocks until the next candidate is emitted; `None` once the request
    /// has resolved (or was cancelled).
    fn next(&mut self) -> Option<Candidate> {
        self.candidates.recv().ok()
    }
}

impl Drop for Ticket {
    /// Dropping the ticket cancels the request (see the struct docs). For a
    /// request that already resolved this is a no-op beyond a queue sweep.
    fn drop(&mut self) {
        self.cancel();
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("cancelled", &self.control.is_cancelled())
            .finish()
    }
}
