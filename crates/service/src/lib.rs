//! # duoquest-service
//!
//! The multi-tenant serving layer over the synthesis core: a
//! [`SynthesisService`] owns one shared
//! [`SessionScheduler`] pool and exposes a
//! request lifecycle shaped like a production endpoint — many users submit
//! NL+TSQ tasks concurrently, each with a priority class, an optional
//! deadline, and a cancellable ticket.
//!
//! # Request lifecycle
//!
//! ```text
//!  submit(SynthesisRequest)
//!        │
//!        ▼                 capacity?
//!  ┌─ admission ─────────────────────────────────────────────┐
//!  │ live < max_live ──────────► start (driver thread)       │
//!  │ else queued < max_queued ─► queue (per-class FIFO)      │
//!  │ else ─────────────────────► shed: Err(Overloaded)       │
//!  └─────────────────────────────────────────────────────────┘
//!        │ start                      ▲ a finishing request
//!        ▼                            │ promotes the head of the
//!  SynthesisSession on the shared     │ highest non-empty class
//!  SessionScheduler pool              │ queue
//!  (fairness weight = beam × class)   │
//!        │ candidates stream to the Ticket as they survive
//!        ▼
//!  ServiceOutcome { result, status: Completed | Cancelled | DeadlineExceeded }
//! ```
//!
//! * **Priorities** ([`PriorityClass`]) weight the shared pool's round-robin
//!   on top of beam width: an interactive session gets 16× the per-rotation
//!   share of a background one, but nobody is starved — every live session is
//!   served each rotation.
//! * **Cancellation**: dropping (or explicitly cancelling) a [`Ticket`] fires
//!   the session's token; queued (session, round-chunk) units are reaped from
//!   the fairness queue before a worker ever pops them, and the run stops at
//!   its next cooperative check. Other requests' emission order is untouched.
//! * **Deadlines** are measured from submission (queue wait counts). A
//!   request past its deadline stops enumerating and resolves with the best
//!   candidates found so far, flagged
//!   [`RequestStatus::DeadlineExceeded`].
//! * **Admission control** bounds live sessions and the waiting queue;
//!   overflow is shed at submit time with [`AdmissionError::Overloaded`].
//! * **Observability**: [`SynthesisService::stats`] snapshots per-class queue
//!   depth, p50/p95 time-to-first-candidate and the
//!   cancelled/shed/expired counters, JSON-renderable via
//!   [`ServiceStats::to_json`].
//!
//! Completed requests keep the engine's determinism contract: for a fixed
//! configuration the emitted candidate sequence is byte-identical to a
//! private-pool [`SynthesisSession`] run,
//! at any priority, under any concurrent load (`tests/determinism.rs`).
//!
//! # Example
//!
//! ```
//! use duoquest_core::DuoquestConfig;
//! use duoquest_db::{ColumnDef, Database, Schema, TableDef, Value};
//! use duoquest_nlq::{HeuristicGuidance, Literal, Nlq};
//! use duoquest_service::{PriorityClass, RequestStatus, ServiceConfig, SynthesisRequest,
//!     SynthesisService};
//! use std::sync::Arc;
//!
//! let mut schema = Schema::new("demo");
//! schema.add_table(TableDef::new(
//!     "movies",
//!     vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
//!     Some(0),
//! ));
//! let mut db = Database::new(schema).unwrap();
//! db.insert("movies", vec![Value::int(1), Value::text("Heat"), Value::int(1995)]).unwrap();
//! db.insert("movies", vec![Value::int(2), Value::text("Up"), Value::int(2009)]).unwrap();
//! db.rebuild_index();
//!
//! let service = SynthesisService::new(ServiceConfig {
//!     workers: 2,
//!     max_live_sessions: 4,
//!     max_queued: 16,
//!     ..ServiceConfig::default()
//! });
//! let nlq = Nlq::with_literals("movie names before 2000", vec![Literal::number(2000.0)]);
//! let request = SynthesisRequest::new(
//!     db.into_shared(),
//!     nlq,
//!     Arc::new(HeuristicGuidance::new()),
//! )
//! .with_config(DuoquestConfig::fast())
//! .with_priority(PriorityClass::Interactive);
//!
//! let ticket = service.submit(request).unwrap();
//! let outcome = ticket.wait();
//! assert_eq!(outcome.status, RequestStatus::Completed);
//! assert!(!outcome.result.candidates.is_empty());
//! assert_eq!(service.stats().class(PriorityClass::Interactive).completed, 1);
//! ```

#![warn(missing_docs)]

pub mod json;
mod request;
mod stats;
mod ticket;

pub use request::{AdmissionError, PriorityClass, ServiceConfig, SynthesisRequest};
pub use stats::{ClassStats, ServiceStats};
pub use ticket::{RequestStatus, ServiceOutcome, Ticket};

use duoquest_core::{
    Candidate, SchedulerHandle, SessionControl, SessionScheduler, SynthesisResult, SynthesisSession,
};
use stats::Reservoir;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-class monotone counters plus the TTFC sample window.
struct ClassCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    shed: AtomicU64,
    ttfc: Mutex<Reservoir>,
}

impl ClassCounters {
    fn new(ttfc_samples: usize) -> Self {
        ClassCounters {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            ttfc: Mutex::new(Reservoir::new(ttfc_samples)),
        }
    }

    fn record_ttfc(&self, sample: Duration) {
        self.ttfc.lock().expect("ttfc reservoir poisoned").record(sample);
    }
}

/// A request admitted but not yet finished: everything the driver thread
/// needs to run it and resolve its ticket.
struct Pending {
    id: u64,
    req: SynthesisRequest,
    control: SessionControl,
    submitted: Instant,
    candidates: Sender<Candidate>,
    outcome: Sender<ServiceOutcome>,
}

impl Pending {
    /// Build the outcome of a request that never ran (cancelled or expired
    /// while queued), returning the sender to deliver it through.
    fn into_unrun(self, status: RequestStatus) -> (Sender<ServiceOutcome>, ServiceOutcome) {
        let mut result = SynthesisResult::default();
        match status {
            RequestStatus::Cancelled => result.stats.cancelled = true,
            RequestStatus::DeadlineExceeded => result.stats.deadline_exceeded = true,
            RequestStatus::Completed => {}
        }
        let outcome = ServiceOutcome {
            result,
            status,
            queue_wait: self.submitted.elapsed(),
            time_to_first_candidate: None,
        };
        (self.outcome, outcome)
    }

    /// Resolve the ticket of a request that never ran.
    fn resolve_unrun(self, status: RequestStatus) {
        let (sender, outcome) = self.into_unrun(status);
        let _ = sender.send(outcome);
    }
}

/// Admission state, guarded by one mutex: who is live, who is waiting, and
/// the driver threads to join at shutdown.
#[derive(Default)]
struct Admission {
    next_id: u64,
    live: Vec<LiveEntry>,
    queued: [VecDeque<Pending>; 3],
    drivers: Vec<JoinHandle<()>>,
}

struct LiveEntry {
    id: u64,
    class: PriorityClass,
    control: SessionControl,
}

impl Admission {
    fn queued_total(&self) -> usize {
        self.queued.iter().map(|q| q.len()).sum()
    }

    /// Pop the next waiting request in strict class order (interactive before
    /// batch before background), FIFO within a class.
    fn pop_queued(&mut self) -> Option<Pending> {
        self.queued.iter_mut().find_map(|q| q.pop_front())
    }
}

/// State shared between the service handle, its driver threads and the
/// housekeeping thread.
pub(crate) struct Shared {
    cfg: ServiceConfig,
    handle: SchedulerHandle,
    state: Mutex<Admission>,
    /// Signalled whenever the queued set changes (a submit, a ticket
    /// cancellation, shutdown) so the housekeeping thread re-examines it.
    queue_changed: Condvar,
    counters: [ClassCounters; 3],
    shutdown: AtomicBool,
}

impl Shared {
    /// Wake the housekeeping thread to re-examine the queued set. Takes the
    /// state lock so the wakeup cannot slot between the housekeeper's check
    /// and its wait.
    pub(crate) fn notify_queue_changed(&self) {
        let _guard = self.state.lock().expect("service state poisoned");
        self.queue_changed.notify_all();
    }

    fn bump(&self, class: PriorityClass, status: RequestStatus) {
        let counters = &self.counters[class.index()];
        let counter = match status {
            RequestStatus::Completed => &counters.completed,
            RequestStatus::Cancelled => &counters.cancelled,
            RequestStatus::DeadlineExceeded => &counters.expired,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a request live and spawn its driver thread. Caller holds the
    /// admission lock.
    fn start_locked(self: &Arc<Self>, state: &mut Admission, pending: Pending) {
        state.live.push(LiveEntry {
            id: pending.id,
            class: pending.req.priority,
            control: pending.control.clone(),
        });
        // Opportunistically shed handles of drivers that already finished so
        // the join list doesn't grow without bound on a long-lived service.
        state.drivers.retain(|h| !h.is_finished());
        let shared = Arc::clone(self);
        let driver = std::thread::Builder::new()
            .name(format!("duoquest-service-{}", pending.id))
            .spawn(move || drive(shared, pending))
            .expect("failed to spawn service driver");
        state.drivers.push(driver);
    }
}

/// Driver thread: run one admitted request to its outcome, then promote
/// queued work into the freed slot.
fn drive(shared: Arc<Shared>, pending: Pending) {
    let id = pending.id;
    // A worker panic is rethrown on this thread by the scheduler's dispatch
    // (and a guidance model can panic here directly); catch it so the live
    // slot is always freed — one poisoned request must not wedge the
    // service's capacity. The outcome sender is owned by the closure, so a
    // panicking run drops it undelivered and the ticket holder's `wait`
    // reports the vanished driver.
    let delivery =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_request(&shared, pending)));
    // Free the live slot (promoting queued work) before resolving the
    // ticket: a consumer that observes the outcome also observes the slot
    // released.
    finish(&shared, id);
    if let Ok((sender, outcome)) = delivery {
        let _ = sender.send(outcome);
    }
}

/// Run one admitted request and build its outcome (not yet delivered — the
/// caller frees the live slot first).
fn run_request(shared: &Arc<Shared>, pending: Pending) -> (Sender<ServiceOutcome>, ServiceOutcome) {
    let class = pending.req.priority;
    if pending.control.is_cancelled() {
        // Cancelled while queued (or between admission and start).
        shared.bump(class, RequestStatus::Cancelled);
        return pending.into_unrun(RequestStatus::Cancelled);
    }
    if pending.control.deadline().is_some_and(|d| Instant::now() >= d) {
        // Expired while queued: never start a run the deadline already ate.
        shared.bump(class, RequestStatus::DeadlineExceeded);
        return pending.into_unrun(RequestStatus::DeadlineExceeded);
    }
    let Pending { req, control, submitted, candidates, outcome, .. } = pending;
    let queue_wait = submitted.elapsed();
    let SynthesisRequest { db, nlq, tsq, model, config, .. } = req;
    let mut session = SynthesisSession::new(db, nlq, model)
        .with_config(config)
        .with_control(control.clone())
        .with_priority_weight(class.weight())
        .with_scheduler(shared.handle.clone());
    if let Some(tsq) = tsq {
        session = session.with_tsq(tsq);
    }
    let mut ttfc: Option<Duration> = None;
    let result = session.run_with(|candidate| {
        if ttfc.is_none() {
            let sample = submitted.elapsed();
            ttfc = Some(sample);
            shared.counters[class.index()].record_ttfc(sample);
        }
        // A dropped ticket reads as "stop" (its Drop also fires the
        // cancellation token, which reaps queued units).
        candidates.send(candidate.clone()).is_ok()
    });
    let status = if result.stats.cancelled || control.is_cancelled() {
        RequestStatus::Cancelled
    } else if result.stats.deadline_exceeded
        && control.deadline().is_some_and(|d| Instant::now() >= d)
    {
        // Only the request's own service deadline counts as expiry; the
        // engine's `time_budget` cutting the search is a normal completion
        // mode (like `max_candidates`), visible in the run's stats.
        RequestStatus::DeadlineExceeded
    } else {
        RequestStatus::Completed
    };
    shared.bump(class, status);
    // Close the candidate stream before the outcome resolves so a consumer
    // draining the ticket sees the stream end first.
    drop(candidates);
    (outcome, ServiceOutcome { result, status, queue_wait, time_to_first_candidate: ttfc })
}

/// Housekeeping thread: resolves queued requests whose deadline passes — or
/// whose ticket is cancelled — while every live slot stays busy. Without it,
/// queued requests would only be examined when a slot frees, so a deadline
/// could be overshot by the full runtime of the requests ahead of it.
///
/// Sleeps until the earliest queued deadline (or until [`Shared::queue_changed`]
/// signals a queue mutation) and resolves overdue/cancelled entries in place.
fn housekeeper(shared: Arc<Shared>) {
    let mut state = shared.state.lock().expect("service state poisoned");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        for class_queue in &mut state.queued {
            let mut kept = VecDeque::new();
            while let Some(pending) = class_queue.pop_front() {
                if pending.control.is_cancelled() {
                    shared.bump(pending.req.priority, RequestStatus::Cancelled);
                    pending.resolve_unrun(RequestStatus::Cancelled);
                } else if pending.control.deadline().is_some_and(|d| now >= d) {
                    shared.bump(pending.req.priority, RequestStatus::DeadlineExceeded);
                    pending.resolve_unrun(RequestStatus::DeadlineExceeded);
                } else {
                    kept.push_back(pending);
                }
            }
            *class_queue = kept;
        }
        let next_deadline =
            state.queued.iter().flatten().filter_map(|p| p.control.deadline()).min();
        state = match next_deadline {
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                shared.queue_changed.wait_timeout(state, timeout).expect("service state poisoned").0
            }
            None => shared.queue_changed.wait(state).expect("service state poisoned"),
        };
    }
}

/// Free the request's live slot and promote queued work into it.
fn finish(shared: &Arc<Shared>, id: u64) {
    let mut state = shared.state.lock().expect("service state poisoned");
    state.live.retain(|l| l.id != id);
    if shared.shutdown.load(Ordering::SeqCst) {
        return;
    }
    while state.live.len() < shared.cfg.max_live_sessions.max(1) {
        let Some(next) = state.pop_queued() else { break };
        if next.control.is_cancelled() {
            // Cancelled while waiting: resolve without occupying the slot.
            shared.bump(next.req.priority, RequestStatus::Cancelled);
            next.resolve_unrun(RequestStatus::Cancelled);
            continue;
        }
        shared.start_locked(&mut state, next);
    }
}

/// The serving endpoint: one shared scheduler pool, an admission-controlled
/// request queue, and per-request tickets (see the [module docs](self) for
/// the lifecycle).
///
/// Dropping the service cancels everything still live or queued, joins every
/// driver thread, and shuts the scheduler pool down.
pub struct SynthesisService {
    shared: Arc<Shared>,
    housekeeper: Option<JoinHandle<()>>,
    /// Owned pool; dropped after the explicit `Drop` body has cancelled and
    /// joined every driver, so no session ever outlives its scheduler.
    _scheduler: SessionScheduler,
}

impl SynthesisService {
    /// Spawn a service with its own scheduler pool sized per `cfg.workers`.
    pub fn new(cfg: ServiceConfig) -> Self {
        let scheduler = if cfg.workers == 0 {
            SessionScheduler::for_machine()
        } else {
            SessionScheduler::new(cfg.workers)
        };
        let ttfc_samples = cfg.ttfc_samples;
        let shared = Arc::new(Shared {
            cfg,
            handle: scheduler.handle(),
            state: Mutex::new(Admission::default()),
            queue_changed: Condvar::new(),
            counters: std::array::from_fn(|_| ClassCounters::new(ttfc_samples)),
            shutdown: AtomicBool::new(false),
        });
        let housekeeper = std::thread::Builder::new()
            .name("duoquest-service-housekeeper".into())
            .spawn({
                let shared = Arc::clone(&shared);
                move || housekeeper(shared)
            })
            .expect("failed to spawn service housekeeper");
        SynthesisService { shared, housekeeper: Some(housekeeper), _scheduler: scheduler }
    }

    /// A service with the default configuration (pool sized to the machine).
    pub fn with_defaults() -> Self {
        SynthesisService::new(ServiceConfig::default())
    }

    /// Submit a request. Admission control applies immediately:
    ///
    /// * under `max_live_sessions` live requests, the run starts now;
    /// * otherwise, under `max_queued` waiting requests, it queues (per-class
    ///   FIFO; a finishing request promotes the highest non-empty class);
    /// * otherwise the request is **shed**: [`AdmissionError::Overloaded`],
    ///   and the per-class `shed` counter ticks.
    ///
    /// The returned [`Ticket`] streams candidates as they survive
    /// verification and resolves to a [`ServiceOutcome`]; dropping it cancels
    /// the request.
    pub fn submit(&self, req: SynthesisRequest) -> Result<Ticket, AdmissionError> {
        let now = Instant::now();
        let class = req.priority;
        let mut control = SessionControl::new();
        if let Some(budget) = req.deadline {
            control = control.with_deadline(now + budget);
        }
        let (cand_tx, cand_rx) = mpsc::channel();
        let (out_tx, out_rx) = mpsc::channel();
        let mut state = self.shared.state.lock().expect("service state poisoned");
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(AdmissionError::ShuttingDown);
        }
        let id = state.next_id;
        state.next_id += 1;
        let pending = Pending {
            id,
            req,
            control: control.clone(),
            submitted: now,
            candidates: cand_tx,
            outcome: out_tx,
        };
        if state.live.len() < self.shared.cfg.max_live_sessions.max(1) {
            self.shared.start_locked(&mut state, pending);
        } else if state.queued_total() < self.shared.cfg.max_queued {
            state.queued[class.index()].push_back(pending);
            // Let the housekeeper re-anchor its sleep on the new entry's
            // deadline.
            self.shared.queue_changed.notify_all();
        } else {
            self.shared.counters[class.index()].shed.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::Overloaded {
                live: state.live.len(),
                queued: state.queued_total(),
            });
        }
        self.shared.counters[class.index()].submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        Ok(Ticket {
            id,
            priority: class,
            control,
            candidates: cand_rx,
            outcome: out_rx,
            scheduler: self.shared.handle.clone(),
            shared: Arc::downgrade(&self.shared),
            received: None,
        })
    }

    /// A handle on the service's shared scheduler pool (for pool-level
    /// stats or advanced integrations).
    pub fn scheduler_handle(&self) -> SchedulerHandle {
        self.shared.handle.clone()
    }

    /// Snapshot the service: per-class admission state, counters and TTFC
    /// percentiles, plus the scheduler pool's load.
    pub fn stats(&self) -> ServiceStats {
        let state = self.shared.state.lock().expect("service state poisoned");
        let classes = std::array::from_fn(|i| {
            let class = PriorityClass::ALL[i];
            let counters = &self.shared.counters[i];
            let [p50, p95] =
                counters.ttfc.lock().expect("ttfc reservoir poisoned").percentiles([50, 95]);
            ClassStats {
                class,
                queued: state.queued[i].len(),
                live: state.live.iter().filter(|l| l.class == class).count(),
                submitted: counters.submitted.load(Ordering::Relaxed),
                completed: counters.completed.load(Ordering::Relaxed),
                cancelled: counters.cancelled.load(Ordering::Relaxed),
                expired: counters.expired.load(Ordering::Relaxed),
                shed: counters.shed.load(Ordering::Relaxed),
                ttfc_p50: p50,
                ttfc_p95: p95,
            }
        });
        ServiceStats {
            live_sessions: state.live.len(),
            queued_requests: state.queued.iter().map(|q| q.len()).sum(),
            classes,
            scheduler: self.shared.handle.stats(),
        }
    }
}

impl Drop for SynthesisService {
    /// Shut down: refuse new work, cancel everything live, resolve everything
    /// queued as cancelled, join the housekeeper and the drivers — then the
    /// owned scheduler field drops, joining the pool's workers.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut state = self.shared.state.lock().expect("service state poisoned");
        for live in &state.live {
            live.control.cancel();
        }
        for class_queue in &mut state.queued {
            for pending in class_queue.drain(..) {
                pending.control.cancel();
                self.shared.bump(pending.req.priority, RequestStatus::Cancelled);
                pending.resolve_unrun(RequestStatus::Cancelled);
            }
        }
        let drivers = std::mem::take(&mut state.drivers);
        self.shared.queue_changed.notify_all();
        drop(state);
        self.shared.handle.reap_cancelled();
        if let Some(housekeeper) = self.housekeeper.take() {
            let _ = housekeeper.join();
        }
        for driver in drivers {
            let _ = driver.join();
        }
    }
}

impl std::fmt::Debug for SynthesisService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesisService").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_core::DuoquestConfig;
    use duoquest_db::{CmpOp, Database, Schema};
    use duoquest_nlq::{GuidanceModel, Literal, Nlq, NoisyOracleGuidance, OracleConfig};
    use duoquest_sql::QueryBuilder;

    fn movie_db() -> Database {
        use duoquest_db::{ColumnDef, TableDef, Value};
        let mut schema = Schema::new("movies-test");
        schema.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        let mut db = Database::new(schema).unwrap();
        db.insert_all(
            "movies",
            vec![
                vec![Value::int(1), Value::text("Heat"), Value::int(1995)],
                vec![Value::int(2), Value::text("Forrest Gump"), Value::int(1994)],
                vec![Value::int(3), Value::text("Up"), Value::int(2009)],
            ],
        )
        .unwrap();
        db.rebuild_index();
        db
    }

    fn request(db: &Arc<Database>, max_candidates: usize) -> SynthesisRequest {
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let model: Arc<dyn GuidanceModel> =
            Arc::new(NoisyOracleGuidance::with_config(gold, 3, OracleConfig::perfect()));
        let mut config = DuoquestConfig::fast();
        config.max_candidates = max_candidates;
        config.time_budget = None;
        SynthesisRequest::new(Arc::clone(db), nlq, model).with_config(config)
    }

    #[test]
    fn completed_request_matches_private_session() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 2,
            max_live_sessions: 2,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let req = request(&db, 20);
        let outcome = service.submit(req).unwrap().wait();
        assert_eq!(outcome.status, RequestStatus::Completed);
        assert!(outcome.time_to_first_candidate.is_some());

        let solo_req = request(&db, 20);
        let SynthesisRequest { db, nlq, model, config, .. } = solo_req;
        let solo = SynthesisSession::new(db, nlq, model).with_config(config).run();
        let render = |r: &SynthesisResult| {
            r.candidates.iter().map(|c| (format!("{:?}", c.spec), c.confidence)).collect::<Vec<_>>()
        };
        assert_eq!(render(&outcome.result), render(&solo));
    }

    #[test]
    fn queue_promotes_in_class_order_and_sheds_on_full() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 2,
            ..ServiceConfig::default()
        });
        // Occupy the single live slot, then fill the queue.
        let first = service.submit(request(&db, 50)).unwrap();
        let background =
            service.submit(request(&db, 5).with_priority(PriorityClass::Background)).unwrap();
        let interactive =
            service.submit(request(&db, 5).with_priority(PriorityClass::Interactive)).unwrap();
        // Queue is at its bound of 2: the next submit is shed.
        let shed = service.submit(request(&db, 5).with_priority(PriorityClass::Batch));
        assert!(matches!(shed, Err(AdmissionError::Overloaded { .. })), "{shed:?}");
        let stats = service.stats();
        assert_eq!(stats.class(PriorityClass::Batch).shed, 1);
        assert_eq!(stats.total_shed(), 1);

        // The interactive request (submitted after the background one) is
        // promoted first once the live slot frees.
        let first_outcome = first.wait();
        assert_eq!(first_outcome.status, RequestStatus::Completed);
        let interactive_outcome = interactive.wait();
        let background_outcome = background.wait();
        assert_eq!(interactive_outcome.status, RequestStatus::Completed);
        assert_eq!(background_outcome.status, RequestStatus::Completed);
        assert!(
            interactive_outcome.queue_wait <= background_outcome.queue_wait,
            "interactive must leave the queue first: {:?} vs {:?}",
            interactive_outcome.queue_wait,
            background_outcome.queue_wait
        );
    }

    #[test]
    fn cancelling_a_queued_request_resolves_without_running() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let running = service.submit(request(&db, 50)).unwrap();
        let queued = service.submit(request(&db, 50)).unwrap();
        queued.cancel();
        let queued_outcome = queued.wait();
        assert_eq!(queued_outcome.status, RequestStatus::Cancelled);
        assert!(queued_outcome.result.candidates.is_empty());
        assert!(queued_outcome.time_to_first_candidate.is_none());
        assert_eq!(running.wait().status, RequestStatus::Completed);
        let stats = service.stats();
        assert_eq!(stats.class(PriorityClass::Interactive).cancelled, 1);
        assert_eq!(stats.class(PriorityClass::Interactive).completed, 1);
    }

    #[test]
    fn zero_deadline_expires_while_queued() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let running = service.submit(request(&db, 50)).unwrap();
        let doomed = service.submit(request(&db, 50).with_deadline(Duration::ZERO)).unwrap();
        let outcome = doomed.wait();
        assert_eq!(outcome.status, RequestStatus::DeadlineExceeded);
        assert!(outcome.result.stats.deadline_exceeded);
        assert!(outcome.result.candidates.is_empty());
        assert_eq!(running.wait().status, RequestStatus::Completed);
        assert_eq!(service.stats().class(PriorityClass::Interactive).expired, 1);
    }

    #[test]
    fn dropping_the_service_cancels_queued_requests() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let _running = service.submit(request(&db, 50)).unwrap();
        let queued = service.submit(request(&db, 50)).unwrap();
        drop(service);
        let outcome = queued.wait();
        assert_eq!(outcome.status, RequestStatus::Cancelled);
    }

    #[test]
    fn stats_json_parses_and_round_trips() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 2,
            max_queued: 2,
            ..ServiceConfig::default()
        });
        let outcome =
            service.submit(request(&db, 10).with_priority(PriorityClass::Batch)).unwrap().wait();
        assert_eq!(outcome.status, RequestStatus::Completed);
        let stats = service.stats();
        let parsed = json::Json::parse(&stats.to_json()).expect("stats JSON parses");
        let batch = parsed.get("classes").and_then(|c| c.get("batch")).expect("batch section");
        assert_eq!(batch.get("completed").and_then(json::Json::as_u64), Some(1));
        assert_eq!(batch.get("submitted").and_then(json::Json::as_u64), Some(1));
        assert_eq!(
            batch.get("ttfc_p50_us").and_then(json::Json::as_u64),
            stats.class(PriorityClass::Batch).ttfc_p50.map(|d| d.as_micros() as u64)
        );
        assert_eq!(
            parsed.get("live_sessions").and_then(json::Json::as_u64),
            Some(stats.live_sessions as u64)
        );
        let sched = parsed.get("scheduler").expect("scheduler section");
        assert_eq!(
            sched.get("workers").and_then(json::Json::as_u64),
            Some(stats.scheduler.workers as u64)
        );
    }
}
