//! # duoquest-service
//!
//! The multi-tenant serving layer over the synthesis core: a
//! [`SynthesisService`] owns one shared
//! [`SessionScheduler`] pool and exposes a
//! request lifecycle shaped like a production endpoint — many users submit
//! NL+TSQ tasks concurrently, each with a priority class, an optional
//! deadline, and a cancellable ticket.
//!
//! # Request lifecycle (event-driven — no per-request threads)
//!
//! ```text
//!  submit(SynthesisRequest)
//!        │
//!        ▼                 capacity?
//!  ┌─ admission ─────────────────────────────────────────────┐
//!  │ live < max_live ──────────► start: session driven BY    │
//!  │                             the pool (no thread)        │
//!  │ else queued < max_queued ─► queue (per-class FIFO)      │
//!  │ else ─────────────────────► shed: Err(Overloaded)       │
//!  └─────────────────────────────────────────────────────────┘
//!        │ start                      ▲ a completing request
//!        ▼                            │ promotes the head of the
//!  RoundDriver state machine parked   │ highest non-empty class
//!  in the SessionScheduler; pool      │ queue (from the worker
//!  workers resume it as its chunks    │ that completed it)
//!  complete                           │
//!  (fairness weight = beam × class)   │
//!        │ candidates stream to the Ticket as they survive
//!        ▼
//!  ServiceOutcome { result, status: Completed | Cancelled | DeadlineExceeded }
//! ```
//!
//! A live request is a **scheduler-driven session** (see `docs/DRIVER.md`):
//! its serial round loop is a state machine parked inside the pool, resumed
//! inline by whichever worker completes its last outstanding chunk. The
//! service therefore spawns **zero** per-request OS threads —
//! [`ServiceStats::driver_threads`] reports 0 — and `max_live_sessions` can
//! sit in the thousands, bounded by memory rather than thread count.
//!
//! * **Priorities** ([`PriorityClass`]) weight the shared pool's round-robin
//!   on top of beam width: an interactive session gets 16× the per-rotation
//!   share of a background one, but nobody is starved — every live session is
//!   served each rotation.
//! * **Cancellation**: dropping (or explicitly cancelling) a [`Ticket`] fires
//!   the session's token; queued (session, round-chunk) units are reaped from
//!   the fairness queue before a worker ever pops them, and the run stops at
//!   its next cooperative check. Other requests' emission order is untouched.
//! * **Deadlines** are measured from submission (queue wait counts). A
//!   request past its deadline stops enumerating and resolves with the best
//!   candidates found so far, flagged
//!   [`RequestStatus::DeadlineExceeded`]. Requests whose deadline passes
//!   while still **queued** are expired by the scheduler's tick (the pool's
//!   own event loop — there is no housekeeper thread either).
//! * **Admission control** bounds live sessions and the waiting queue;
//!   overflow is shed at submit time with [`AdmissionError::Overloaded`].
//! * **Observability**: [`SynthesisService::stats`] snapshots per-class queue
//!   depth, p50/p95 time-to-first-candidate, the cancelled/shed/expired
//!   counters, the live-session high-water mark and the (always-zero)
//!   per-request driver-thread count, JSON-renderable via
//!   [`ServiceStats::to_json`].
//!
//! Completed requests keep the engine's determinism contract: for a fixed
//! configuration the emitted candidate sequence is byte-identical to a
//! private-pool [`SynthesisSession`] run,
//! at any priority, under any concurrent load (`tests/determinism.rs`).
//!
//! # Example
//!
//! ```
//! use duoquest_core::DuoquestConfig;
//! use duoquest_db::{ColumnDef, Database, Schema, TableDef, Value};
//! use duoquest_nlq::{HeuristicGuidance, Literal, Nlq};
//! use duoquest_service::{PriorityClass, RequestStatus, ServiceConfig, SynthesisRequest,
//!     SynthesisService};
//! use std::sync::Arc;
//!
//! let mut schema = Schema::new("demo");
//! schema.add_table(TableDef::new(
//!     "movies",
//!     vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
//!     Some(0),
//! ));
//! let mut db = Database::new(schema).unwrap();
//! db.insert("movies", vec![Value::int(1), Value::text("Heat"), Value::int(1995)]).unwrap();
//! db.insert("movies", vec![Value::int(2), Value::text("Up"), Value::int(2009)]).unwrap();
//! db.rebuild_index();
//!
//! let service = SynthesisService::new(ServiceConfig {
//!     workers: 2,
//!     max_live_sessions: 4,
//!     max_queued: 16,
//!     ..ServiceConfig::default()
//! });
//! let nlq = Nlq::with_literals("movie names before 2000", vec![Literal::number(2000.0)]);
//! let request = SynthesisRequest::new(
//!     db.into_shared(),
//!     nlq,
//!     Arc::new(HeuristicGuidance::new()),
//! )
//! .with_config(DuoquestConfig::fast())
//! .with_priority(PriorityClass::Interactive);
//!
//! let ticket = service.submit(request).unwrap();
//! let outcome = ticket.wait();
//! assert_eq!(outcome.status, RequestStatus::Completed);
//! assert!(!outcome.result.candidates.is_empty());
//! assert_eq!(service.stats().class(PriorityClass::Interactive).completed, 1);
//! ```

#![warn(missing_docs)]

pub mod json;
mod request;
mod stats;
mod ticket;

pub use request::{AdmissionError, PriorityClass, ServiceConfig, SynthesisRequest};
pub use stats::{ClassStats, ServiceStats};
pub use ticket::{RequestStatus, ServiceOutcome, Ticket};

use duoquest_core::{
    system_clock, Candidate, DrivenOutcome, SchedulerHandle, SessionControl, SessionScheduler,
    SharedClock, SynthesisResult, SynthesisSession,
};
use duoquest_obs::{Exposition, FlightRecorder, Histogram, Trace, ROOT_SPAN, TERMINAL_EVENT};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-class monotone counters plus lossless latency histograms. The
/// histograms are `duoquest_obs` log-bucketed atomics — unlike the sampling
/// reservoir they replaced, every request lands (no loss under load) and
/// recording is lock-free.
struct ClassCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    shed: AtomicU64,
    /// Time from submission to first emitted candidate.
    ttfc: Histogram,
    /// Time from submission to run start (admission queue wait).
    queue_wait: Histogram,
}

impl ClassCounters {
    fn new() -> Self {
        ClassCounters {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            ttfc: Histogram::new(),
            queue_wait: Histogram::new(),
        }
    }

    fn record_ttfc(&self, sample: Duration) {
        self.ttfc.record(sample);
    }
}

/// A streaming candidate sink attached at submit time (see
/// [`SynthesisService::submit_with_observer`]). Called on whichever pool
/// worker emits the candidate, in emission order; returning `false` stops
/// the run (it resolves as [`RequestStatus::Cancelled`]). When an observer
/// is attached it **replaces** delivery through the ticket's candidate
/// channel — the ticket still resolves to the full [`ServiceOutcome`].
pub type CandidateObserver = Box<dyn FnMut(&Candidate) -> bool + Send>;

/// A request admitted but not yet finished: everything needed to start it
/// as a scheduler-driven session and resolve its ticket.
struct Pending {
    id: u64,
    req: SynthesisRequest,
    control: SessionControl,
    submitted: Instant,
    candidates: Sender<Candidate>,
    outcome: Sender<ServiceOutcome>,
    observer: Option<CandidateObserver>,
    /// The request's span timeline (`None` when `ServiceConfig::tracing` is
    /// off). Anchored at the service's start instant, so under a simulated
    /// clock every offset lands directly on the virtual timeline.
    trace: Option<Arc<Trace>>,
}

impl Pending {
    /// Build the outcome of a request that never ran (cancelled or expired
    /// while queued), returning the sender to deliver it through. `now` is
    /// the service clock's current time (so simulated runs report simulated
    /// queue waits).
    fn into_unrun(
        self,
        status: RequestStatus,
        now: Instant,
    ) -> (Sender<ServiceOutcome>, ServiceOutcome) {
        let mut result = SynthesisResult::default();
        match status {
            RequestStatus::Cancelled => result.stats.cancelled = true,
            RequestStatus::DeadlineExceeded => result.stats.deadline_exceeded = true,
            RequestStatus::Completed => {}
        }
        let outcome = ServiceOutcome {
            result,
            status,
            queue_wait: now.saturating_duration_since(self.submitted),
            time_to_first_candidate: None,
        };
        (self.outcome, outcome)
    }

    /// Resolve the ticket of a request that never ran, closing out its trace
    /// (root span, terminal event, flight-recorder retention) on the way.
    fn resolve_unrun(self, status: RequestStatus, now: Instant, shared: &Shared) {
        if let Some(trace) = &self.trace {
            if status == RequestStatus::DeadlineExceeded {
                trace.mark_anomalous();
            }
            trace.record_span(ROOT_SPAN, self.submitted, now);
            trace.event(TERMINAL_EVENT, now, Some(status.label().to_string()));
            shared.flight.push(Arc::clone(trace));
        }
        let (sender, outcome) = self.into_unrun(status, now);
        let _ = sender.send(outcome);
    }
}

/// Admission state, guarded by one mutex: who is live and who is waiting.
/// (There are no per-request threads — and therefore no join-handle
/// bookkeeping to leak: live requests exist only as driven-session state
/// parked inside the scheduler.)
#[derive(Default)]
struct Admission {
    next_id: u64,
    live: Vec<LiveEntry>,
    queued: [VecDeque<Pending>; 3],
}

struct LiveEntry {
    id: u64,
    class: PriorityClass,
    control: SessionControl,
}

impl Admission {
    fn queued_total(&self) -> usize {
        self.queued.iter().map(|q| q.len()).sum()
    }

    /// Pop the next waiting request in strict class order (interactive before
    /// batch before background), FIFO within a class.
    fn pop_queued(&mut self) -> Option<Pending> {
        self.queued.iter_mut().find_map(|q| q.pop_front())
    }
}

/// State shared between the service handle, the scheduler's tick hook, and
/// the driven sessions' completion callbacks (which run on pool workers).
pub(crate) struct Shared {
    cfg: ServiceConfig,
    handle: SchedulerHandle,
    /// The pool's clock: every timestamp the service takes (submit anchors,
    /// deadline checks, queue sweeps, TTFC samples) reads from here, so a
    /// simulated pool keeps the whole service on the simulated timeline.
    clock: SharedClock,
    /// The clock's reading at service construction: the anchor every request
    /// trace measures its offsets from. Under a `SimClock` built for a test
    /// run this is virtual time zero, so trace offsets equal simulated
    /// microseconds — the property the DST trace oracles check.
    started: Instant,
    state: Mutex<Admission>,
    counters: [ClassCounters; 3],
    shutdown: AtomicBool,
    /// High-water mark of concurrently live requests.
    live_peak: AtomicUsize,
    /// Bounded ring of recently finished request traces (`GET /trace/<id>`
    /// on the net front reads from here).
    flight: FlightRecorder,
}

impl Shared {
    /// Ask the scheduler's tick to re-examine the queued set now (a ticket
    /// cancellation, a shutdown): the next free pool worker runs the sweep.
    pub(crate) fn notify_queue_changed(&self) {
        self.handle.request_tick(self.clock.now());
    }

    fn bump(&self, class: PriorityClass, status: RequestStatus) {
        let counters = &self.counters[class.index()];
        let counter = match status {
            RequestStatus::Completed => &counters.completed,
            RequestStatus::Cancelled => &counters.cancelled,
            RequestStatus::DeadlineExceeded => &counters.expired,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Try to claim a free live slot for a request. Returns the pending
    /// request to be started (via [`Shared::start_unlocked`], **after** the
    /// admission lock is released — session setup and scheduler registration
    /// are not cheap enough to serialize every submit behind), or `None` when
    /// the request was already cancelled or past its deadline, in which case
    /// it resolves unrun here without consuming the slot. Caller holds the
    /// admission lock.
    fn claim_slot_locked(&self, state: &mut Admission, pending: Pending) -> Option<Pending> {
        let class = pending.req.priority;
        let now = self.clock.now();
        if pending.control.is_cancelled() {
            // Cancelled while queued (or between admission and start).
            self.bump(class, RequestStatus::Cancelled);
            pending.resolve_unrun(RequestStatus::Cancelled, now, self);
            return None;
        }
        if pending.control.deadline().is_some_and(|d| now >= d) {
            // Expired while queued: never start a run the deadline already ate.
            self.bump(class, RequestStatus::DeadlineExceeded);
            pending.resolve_unrun(RequestStatus::DeadlineExceeded, now, self);
            return None;
        }
        state.live.push(LiveEntry { id: pending.id, class, control: pending.control.clone() });
        self.live_peak.fetch_max(state.live.len(), Ordering::Relaxed);
        Some(pending)
    }

    /// Start a claimed request: register it with the scheduler as a
    /// **driven session** — no thread is spawned; pool workers resume its
    /// state machine as chunks complete. Runs with no lock held (a cancel
    /// racing in here simply stops the run at its first step).
    fn start_unlocked(self: &Arc<Self>, pending: Pending) {
        let class = pending.req.priority;
        let Pending { id, req, control, submitted, candidates, outcome, mut observer, trace } =
            pending;
        let started = self.clock.now();
        let queue_wait = started.saturating_duration_since(submitted);
        self.counters[class.index()].queue_wait.record(queue_wait);
        if let Some(trace) = &trace {
            trace.record_span("queue_wait", submitted, started);
        }
        let SynthesisRequest { db, nlq, tsq, model, config, .. } = req;
        let mut session = SynthesisSession::new(db, nlq, model)
            .with_config(config)
            .with_control(control.clone())
            .with_priority_weight(class.weight());
        if let Some(tsq) = tsq {
            session = session.with_tsq(tsq);
        }
        if let Some(trace) = &trace {
            session = session.with_trace(Arc::clone(trace));
        }

        // Time-to-first-candidate is observed by the candidate sink but
        // reported in the outcome, so the two callbacks share the slot.
        let ttfc = Arc::new(Mutex::new(None::<Duration>));
        let shared = Arc::clone(self);
        let ttfc_sink = Arc::clone(&ttfc);
        let sink_control = control.clone();
        let sink_trace = trace.clone();
        let on_candidate = Box::new(move |candidate: &Candidate| {
            {
                let mut slot = ttfc_sink.lock().expect("ttfc slot poisoned");
                if slot.is_none() {
                    let sample = shared.clock.now().saturating_duration_since(submitted);
                    *slot = Some(sample);
                    shared.counters[class.index()].record_ttfc(sample);
                }
            }
            // Each delivery is a traced span: with the net front attached the
            // observer is its bounded outbox push, so this is the
            // outbox-write timing; otherwise it is the ticket-channel send.
            let write_started = sink_trace.as_ref().map(|_| shared.clock.now());
            // An attached observer replaces channel delivery (the net front
            // writes straight to its connection outbox); otherwise a dropped
            // ticket reads as "stop" (its Drop also fires the cancellation
            // token, which reaps queued units).
            let keep = match observer.as_mut() {
                Some(sink) => {
                    let keep = sink(candidate);
                    if !keep {
                        // Mirror a dropped ticket: the observer declining
                        // delivery fires the token so the request resolves
                        // as cancelled, not completed.
                        sink_control.cancel();
                    }
                    keep
                }
                None => candidates.send(candidate.clone()).is_ok(),
            };
            if let (Some(trace), Some(started)) = (&sink_trace, write_started) {
                trace.record_span("deliver", started, shared.clock.now());
            }
            keep
        });

        let shared = Arc::clone(self);
        let on_complete = Box::new(move |delivered: DrivenOutcome| {
            // Free the live slot (promoting queued work) before resolving
            // the ticket: a consumer that observes the outcome also observes
            // the slot released. A panicked (poisoned) session frees its
            // slot too but delivers no outcome — the ticket holder's `wait`
            // reports the vanished request.
            finish(&shared, id);
            let now = shared.clock.now();
            let result = match delivered {
                DrivenOutcome::Finished(result) => result,
                DrivenOutcome::Poisoned(message) => {
                    // The panic payload lands on the trace's terminal event
                    // and in the flight recorder instead of disappearing
                    // with the pool worker that hit it.
                    if let Some(trace) = &trace {
                        trace.mark_anomalous();
                        trace.record_span(ROOT_SPAN, submitted, now);
                        let detail = match message {
                            Some(msg) => format!("panicked: {msg}"),
                            None => "panicked".to_string(),
                        };
                        trace.event(TERMINAL_EVENT, now, Some(detail));
                        shared.flight.push(Arc::clone(trace));
                    }
                    return;
                }
            };
            let status = if result.stats.cancelled || control.is_cancelled() {
                RequestStatus::Cancelled
            } else if result.stats.deadline_exceeded && control.deadline().is_some_and(|d| now >= d)
            {
                // Only the request's own service deadline counts as expiry;
                // the engine's `time_budget` cutting the search is a normal
                // completion mode (like `max_candidates`), visible in the
                // run's stats.
                RequestStatus::DeadlineExceeded
            } else {
                RequestStatus::Completed
            };
            shared.bump(class, status);
            if let Some(trace) = &trace {
                if status == RequestStatus::DeadlineExceeded {
                    trace.mark_anomalous();
                }
                trace.record_span(ROOT_SPAN, submitted, now);
                trace.event(TERMINAL_EVENT, now, Some(status.label().to_string()));
                shared.flight.push(Arc::clone(trace));
            }
            // The candidate sink (and with it the candidate sender) was
            // dropped by the scheduler before this callback fired, so a
            // consumer draining the ticket sees the stream end first.
            let _ = outcome.send(ServiceOutcome {
                result,
                status,
                queue_wait,
                time_to_first_candidate: *ttfc.lock().expect("ttfc slot poisoned"),
            });
        });
        session.spawn_driven(&self.handle, on_candidate, on_complete);
    }

    /// One housekeeping pass over the admission queue (the scheduler's tick
    /// hook): resolve queued requests whose ticket was cancelled or whose
    /// deadline passed while every live slot stayed busy, and return the
    /// earliest remaining queued deadline as the next tick time. Without
    /// this, queued requests would only be examined when a slot frees, so a
    /// deadline could be overshot by the full runtime of the requests ahead
    /// of it.
    fn sweep_queue(self: &Arc<Self>) -> Option<Instant> {
        let mut state = self.state.lock().expect("service state poisoned");
        if self.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let now = self.clock.now();
        for class_queue in &mut state.queued {
            let mut kept = VecDeque::new();
            while let Some(pending) = class_queue.pop_front() {
                if pending.control.is_cancelled() {
                    self.bump(pending.req.priority, RequestStatus::Cancelled);
                    pending.resolve_unrun(RequestStatus::Cancelled, now, self);
                } else if pending.control.deadline().is_some_and(|d| now >= d) {
                    self.bump(pending.req.priority, RequestStatus::DeadlineExceeded);
                    pending.resolve_unrun(RequestStatus::DeadlineExceeded, now, self);
                } else {
                    kept.push_back(pending);
                }
            }
            *class_queue = kept;
        }
        state.queued.iter().flatten().filter_map(|p| p.control.deadline()).min()
    }
}

/// Free the request's live slot and promote queued work into it. Runs on
/// whichever pool worker completed the request. Slots are claimed under the
/// admission lock; the promoted sessions are constructed and registered
/// after it drops.
fn finish(shared: &Arc<Shared>, id: u64) {
    let mut state = shared.state.lock().expect("service state poisoned");
    state.live.retain(|l| l.id != id);
    if shared.shutdown.load(Ordering::SeqCst) {
        return;
    }
    let mut promoted = Vec::new();
    while state.live.len() < shared.cfg.max_live_sessions.max(1) {
        let Some(next) = state.pop_queued() else { break };
        // A cancelled or expired candidate resolves unrun without consuming
        // the slot; the loop keeps promoting until the free slots fill or
        // the queue drains.
        promoted.extend(shared.claim_slot_locked(&mut state, next));
    }
    drop(state);
    for pending in promoted {
        shared.start_unlocked(pending);
    }
}

/// The serving endpoint: one shared scheduler pool, an admission-controlled
/// request queue, and per-request tickets (see the [module docs](self) for
/// the lifecycle). The pool's fixed workers are the **only** threads the
/// service owns — requests are scheduler-driven sessions, and queued-request
/// housekeeping rides the scheduler's tick.
///
/// Dropping the service cancels everything still live or queued and shuts
/// the scheduler pool down (which resolves any still-parked request as
/// cancelled).
pub struct SynthesisService {
    shared: Arc<Shared>,
    /// Owned pool; dropped after the explicit `Drop` body has cancelled
    /// everything, so shutdown resolves every remaining request.
    _scheduler: SessionScheduler,
}

impl SynthesisService {
    /// Spawn a service with its own scheduler pool sized per `cfg.workers`.
    pub fn new(cfg: ServiceConfig) -> Self {
        SynthesisService::with_clock(cfg, system_clock())
    }

    /// Spawn a service whose pool — and every service timestamp (submit
    /// anchors, deadlines, queue sweeps, TTFC) — reads time from `clock`.
    /// With a [`SimClock`](duoquest_core::SimClock) the service runs on a
    /// fully virtual timeline: deadlines only expire when the test advances
    /// the clock. This is the entry point deterministic simulation tests use.
    pub fn with_clock(cfg: ServiceConfig, clock: SharedClock) -> Self {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.workers
        };
        let scheduler = SessionScheduler::new_with_clock(workers, Arc::clone(&clock));
        let flight = FlightRecorder::new(cfg.flight_capacity);
        let started = clock.now();
        let shared = Arc::new(Shared {
            cfg,
            handle: scheduler.handle(),
            clock,
            started,
            state: Mutex::new(Admission::default()),
            counters: std::array::from_fn(|_| ClassCounters::new()),
            shutdown: AtomicBool::new(false),
            live_peak: AtomicUsize::new(0),
            flight,
        });
        // Queued-deadline housekeeping is the scheduler's tick: pool workers
        // sweep the admission queue at the earliest queued deadline (or when
        // a cancellation requests an immediate pass).
        let weak = Arc::downgrade(&shared);
        shared.handle.set_tick(move || weak.upgrade().and_then(|shared| shared.sweep_queue()));
        SynthesisService { shared, _scheduler: scheduler }
    }

    /// A service with the default configuration (pool sized to the machine).
    pub fn with_defaults() -> Self {
        SynthesisService::new(ServiceConfig::default())
    }

    /// Submit a request. Admission control applies immediately:
    ///
    /// * under `max_live_sessions` live requests, the run starts now;
    /// * otherwise, under `max_queued` waiting requests, it queues (per-class
    ///   FIFO; a finishing request promotes the highest non-empty class);
    /// * otherwise the request is **shed**: [`AdmissionError::Overloaded`],
    ///   and the per-class `shed` counter ticks.
    ///
    /// The returned [`Ticket`] streams candidates as they survive
    /// verification and resolves to a [`ServiceOutcome`]; dropping it cancels
    /// the request.
    pub fn submit(&self, req: SynthesisRequest) -> Result<Ticket, AdmissionError> {
        self.submit_inner(req, None)
    }

    /// [`SynthesisService::submit`] with a streaming [`CandidateObserver`]
    /// attached: the observer is called on the emitting pool worker for every
    /// candidate (in emission order) **instead of** the ticket's candidate
    /// channel, and returning `false` from it stops the run — the request
    /// resolves as [`RequestStatus::Cancelled`]. This is the hookup the
    /// network front uses: each connection's bounded outbox is the observer,
    /// so a slow or dead client's backpressure reaches the engine without
    /// any intermediate buffering thread.
    ///
    /// The observer must not block for long — it runs inline on a shared
    /// pool worker. Push to a bounded queue and return `false` on overflow
    /// rather than waiting for a consumer.
    pub fn submit_with_observer(
        &self,
        req: SynthesisRequest,
        observer: CandidateObserver,
    ) -> Result<Ticket, AdmissionError> {
        self.submit_inner(req, Some(observer))
    }

    /// Cancel a request by its service-assigned id ([`Ticket::id`]), whether
    /// live or still queued: fires its cancellation token, reaps its queued
    /// pool units and pulls the housekeeping tick forward so a queued request
    /// resolves now. Returns `false` if no live or queued request has this id
    /// (already finished, or never existed). This is the hookup for remote
    /// cancellation, where the party cancelling (a `POST /cancel` on one
    /// connection) does not hold the ticket (owned by another connection's
    /// thread).
    pub fn cancel(&self, id: u64) -> bool {
        let state = self.shared.state.lock().expect("service state poisoned");
        let control =
            state.live.iter().find(|l| l.id == id).map(|l| l.control.clone()).or_else(|| {
                state.queued.iter().flatten().find(|p| p.id == id).map(|p| p.control.clone())
            });
        drop(state);
        let Some(control) = control else { return false };
        control.cancel();
        self.shared.handle.reap_cancelled();
        self.shared.notify_queue_changed();
        true
    }

    fn submit_inner(
        &self,
        req: SynthesisRequest,
        observer: Option<CandidateObserver>,
    ) -> Result<Ticket, AdmissionError> {
        let now = self.shared.clock.now();
        let class = req.priority;
        let mut control = SessionControl::new();
        if let Some(budget) = req.deadline {
            control = control.with_deadline(now + budget);
        }
        let (cand_tx, cand_rx) = mpsc::channel();
        let (out_tx, out_rx) = mpsc::channel();
        let mut state = self.shared.state.lock().expect("service state poisoned");
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(AdmissionError::ShuttingDown);
        }
        let id = state.next_id;
        state.next_id += 1;
        // The trace anchors at the service's start instant, not at `now`:
        // under a simulated clock that puts every offset directly on the
        // virtual timeline, and across requests all traces share one time
        // base (ids disambiguate).
        let trace = self.shared.cfg.tracing.then(|| {
            let trace = Arc::new(Trace::new(id, self.shared.started));
            trace.event("submitted", now, Some(class.label().to_string()));
            trace
        });
        let pending = Pending {
            id,
            req,
            control: control.clone(),
            submitted: now,
            candidates: cand_tx,
            outcome: out_tx,
            observer,
            trace,
        };
        let mut to_start = None;
        if state.live.len() < self.shared.cfg.max_live_sessions.max(1) {
            to_start = self.shared.claim_slot_locked(&mut state, pending);
        } else if state.queued_total() < self.shared.cfg.max_queued {
            if let Some(trace) = &pending.trace {
                trace.event("queued", now, None);
            }
            state.queued[class.index()].push_back(pending);
            // Re-anchor the scheduler's housekeeping tick on the new entry's
            // deadline so a queued request expires on time even while every
            // live slot stays busy.
            if let Some(deadline) = control.deadline() {
                self.shared.handle.request_tick(deadline);
            }
        } else {
            self.shared.counters[class.index()].shed.fetch_add(1, Ordering::Relaxed);
            // A shed request still leaves a (terminal-only, anomalous) trace
            // in the flight recorder: overload is exactly when post-hoc
            // visibility matters most.
            if let Some(trace) = &pending.trace {
                trace.mark_anomalous();
                trace.event(TERMINAL_EVENT, now, Some("shed".to_string()));
                self.shared.flight.push(Arc::clone(trace));
            }
            return Err(AdmissionError::Overloaded {
                live: state.live.len(),
                queued: state.queued_total(),
            });
        }
        self.shared.counters[class.index()].submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        // Session construction and scheduler registration happen off the
        // admission lock, so concurrent submits don't serialize behind them.
        if let Some(pending) = to_start {
            self.shared.start_unlocked(pending);
        }
        Ok(Ticket {
            id,
            priority: class,
            control,
            candidates: cand_rx,
            outcome: out_rx,
            scheduler: self.shared.handle.clone(),
            shared: Arc::downgrade(&self.shared),
            received: None,
        })
    }

    /// A handle on the service's shared scheduler pool (for pool-level
    /// stats or advanced integrations).
    pub fn scheduler_handle(&self) -> SchedulerHandle {
        self.shared.handle.clone()
    }

    /// The service's clock — the same timeline the scheduler pool, every
    /// deadline check and every trace offset read from. Simulated when the
    /// service was built with [`SynthesisService::with_clock`] over a
    /// [`SimClock`](duoquest_core::SimClock).
    pub fn clock(&self) -> SharedClock {
        Arc::clone(&self.shared.clock)
    }

    /// The completed-request trace with this id, if the flight recorder
    /// still retains it (bounded ring, oldest evicted; see
    /// [`ServiceConfig::flight_capacity`]). Live requests are not served —
    /// a trace becomes visible when its request resolves.
    pub fn trace(&self, id: u64) -> Option<Arc<Trace>> {
        self.shared.flight.get(id)
    }

    /// The JSON body of [`SynthesisService::trace`] (the `GET /trace/<id>`
    /// response on the network front).
    pub fn trace_json(&self, id: u64) -> Option<String> {
        self.trace(id).map(|trace| trace.to_json())
    }

    /// Ids of every trace the flight recorder currently retains, oldest
    /// first. The DST harness walks these to prove trace conservation:
    /// every admitted-or-shed request leaves exactly one retained trace.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.shared.flight.ids()
    }

    /// Append the service's metric families to a Prometheus exposition
    /// (the `GET /metrics` body on the network front): per-class request
    /// counters, admission gauges, the TTFC and queue-wait histograms, the
    /// flight-recorder depth and the scheduler pool's load. Metric names
    /// carry the `duoquest_` prefix; per-class series are labelled
    /// `class="interactive" | "batch" | "background"`.
    pub fn render_metrics(&self, expo: &mut Exposition) {
        let per_class_counter =
            |expo: &mut Exposition,
             name: &str,
             help: &str,
             pick: &dyn Fn(&ClassCounters) -> &AtomicU64| {
                for (i, class) in PriorityClass::ALL.iter().enumerate() {
                    let value = pick(&self.shared.counters[i]).load(Ordering::Relaxed);
                    expo.counter(name, help, &[("class", class.label())], value);
                }
            };
        per_class_counter(
            expo,
            "duoquest_requests_submitted_total",
            "Requests admitted (started or queued) since the service started.",
            &|c| &c.submitted,
        );
        per_class_counter(
            expo,
            "duoquest_requests_completed_total",
            "Requests that ran to completion.",
            &|c| &c.completed,
        );
        per_class_counter(
            expo,
            "duoquest_requests_cancelled_total",
            "Requests cancelled (explicitly, by a dropped ticket, or at shutdown).",
            &|c| &c.cancelled,
        );
        per_class_counter(
            expo,
            "duoquest_requests_expired_total",
            "Requests that hit their deadline, running or queued.",
            &|c| &c.expired,
        );
        per_class_counter(
            expo,
            "duoquest_requests_shed_total",
            "Requests refused at admission (live and queue bounds exhausted).",
            &|c| &c.shed,
        );
        let (live_per_class, queued_per_class, live, queued) = {
            let state = self.shared.state.lock().expect("service state poisoned");
            let live_per: [u64; 3] = std::array::from_fn(|i| {
                state.live.iter().filter(|l| l.class == PriorityClass::ALL[i]).count() as u64
            });
            let queued_per: [u64; 3] = std::array::from_fn(|i| state.queued[i].len() as u64);
            (live_per, queued_per, state.live.len() as u64, state.queued_total() as u64)
        };
        for (i, class) in PriorityClass::ALL.iter().enumerate() {
            expo.gauge(
                "duoquest_requests_live",
                "Requests currently running.",
                &[("class", class.label())],
                live_per_class[i],
            );
        }
        for (i, class) in PriorityClass::ALL.iter().enumerate() {
            expo.gauge(
                "duoquest_requests_queued",
                "Requests currently waiting in the admission queue.",
                &[("class", class.label())],
                queued_per_class[i],
            );
        }
        for (i, class) in PriorityClass::ALL.iter().enumerate() {
            expo.histogram(
                "duoquest_ttfc_us",
                "Time from submission to first candidate, microseconds.",
                &[("class", class.label())],
                &self.shared.counters[i].ttfc,
            );
        }
        for (i, class) in PriorityClass::ALL.iter().enumerate() {
            expo.histogram(
                "duoquest_queue_wait_us",
                "Time from submission to run start, microseconds.",
                &[("class", class.label())],
                &self.shared.counters[i].queue_wait,
            );
        }
        expo.gauge("duoquest_live_sessions", "Requests currently running, all classes.", &[], live);
        expo.gauge(
            "duoquest_queued_requests",
            "Requests currently queued, all classes.",
            &[],
            queued,
        );
        expo.gauge(
            "duoquest_live_sessions_peak",
            "High-water mark of concurrently live requests.",
            &[],
            self.shared.live_peak.load(Ordering::Relaxed) as u64,
        );
        expo.gauge(
            "duoquest_flight_traces",
            "Completed request traces retained by the flight recorder.",
            &[],
            self.shared.flight.len() as u64,
        );
        let sched = self.shared.handle.stats();
        expo.gauge(
            "duoquest_scheduler_workers",
            "Worker threads owned by the shared pool.",
            &[],
            sched.workers as u64,
        );
        expo.gauge(
            "duoquest_scheduler_busy_workers",
            "Pool workers currently executing a unit.",
            &[],
            sched.busy_workers as u64,
        );
        expo.gauge(
            "duoquest_scheduler_queue_depth",
            "Work units queued in the pool and not yet picked up.",
            &[],
            sched.queue_depth as u64,
        );
        expo.counter(
            "duoquest_scheduler_units_executed_total",
            "Work units executed since the pool started.",
            &[],
            sched.units_executed,
        );
    }

    /// Snapshot the service: per-class admission state, counters and TTFC
    /// percentiles, plus the scheduler pool's load.
    pub fn stats(&self) -> ServiceStats {
        let state = self.shared.state.lock().expect("service state poisoned");
        let classes = std::array::from_fn(|i| {
            let class = PriorityClass::ALL[i];
            let counters = &self.shared.counters[i];
            let (p50, p95) = (counters.ttfc.quantile(0.50), counters.ttfc.quantile(0.95));
            ClassStats {
                class,
                queued: state.queued[i].len(),
                live: state.live.iter().filter(|l| l.class == class).count(),
                submitted: counters.submitted.load(Ordering::Relaxed),
                completed: counters.completed.load(Ordering::Relaxed),
                cancelled: counters.cancelled.load(Ordering::Relaxed),
                expired: counters.expired.load(Ordering::Relaxed),
                shed: counters.shed.load(Ordering::Relaxed),
                ttfc_p50: p50,
                ttfc_p95: p95,
            }
        });
        ServiceStats {
            live_sessions: state.live.len(),
            queued_requests: state.queued.iter().map(|q| q.len()).sum(),
            live_sessions_peak: self.shared.live_peak.load(Ordering::Relaxed),
            driver_threads: 0,
            classes,
            scheduler: self.shared.handle.stats(),
        }
    }
}

impl Drop for SynthesisService {
    /// Shut down: refuse new work, cancel everything live, resolve everything
    /// queued as cancelled — then the owned scheduler field drops, joining
    /// the pool's fixed workers and resolving any still-parked driven
    /// session as cancelled (its completion callback delivers the cancelled
    /// outcome through the normal path). There are no request threads or
    /// housekeeper threads to join.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut state = self.shared.state.lock().expect("service state poisoned");
        for live in &state.live {
            live.control.cancel();
        }
        let now = self.shared.clock.now();
        for class_queue in &mut state.queued {
            for pending in class_queue.drain(..) {
                pending.control.cancel();
                self.shared.bump(pending.req.priority, RequestStatus::Cancelled);
                pending.resolve_unrun(RequestStatus::Cancelled, now, &self.shared);
            }
        }
        drop(state);
        self.shared.handle.reap_cancelled();
    }
}

impl std::fmt::Debug for SynthesisService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesisService").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_core::DuoquestConfig;
    use duoquest_db::{CmpOp, Database, Schema};
    use duoquest_nlq::{GuidanceModel, Literal, Nlq, NoisyOracleGuidance, OracleConfig};
    use duoquest_sql::QueryBuilder;

    fn movie_db() -> Database {
        use duoquest_db::{ColumnDef, TableDef, Value};
        let mut schema = Schema::new("movies-test");
        schema.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        let mut db = Database::new(schema).unwrap();
        db.insert_all(
            "movies",
            vec![
                vec![Value::int(1), Value::text("Heat"), Value::int(1995)],
                vec![Value::int(2), Value::text("Forrest Gump"), Value::int(1994)],
                vec![Value::int(3), Value::text("Up"), Value::int(2009)],
            ],
        )
        .unwrap();
        db.rebuild_index();
        db
    }

    fn request(db: &Arc<Database>, max_candidates: usize) -> SynthesisRequest {
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let model: Arc<dyn GuidanceModel> =
            Arc::new(NoisyOracleGuidance::with_config(gold, 3, OracleConfig::perfect()));
        let mut config = DuoquestConfig::fast();
        config.max_candidates = max_candidates;
        config.time_budget = None;
        SynthesisRequest::new(Arc::clone(db), nlq, model).with_config(config)
    }

    #[test]
    fn completed_request_matches_private_session() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 2,
            max_live_sessions: 2,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let req = request(&db, 20);
        let outcome = service.submit(req).unwrap().wait();
        assert_eq!(outcome.status, RequestStatus::Completed);
        assert!(outcome.time_to_first_candidate.is_some());

        let solo_req = request(&db, 20);
        let SynthesisRequest { db, nlq, model, config, .. } = solo_req;
        let solo = SynthesisSession::new(db, nlq, model).with_config(config).run();
        let render = |r: &SynthesisResult| {
            r.candidates.iter().map(|c| (format!("{:?}", c.spec), c.confidence)).collect::<Vec<_>>()
        };
        assert_eq!(render(&outcome.result), render(&solo));
    }

    #[test]
    fn queue_promotes_in_class_order_and_sheds_on_full() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 2,
            ..ServiceConfig::default()
        });
        // Occupy the single live slot, then fill the queue.
        let first = service.submit(request(&db, 50)).unwrap();
        let background =
            service.submit(request(&db, 5).with_priority(PriorityClass::Background)).unwrap();
        let interactive =
            service.submit(request(&db, 5).with_priority(PriorityClass::Interactive)).unwrap();
        // Queue is at its bound of 2: the next submit is shed.
        let shed = service.submit(request(&db, 5).with_priority(PriorityClass::Batch));
        assert!(matches!(shed, Err(AdmissionError::Overloaded { .. })), "{shed:?}");
        let stats = service.stats();
        assert_eq!(stats.class(PriorityClass::Batch).shed, 1);
        assert_eq!(stats.total_shed(), 1);

        // The interactive request (submitted after the background one) is
        // promoted first once the live slot frees.
        let first_outcome = first.wait();
        assert_eq!(first_outcome.status, RequestStatus::Completed);
        let interactive_outcome = interactive.wait();
        let background_outcome = background.wait();
        assert_eq!(interactive_outcome.status, RequestStatus::Completed);
        assert_eq!(background_outcome.status, RequestStatus::Completed);
        assert!(
            interactive_outcome.queue_wait <= background_outcome.queue_wait,
            "interactive must leave the queue first: {:?} vs {:?}",
            interactive_outcome.queue_wait,
            background_outcome.queue_wait
        );
    }

    #[test]
    fn cancelling_a_queued_request_resolves_without_running() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let running = service.submit(request(&db, 50)).unwrap();
        let queued = service.submit(request(&db, 50)).unwrap();
        queued.cancel();
        let queued_outcome = queued.wait();
        assert_eq!(queued_outcome.status, RequestStatus::Cancelled);
        assert!(queued_outcome.result.candidates.is_empty());
        assert!(queued_outcome.time_to_first_candidate.is_none());
        assert_eq!(running.wait().status, RequestStatus::Completed);
        let stats = service.stats();
        assert_eq!(stats.class(PriorityClass::Interactive).cancelled, 1);
        assert_eq!(stats.class(PriorityClass::Interactive).completed, 1);
    }

    #[test]
    fn zero_deadline_expires_while_queued() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let running = service.submit(request(&db, 50)).unwrap();
        let doomed = service.submit(request(&db, 50).with_deadline(Duration::ZERO)).unwrap();
        let outcome = doomed.wait();
        assert_eq!(outcome.status, RequestStatus::DeadlineExceeded);
        assert!(outcome.result.stats.deadline_exceeded);
        assert!(outcome.result.candidates.is_empty());
        assert_eq!(running.wait().status, RequestStatus::Completed);
        assert_eq!(service.stats().class(PriorityClass::Interactive).expired, 1);
    }

    #[test]
    fn dropping_the_service_cancels_queued_requests() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let _running = service.submit(request(&db, 50)).unwrap();
        let queued = service.submit(request(&db, 50)).unwrap();
        drop(service);
        let outcome = queued.wait();
        assert_eq!(outcome.status, RequestStatus::Cancelled);
    }

    #[test]
    fn observer_replaces_channel_delivery_and_matches_it() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 2,
            max_live_sessions: 2,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        // Reference: the same request through the plain channel path.
        let reference: Vec<String> = service
            .submit(request(&db, 10))
            .unwrap()
            .map(|c| format!("{:?}~{:016x}", c.spec, c.confidence.to_bits()))
            .collect();
        assert!(!reference.is_empty());

        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut ticket = service
            .submit_with_observer(
                request(&db, 10),
                Box::new(move |c: &Candidate| {
                    sink.lock().unwrap().push(format!(
                        "{:?}~{:016x}",
                        c.spec,
                        c.confidence.to_bits()
                    ));
                    true
                }),
            )
            .unwrap();
        // The ticket's candidate channel stays silent: the observer replaced it.
        assert!(ticket.next_timeout(Duration::from_secs(30)).is_none());
        let outcome = ticket.wait();
        assert_eq!(outcome.status, RequestStatus::Completed);
        assert!(outcome.time_to_first_candidate.is_some(), "TTFC recorded via observer");
        assert_eq!(*seen.lock().unwrap(), reference, "observer sees the same emission stream");
    }

    #[test]
    fn observer_returning_false_stops_the_run() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 2,
            ..ServiceConfig::default()
        });
        let count = Arc::new(Mutex::new(0usize));
        let sink = Arc::clone(&count);
        let outcome = service
            .submit_with_observer(
                request(&db, 50),
                Box::new(move |_c: &Candidate| {
                    let mut n = sink.lock().unwrap();
                    *n += 1;
                    *n < 2
                }),
            )
            .unwrap()
            .wait();
        assert_eq!(outcome.status, RequestStatus::Cancelled);
        assert_eq!(*count.lock().unwrap(), 2, "stopped right after the observer said no");
        // The slot is free again: a follow-up request runs to completion.
        assert_eq!(
            service.submit(request(&db, 5)).unwrap().wait().status,
            RequestStatus::Completed
        );
        assert_eq!(service.stats().live_sessions, 0);
    }

    #[test]
    fn cancel_by_id_reaps_live_and_queued_requests() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 1,
            max_queued: 4,
            ..ServiceConfig::default()
        });
        let running = service.submit(request(&db, 200)).unwrap();
        let queued = service.submit(request(&db, 200)).unwrap();
        assert!(service.cancel(queued.id()), "queued request found by id");
        assert_eq!(queued.wait().status, RequestStatus::Cancelled);
        assert!(service.cancel(running.id()), "live request found by id");
        assert_eq!(running.wait().status, RequestStatus::Cancelled);
        assert!(!service.cancel(9999), "unknown id reports false");
        let stats = service.stats();
        assert_eq!(stats.live_sessions, 0);
        assert_eq!(stats.queued_requests, 0);
        assert_eq!(stats.class(PriorityClass::Interactive).cancelled, 2);
    }

    #[test]
    fn stats_json_parses_and_round_trips() {
        let db = movie_db().into_shared();
        let service = SynthesisService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 2,
            max_queued: 2,
            ..ServiceConfig::default()
        });
        let outcome =
            service.submit(request(&db, 10).with_priority(PriorityClass::Batch)).unwrap().wait();
        assert_eq!(outcome.status, RequestStatus::Completed);
        let stats = service.stats();
        let parsed = json::Json::parse(&stats.to_json()).expect("stats JSON parses");
        let batch = parsed.get("classes").and_then(|c| c.get("batch")).expect("batch section");
        assert_eq!(batch.get("completed").and_then(json::Json::as_u64), Some(1));
        assert_eq!(batch.get("submitted").and_then(json::Json::as_u64), Some(1));
        assert_eq!(
            batch.get("ttfc_p50_us").and_then(json::Json::as_u64),
            stats.class(PriorityClass::Batch).ttfc_p50.map(|d| d.as_micros() as u64)
        );
        assert_eq!(
            parsed.get("live_sessions").and_then(json::Json::as_u64),
            Some(stats.live_sessions as u64)
        );
        assert_eq!(
            parsed.get("driver_threads").and_then(json::Json::as_u64),
            Some(0),
            "the thread-free serving contract is part of the scraping surface"
        );
        assert_eq!(
            parsed.get("live_sessions_peak").and_then(json::Json::as_u64),
            Some(stats.live_sessions_peak as u64)
        );
        assert!(stats.live_sessions_peak >= 1, "one request ran");
        let sched = parsed.get("scheduler").expect("scheduler section");
        assert_eq!(
            sched.get("workers").and_then(json::Json::as_u64),
            Some(stats.scheduler.workers as u64)
        );
    }
}
