//! Observability: per-class serving counters and latency percentiles.

use crate::request::PriorityClass;
use duoquest_core::SchedulerStats;
use std::time::Duration;

/// Serving counters and latency percentiles of one priority class, from
/// [`SynthesisService::stats`](crate::SynthesisService::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// The class these numbers describe.
    pub class: PriorityClass,
    /// Requests currently waiting in the admission queue.
    pub queued: usize,
    /// Requests currently running.
    pub live: usize,
    /// Requests admitted (started or queued) since the service started.
    pub submitted: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests cancelled (explicitly, by a dropped ticket, or at shutdown).
    pub cancelled: u64,
    /// Requests that hit their deadline (running or still queued).
    pub expired: u64,
    /// Requests refused at admission because both the live-session limit and
    /// the queue bound were exhausted.
    pub shed: u64,
    /// Median time from submission to first candidate over the retained
    /// sample window; `None` until a request of this class emits.
    pub ttfc_p50: Option<Duration>,
    /// 95th-percentile time to first candidate over the retained window.
    pub ttfc_p95: Option<Duration>,
}

impl ClassStats {
    /// Render as a JSON object for scraping (hand-rolled; the vendored
    /// `serde` derives are no-ops). Percentiles are integer microseconds or
    /// `null`.
    pub fn to_json(&self) -> String {
        let opt = |d: Option<Duration>| {
            d.map(|d| d.as_micros().to_string()).unwrap_or_else(|| "null".into())
        };
        format!(
            "{{\"queued\":{},\"live\":{},\"submitted\":{},\"completed\":{},\"cancelled\":{},\
             \"expired\":{},\"shed\":{},\"ttfc_p50_us\":{},\"ttfc_p95_us\":{}}}",
            self.queued,
            self.live,
            self.submitted,
            self.completed,
            self.cancelled,
            self.expired,
            self.shed,
            opt(self.ttfc_p50),
            opt(self.ttfc_p95),
        )
    }
}

/// A point-in-time snapshot of the whole service: admission state per class
/// plus the shared scheduler pool's load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests currently running, across all classes.
    pub live_sessions: usize,
    /// Requests currently queued, across all classes.
    pub queued_requests: usize,
    /// High-water mark of concurrently live requests since the service
    /// started — with scheduler-driven sessions this can sit far above the
    /// worker count, because live requests cost memory, not threads.
    pub live_sessions_peak: usize,
    /// Dedicated per-request OS driver threads. Requests are scheduler-driven
    /// sessions resumed by the fixed pool — the service has **no spawn path**
    /// for per-request threads, so this is the constant 0 by construction,
    /// published as part of the scraping contract. (It is not a runtime
    /// measurement: the behavioural tripwire is the process-thread-count
    /// check in `tests/determinism.rs`, which holds the real OS thread count
    /// flat under 256 live sessions.)
    pub driver_threads: usize,
    /// Per-class breakdown, indexed like [`PriorityClass::ALL`].
    pub classes: [ClassStats; 3],
    /// The shared scheduler pool's load.
    pub scheduler: SchedulerStats,
}

impl ServiceStats {
    /// The stats of one class.
    pub fn class(&self, class: PriorityClass) -> &ClassStats {
        &self.classes[class.index()]
    }

    /// Requests shed at admission, across all classes.
    pub fn total_shed(&self) -> u64 {
        self.classes.iter().map(|c| c.shed).sum()
    }

    /// Render as a JSON object for scraping (hand-rolled; the vendored
    /// `serde` derives are no-ops): class sections are keyed by class label.
    pub fn to_json(&self) -> String {
        let classes = self
            .classes
            .iter()
            .map(|c| format!("\"{}\":{}", c.class.label(), c.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"live_sessions\":{},\"queued_requests\":{},\"live_sessions_peak\":{},\
             \"driver_threads\":{},\"classes\":{{{classes}}},\"scheduler\":{}}}",
            self.live_sessions,
            self.queued_requests,
            self.live_sessions_peak,
            self.driver_threads,
            self.scheduler.to_json(),
        )
    }
}

/// A bounded ring of time-to-first-candidate samples (the newest
/// `cap` samples win), cheap to record under the class's lock.
#[derive(Debug)]
pub(crate) struct Reservoir {
    samples: Vec<Duration>,
    cap: usize,
    next: usize,
}

impl Reservoir {
    pub(crate) fn new(cap: usize) -> Self {
        Reservoir { samples: Vec::new(), cap: cap.max(1), next: 0 }
    }

    pub(crate) fn record(&mut self, sample: Duration) {
        if self.samples.len() < self.cap {
            self.samples.push(sample);
        } else {
            self.samples[self.next] = sample;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Nearest-rank percentiles (`⌈p/100 · n⌉`-th smallest) over the
    /// retained window.
    pub(crate) fn percentiles(&self, ps: [u32; 2]) -> [Option<Duration>; 2] {
        if self.samples.is_empty() {
            return [None, None];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        ps.map(|p| {
            let rank = (sorted.len() * p as usize).div_ceil(100).max(1);
            Some(sorted[rank - 1])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_keeps_the_newest_window() {
        let mut r = Reservoir::new(4);
        for ms in 1..=10u64 {
            r.record(Duration::from_millis(ms));
        }
        // 7..=10 retained; p50 (nearest rank over 4 samples) = index 1 → 8ms.
        let [p50, p95] = r.percentiles([50, 95]);
        assert_eq!(p50, Some(Duration::from_millis(8)));
        assert_eq!(p95, Some(Duration::from_millis(10)));
    }

    #[test]
    fn empty_reservoir_has_no_percentiles() {
        let r = Reservoir::new(8);
        assert_eq!(r.percentiles([50, 95]), [None, None]);
    }
}
