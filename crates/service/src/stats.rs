//! Observability: per-class serving counters and latency percentiles.

use crate::request::PriorityClass;
use duoquest_core::SchedulerStats;
use std::time::Duration;

/// Serving counters and latency percentiles of one priority class, from
/// [`SynthesisService::stats`](crate::SynthesisService::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// The class these numbers describe.
    pub class: PriorityClass,
    /// Requests currently waiting in the admission queue.
    pub queued: usize,
    /// Requests currently running.
    pub live: usize,
    /// Requests admitted (started or queued) since the service started.
    pub submitted: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests cancelled (explicitly, by a dropped ticket, or at shutdown).
    pub cancelled: u64,
    /// Requests that hit their deadline (running or still queued).
    pub expired: u64,
    /// Requests refused at admission because both the live-session limit and
    /// the queue bound were exhausted.
    pub shed: u64,
    /// Median time from submission to first candidate, derived from the
    /// class's log-bucketed histogram (reported as the holding bucket's
    /// upper bound — an estimate within one power of two); `None` until a
    /// request of this class emits.
    pub ttfc_p50: Option<Duration>,
    /// 95th-percentile time to first candidate, same derivation.
    pub ttfc_p95: Option<Duration>,
}

impl ClassStats {
    /// Render as a JSON object for scraping (hand-rolled; the vendored
    /// `serde` derives are no-ops). Percentiles are integer microseconds or
    /// `null`.
    pub fn to_json(&self) -> String {
        let opt = |d: Option<Duration>| {
            d.map(|d| d.as_micros().to_string()).unwrap_or_else(|| "null".into())
        };
        format!(
            "{{\"queued\":{},\"live\":{},\"submitted\":{},\"completed\":{},\"cancelled\":{},\
             \"expired\":{},\"shed\":{},\"ttfc_p50_us\":{},\"ttfc_p95_us\":{}}}",
            self.queued,
            self.live,
            self.submitted,
            self.completed,
            self.cancelled,
            self.expired,
            self.shed,
            opt(self.ttfc_p50),
            opt(self.ttfc_p95),
        )
    }
}

/// A point-in-time snapshot of the whole service: admission state per class
/// plus the shared scheduler pool's load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests currently running, across all classes.
    pub live_sessions: usize,
    /// Requests currently queued, across all classes.
    pub queued_requests: usize,
    /// High-water mark of concurrently live requests since the service
    /// started — with scheduler-driven sessions this can sit far above the
    /// worker count, because live requests cost memory, not threads.
    pub live_sessions_peak: usize,
    /// Dedicated per-request OS driver threads. Requests are scheduler-driven
    /// sessions resumed by the fixed pool — the service has **no spawn path**
    /// for per-request threads, so this is the constant 0 by construction,
    /// published as part of the scraping contract. (It is not a runtime
    /// measurement: the behavioural tripwire is the process-thread-count
    /// check in `tests/determinism.rs`, which holds the real OS thread count
    /// flat under 256 live sessions.)
    pub driver_threads: usize,
    /// Per-class breakdown, indexed like [`PriorityClass::ALL`].
    pub classes: [ClassStats; 3],
    /// The shared scheduler pool's load.
    pub scheduler: SchedulerStats,
}

impl ServiceStats {
    /// The stats of one class.
    pub fn class(&self, class: PriorityClass) -> &ClassStats {
        &self.classes[class.index()]
    }

    /// Requests shed at admission, across all classes.
    pub fn total_shed(&self) -> u64 {
        self.classes.iter().map(|c| c.shed).sum()
    }

    /// Render as a JSON object for scraping (hand-rolled; the vendored
    /// `serde` derives are no-ops): class sections are keyed by class label.
    pub fn to_json(&self) -> String {
        let classes = self
            .classes
            .iter()
            .map(|c| format!("\"{}\":{}", c.class.label(), c.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"live_sessions\":{},\"queued_requests\":{},\"live_sessions_peak\":{},\
             \"driver_threads\":{},\"classes\":{{{classes}}},\"scheduler\":{}}}",
            self.live_sessions,
            self.queued_requests,
            self.live_sessions_peak,
            self.driver_threads,
            self.scheduler.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_obs::Histogram;

    // The TTFC percentiles now come from a lossless log-bucketed histogram
    // (`duoquest_obs::Histogram`) instead of a sampling reservoir: every
    // sample lands, and the reported percentile is the holding bucket's
    // upper bound.

    #[test]
    fn histogram_percentiles_feed_class_stats() {
        let h = Histogram::new();
        for ms in 1..=10u64 {
            h.record(Duration::from_millis(ms));
        }
        // p50 over 1..=10ms lands in the bucket covering 5ms (le = 8192µs).
        assert_eq!(h.quantile(0.50), Some(Duration::from_micros(8192)));
        assert_eq!(h.quantile(0.95), Some(Duration::from_micros(16384)));
        assert_eq!(h.count(), 10, "no samples lost, unlike the old reservoir");
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.50), None);
        assert_eq!(h.quantile(0.95), None);
    }
}
