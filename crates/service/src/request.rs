//! Request-side types of the service API: priority classes, the request
//! itself, the service configuration and admission errors.

use duoquest_core::{DuoquestConfig, EmissionPolicy, TableSketchQuery};
use duoquest_db::Database;
use duoquest_nlq::{GuidanceModel, Nlq};
use std::sync::Arc;
use std::time::Duration;

/// The scheduling class of a request, weighted into the shared scheduler's
/// round-robin on top of the session's beam width.
///
/// Classes are *weights, not tiers*: a higher class is granted a larger share
/// of every queue rotation ([`PriorityClass::weight`]), but lower classes are
/// never starved — the fairness queue still serves every live session each
/// rotation. Admission and queue promotion do use strict class order
/// (interactive before batch before background).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PriorityClass {
    /// A user is watching: served with 16× the per-rotation share of
    /// background work.
    Interactive,
    /// Throughput-oriented work with a requester waiting on the result set:
    /// 4× the background share.
    Batch,
    /// Best-effort filler (precomputation, cache warming): weight 1.
    Background,
}

impl PriorityClass {
    /// All classes, highest priority first (the queue promotion order).
    pub const ALL: [PriorityClass; 3] =
        [PriorityClass::Interactive, PriorityClass::Batch, PriorityClass::Background];

    /// Dense index of the class (position in [`PriorityClass::ALL`]).
    pub fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Batch => 1,
            PriorityClass::Background => 2,
        }
    }

    /// The class's multiplier on the shared scheduler's round-robin weight
    /// (the session's fairness share is `beam_width × weight`).
    pub fn weight(self) -> usize {
        match self {
            PriorityClass::Interactive => 16,
            PriorityClass::Batch => 4,
            PriorityClass::Background => 1,
        }
    }

    /// Lowercase label used in stats JSON and reports.
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Batch => "batch",
            PriorityClass::Background => "background",
        }
    }
}

/// One synthesis task submitted to a [`SynthesisService`](crate::SynthesisService):
/// the dual specification plus serving metadata (priority class and an
/// optional deadline).
pub struct SynthesisRequest {
    pub(crate) db: Arc<Database>,
    pub(crate) nlq: Nlq,
    pub(crate) tsq: Option<TableSketchQuery>,
    pub(crate) model: Arc<dyn GuidanceModel>,
    pub(crate) config: DuoquestConfig,
    pub(crate) priority: PriorityClass,
    pub(crate) deadline: Option<Duration>,
}

impl SynthesisRequest {
    /// A request with the default engine configuration, no TSQ, interactive
    /// priority and no deadline.
    pub fn new(db: Arc<Database>, nlq: Nlq, model: Arc<dyn GuidanceModel>) -> Self {
        SynthesisRequest {
            db,
            nlq,
            tsq: None,
            model,
            config: DuoquestConfig::default(),
            priority: PriorityClass::Interactive,
            deadline: None,
        }
    }

    /// Attach a table sketch query (the second half of the dual specification).
    pub fn with_tsq(mut self, tsq: TableSketchQuery) -> Self {
        self.tsq = Some(tsq);
        self
    }

    /// Replace the engine configuration.
    pub fn with_config(mut self, config: DuoquestConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the request's priority class (default: interactive).
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = priority;
        self
    }

    /// Choose when the request's session releases ranked candidates:
    /// [`EmissionPolicy::RoundBarrier`] (the default) holds each round's
    /// emissions until the round's ordered merge completes;
    /// [`EmissionPolicy::AnyK`] streams a candidate out the moment its
    /// confidence provably dominates every unexpanded state. The candidate
    /// set and ranking are identical under both — only delivery timing moves.
    pub fn with_emission_policy(mut self, emission: EmissionPolicy) -> Self {
        self.config.emission = emission;
        self
    }

    /// Set a deadline, measured **from submission** — time spent waiting in
    /// the admission queue counts against it. A request past its deadline
    /// stops enumerating and returns the best candidates found so far,
    /// flagged [`RequestStatus::DeadlineExceeded`](crate::RequestStatus::DeadlineExceeded).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The request's priority class.
    pub fn priority(&self) -> PriorityClass {
        self.priority
    }
}

impl std::fmt::Debug for SynthesisRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesisRequest")
            .field("nlq", &self.nlq.text)
            .field("tsq", &self.tsq.is_some())
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .finish()
    }
}

/// Capacity limits of a [`SynthesisService`](crate::SynthesisService).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads of the shared scheduler pool (`0` = one per CPU).
    pub workers: usize,
    /// Admission control: requests beyond this many live sessions wait in
    /// the bounded queue instead of starting. Live requests are
    /// scheduler-driven sessions (state machines parked in the pool, no
    /// per-request thread), so this bound is a memory/latency knob, not a
    /// thread-count one — the default allows over a thousand concurrent
    /// live sessions on a fixed worker pool.
    pub max_live_sessions: usize,
    /// Admission control: queued requests beyond this bound are **shed** —
    /// [`SynthesisService::submit`](crate::SynthesisService::submit) returns
    /// [`AdmissionError::Overloaded`] instead of accepting unbounded backlog.
    pub max_queued: usize,
    /// Whether admitted requests carry a structured trace (per-request span
    /// timeline recorded through every layer; see `crates/obs`). Tracing
    /// rides entirely outside the candidate emission path — the emitted
    /// sequence is byte-identical either way — so the cost of leaving it on
    /// is a handful of clock reads per round. Set `false` to compile the
    /// recording down to nothing on the hot path.
    pub tracing: bool,
    /// Capacity of the flight recorder: how many recently finished request
    /// traces are retained for post-hoc inspection (`GET /trace/<id>` on the
    /// network front). Oldest-evicted; clamped to at least 1.
    pub flight_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            max_live_sessions: 1024,
            max_queued: 256,
            tracing: true,
            flight_capacity: 256,
        }
    }
}

/// Why [`SynthesisService::submit`](crate::SynthesisService::submit) refused
/// a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// Both the live-session limit and the queue bound are exhausted; the
    /// request was shed. Back off and resubmit.
    Overloaded {
        /// Live sessions at the time of the attempt.
        live: usize,
        /// Queued requests at the time of the attempt.
        queued: usize,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Overloaded { live, queued } => {
                write!(f, "service overloaded: {live} live sessions, {queued} queued; request shed")
            }
            AdmissionError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}
