//! # duoquest-baselines
//!
//! The comparison systems used in the Duoquest evaluation (paper §5):
//!
//! * [`nli`] — the NLI-only baseline (guided enumeration without a TSQ and
//!   without the TSQ-independent semantic rules), standing in for
//!   SyntaxSQLNet;
//! * [`pbe`] — a SQuID-like programming-by-example baseline with the capability
//!   envelope from paper Table 1 (no projected aggregates or numeric columns,
//!   no negation/LIKE predicates);
//! * [`ablations`] — the NoPQ and NoGuide ablations of §5.4.3.

pub mod ablations;
pub mod nli;
pub mod pbe;

pub use ablations::{NoGuide, NoPq};
pub use nli::NliBaseline;
pub use pbe::{PbeOutcome, SquidPbe};
