//! A SQuID-like programming-by-example baseline.
//!
//! SQuID (Fariha & Meliou, PVLDB 2019) abduces a query from a set of example
//! tuples: it locates the projection columns containing the examples and then
//! proposes candidate selection predicates ("filters") derived from attribute
//! values shared by all examples, including attributes reached over foreign
//! keys. The paper's simulation study (§5.4) scores PBE as *Correct* when the
//! gold query's selection predicates are a subset of the proposed candidate
//! predicates (ignoring literal differences), and counts tasks outside its
//! capability envelope (projected aggregates or numeric columns, negation or
//! `LIKE` predicates) as *Unsupported*.
//!
//! This baseline implements exactly that contract; it is not a full SQuID
//! reimplementation (see DESIGN.md §3).

use duoquest_core::{TableSketchQuery, TsqCell};
use duoquest_db::{CmpOp, ColumnId, DataType, Database, JoinGraph, SelectSpec, TableId, Value};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// The outcome of running the PBE baseline on one task.
#[derive(Debug, Clone, Default)]
pub struct PbeOutcome {
    /// Columns abduced as the projection (one per example-tuple column, where found).
    pub projection: Vec<Option<ColumnId>>,
    /// Columns on which candidate selection predicates ("filters") were proposed.
    pub candidate_filter_columns: Vec<ColumnId>,
    /// Wall-clock runtime of the abduction.
    pub runtime: Duration,
}

/// The SQuID-like PBE baseline.
#[derive(Debug, Clone, Default)]
pub struct SquidPbe {
    /// How many FK hops to follow when proposing filters (SQuID's semantic
    /// property graph reaches entities over FK joins; 2 hops cover the
    /// star/snowflake schemas it targets).
    pub max_hops: usize,
}

impl SquidPbe {
    /// Create the baseline with the default 2-hop filter derivation.
    pub fn new() -> Self {
        SquidPbe { max_hops: 2 }
    }

    /// Whether a gold query lies inside the system's capability envelope
    /// (paper Table 1 and §5.4.2).
    pub fn supports(&self, db: &Database, gold: &SelectSpec) -> bool {
        let schema = db.schema();
        for item in &gold.select {
            if item.agg.is_some() {
                return false; // no projected aggregates
            }
            match item.col {
                Some(c) if schema.column(c).dtype == DataType::Text => {}
                _ => return false, // no projected numeric columns
            }
        }
        for p in &gold.predicates {
            if matches!(p.op, CmpOp::Ne | CmpOp::Like) {
                return false; // no negation or LIKE
            }
        }
        // Grouping with projected aggregates is already excluded above; sorting
        // and limits are outside the example-tuple interaction model.
        gold.order_by.is_none() && gold.limit.is_none()
    }

    /// Run abduction from the example tuples of a TSQ.
    pub fn run(&self, db: &Database, tsq: &TableSketchQuery) -> PbeOutcome {
        let start = Instant::now();
        let width = tsq.width().unwrap_or(0);
        let mut projection: Vec<Option<ColumnId>> = vec![None; width];

        // 1. Locate projection columns: for every TSQ column, the text column
        //    containing all of that column's exact example values.
        #[allow(clippy::needless_range_loop)] // indexing two parallel structures
        for col_idx in 0..width {
            let values: Vec<&str> = tsq
                .tuples
                .iter()
                .filter_map(|t| t.get(col_idx))
                .filter_map(|c| match c {
                    TsqCell::Exact(Value::Text(s)) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            if values.is_empty() {
                continue;
            }
            let mut counts: HashMap<ColumnId, usize> = HashMap::new();
            for v in &values {
                for hit in db.index().lookup(v) {
                    *counts.entry(hit.column).or_insert(0) += 1;
                }
            }
            projection[col_idx] =
                counts.into_iter().filter(|(_, n)| *n == values.len()).map(|(c, _)| c).min();
            // deterministic choice
        }

        // 2. Propose candidate filters: columns (within `max_hops` FK hops of a
        //    projection table) on which all examples share a value.
        let mut filter_columns: Vec<ColumnId> = Vec::new();
        let graph = JoinGraph::new(db.schema());
        let projection_tables: HashSet<TableId> =
            projection.iter().flatten().map(|c| c.table).collect();
        let mut reachable: HashSet<TableId> = projection_tables.clone();
        let mut frontier: Vec<TableId> = projection_tables.iter().copied().collect();
        for _ in 0..self.max_hops {
            let mut next = Vec::new();
            for t in &frontier {
                for e in graph.edges_of(*t) {
                    let o = e.other(*t).expect("consistent adjacency");
                    if reachable.insert(o) {
                        next.push(o);
                    }
                }
            }
            frontier = next;
        }
        for table in &reachable {
            for col in db.schema().table_columns(*table) {
                if projection.iter().flatten().any(|p| *p == col) {
                    continue;
                }
                if db.schema().is_key_column(col) {
                    continue;
                }
                filter_columns.push(col);
            }
        }
        filter_columns.sort();

        PbeOutcome {
            projection,
            candidate_filter_columns: filter_columns,
            runtime: start.elapsed(),
        }
    }

    /// The paper's *Correct* criterion for supported tasks: the gold query's
    /// selection predicate columns are a subset of the proposed filter columns
    /// (literal values ignored) and the projection columns were located.
    pub fn correct_for(&self, outcome: &PbeOutcome, gold: &SelectSpec) -> bool {
        let gold_projection: HashSet<ColumnId> = gold.select.iter().filter_map(|i| i.col).collect();
        let found_projection: HashSet<ColumnId> =
            outcome.projection.iter().flatten().copied().collect();
        if !gold_projection.is_subset(&found_projection) {
            return false;
        }
        let filters: HashSet<ColumnId> = outcome.candidate_filter_columns.iter().copied().collect();
        gold.predicates.iter().all(|p| p.col.map(|c| filters.contains(&c)).unwrap_or(false))
            && gold.having.iter().all(|h| h.col.map(|c| filters.contains(&c)).unwrap_or(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{AggFunc, ColumnDef, Schema, TableDef};
    use duoquest_sql::QueryBuilder;

    /// conference(cid, name) ←— publication(pid, title, year, cid)
    fn db() -> Database {
        let mut s = Schema::new("mas");
        s.add_table(TableDef::new(
            "conference",
            vec![ColumnDef::number("cid"), ColumnDef::text("name")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "publication",
            vec![
                ColumnDef::number("pid"),
                ColumnDef::text("title"),
                ColumnDef::number("year"),
                ColumnDef::number("cid"),
            ],
            Some(0),
        ));
        s.add_foreign_key("publication", "cid", "conference", "cid").unwrap();
        let mut d = Database::new(s).unwrap();
        d.insert("conference", vec![Value::int(1), Value::text("SIGMOD")]).unwrap();
        d.insert("conference", vec![Value::int(2), Value::text("VLDB")]).unwrap();
        d.insert_all(
            "publication",
            vec![
                vec![Value::int(10), Value::text("Paper A"), Value::int(2018), Value::int(1)],
                vec![Value::int(11), Value::text("Paper B"), Value::int(2019), Value::int(1)],
                vec![Value::int(12), Value::text("Paper C"), Value::int(2020), Value::int(2)],
            ],
        )
        .unwrap();
        d.rebuild_index();
        d
    }

    #[test]
    fn capability_envelope() {
        let db = db();
        let pbe = SquidPbe::new();
        let supported = QueryBuilder::new(db.schema())
            .select("publication.title")
            .filter("conference.name", CmpOp::Eq, "SIGMOD")
            .build()
            .unwrap();
        assert!(pbe.supports(&db, &supported));
        let aggregate = QueryBuilder::new(db.schema())
            .select("conference.name")
            .select_count_star()
            .group_by("conference.name")
            .build()
            .unwrap();
        assert!(!pbe.supports(&db, &aggregate));
        let numeric = QueryBuilder::new(db.schema())
            .select("publication.title")
            .select("publication.year")
            .build()
            .unwrap();
        assert!(!pbe.supports(&db, &numeric));
        let like = QueryBuilder::new(db.schema())
            .select("publication.title")
            .filter("publication.title", CmpOp::Like, "%data%")
            .build()
            .unwrap();
        assert!(!pbe.supports(&db, &like));
        let _ = AggFunc::Count;
    }

    #[test]
    fn abduction_finds_projection_and_filters() {
        let db = db();
        let pbe = SquidPbe::new();
        let tsq = TableSketchQuery::empty()
            .with_tuple(vec![TsqCell::text("Paper A")])
            .with_tuple(vec![TsqCell::text("Paper B")]);
        let outcome = pbe.run(&db, &tsq);
        let title = db.schema().column_id("publication", "title").unwrap();
        let conf_name = db.schema().column_id("conference", "name").unwrap();
        assert_eq!(outcome.projection, vec![Some(title)]);
        assert!(outcome.candidate_filter_columns.contains(&conf_name));

        let gold = QueryBuilder::new(db.schema())
            .select("publication.title")
            .filter("conference.name", CmpOp::Eq, "SIGMOD")
            .build()
            .unwrap();
        assert!(pbe.correct_for(&outcome, &gold));
    }

    #[test]
    fn wrong_projection_is_not_correct() {
        let db = db();
        let pbe = SquidPbe::new();
        let tsq = TableSketchQuery::empty().with_tuple(vec![TsqCell::text("SIGMOD")]);
        let outcome = pbe.run(&db, &tsq);
        let gold = QueryBuilder::new(db.schema())
            .select("publication.title")
            .filter("conference.name", CmpOp::Eq, "SIGMOD")
            .build()
            .unwrap();
        assert!(!pbe.correct_for(&outcome, &gold));
    }

    #[test]
    fn empty_tsq_produces_empty_outcome() {
        let db = db();
        let pbe = SquidPbe::new();
        let outcome = pbe.run(&db, &TableSketchQuery::empty());
        assert!(outcome.projection.is_empty());
        assert!(outcome.candidate_filter_columns.is_empty());
    }
}
