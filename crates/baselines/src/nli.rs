//! The NLI-only baseline.
//!
//! The paper compares Duoquest against SyntaxSQLNet used as a plain natural
//! language interface: the model enumerates candidate queries ranked by
//! confidence, with no TSQ to verify against. In this reproduction the same
//! GPQE enumerator runs with the TSQ withheld and the semantic pruning rules
//! disabled, so the candidate list reflects guidance quality alone.

use duoquest_core::{Duoquest, DuoquestConfig, SynthesisResult};
use duoquest_db::Database;
use duoquest_nlq::{GuidanceModel, Nlq};

/// NLI-only synthesis (no table sketch query).
#[derive(Debug, Clone)]
pub struct NliBaseline {
    engine: Duoquest,
}

impl NliBaseline {
    /// Create the baseline from a base configuration (the TSQ-independent
    /// semantic rules are disabled to match a plain NLI).
    pub fn new(config: DuoquestConfig) -> Self {
        NliBaseline { engine: Duoquest::new(config.without_semantic_rules()) }
    }

    /// The underlying engine configuration.
    pub fn config(&self) -> &DuoquestConfig {
        self.engine.config()
    }

    /// Produce the ranked candidate list for an NLQ.
    pub fn synthesize(
        &self,
        db: &Database,
        nlq: &Nlq,
        model: &dyn GuidanceModel,
    ) -> SynthesisResult {
        self.engine.synthesize(db, nlq, None, model)
    }
}

impl Default for NliBaseline {
    fn default() -> Self {
        NliBaseline::new(DuoquestConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{CmpOp, ColumnDef, Schema, TableDef, Value};
    use duoquest_nlq::{Literal, NoisyOracleGuidance, OracleConfig};
    use duoquest_sql::QueryBuilder;

    fn db() -> Database {
        let mut s = Schema::new("m");
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        let mut d = Database::new(s).unwrap();
        d.insert("movies", vec![Value::int(1), Value::text("Forrest Gump"), Value::int(1994)])
            .unwrap();
        d.insert("movies", vec![Value::int(2), Value::text("Gravity"), Value::int(2013)]).unwrap();
        d.rebuild_index();
        d
    }

    #[test]
    fn nli_finds_gold_but_with_more_candidates() {
        let db = db();
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let model = NoisyOracleGuidance::with_config(gold.clone(), 1, OracleConfig::perfect());
        let nlq = Nlq::with_literals("names of movies before 1995", vec![Literal::number(1995.0)]);
        let nli = NliBaseline::new(DuoquestConfig::fast());
        let result = nli.synthesize(&db, &nlq, &model);
        assert!(result.rank_of(&gold).is_some());
        assert!(result.candidates.len() > 1);
        assert!(!nli.config().semantic_rules);
    }

    #[test]
    fn default_uses_default_budgets() {
        let nli = NliBaseline::default();
        assert!(nli.config().guided);
        assert!(nli.config().prune_partial);
    }
}
