//! The NoPQ and NoGuide ablations (paper §5.4.3).
//!
//! * **NoPQ** keeps guided enumeration but only verifies complete queries —
//!   identical to the naive chaining approach of §3.5 (NLI output piped into a
//!   PBE verifier).
//! * **NoGuide** ignores the guidance model's confidence scores (uniform
//!   scores, so the best-first search degenerates into a breadth-first,
//!   simplest-queries-first enumeration) but keeps partial query pruning.

use duoquest_core::{Duoquest, DuoquestConfig, SynthesisResult, TableSketchQuery};
use duoquest_db::Database;
use duoquest_nlq::{GuidanceModel, Nlq};

/// The NoPQ ablation: verification only on complete queries.
#[derive(Debug, Clone)]
pub struct NoPq {
    engine: Duoquest,
}

impl NoPq {
    /// Create the ablation from a base configuration.
    pub fn new(config: DuoquestConfig) -> Self {
        NoPq { engine: Duoquest::new(config.no_partial_pruning()) }
    }

    /// Synthesize with the TSQ applied only to complete queries.
    pub fn synthesize(
        &self,
        db: &Database,
        nlq: &Nlq,
        tsq: Option<&TableSketchQuery>,
        model: &dyn GuidanceModel,
    ) -> SynthesisResult {
        self.engine.synthesize(db, nlq, tsq, model)
    }
}

/// The NoGuide ablation: breadth-first enumeration with pruning.
#[derive(Debug, Clone)]
pub struct NoGuide {
    engine: Duoquest,
}

impl NoGuide {
    /// Create the ablation from a base configuration.
    pub fn new(config: DuoquestConfig) -> Self {
        NoGuide { engine: Duoquest::new(config.no_guide()) }
    }

    /// Synthesize ignoring the guidance model's scores.
    pub fn synthesize(
        &self,
        db: &Database,
        nlq: &Nlq,
        tsq: Option<&TableSketchQuery>,
        model: &dyn GuidanceModel,
    ) -> SynthesisResult {
        self.engine.synthesize(db, nlq, tsq, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_core::TsqCell;
    use duoquest_db::{CmpOp, ColumnDef, DataType, Schema, TableDef, Value};
    use duoquest_nlq::{Literal, NoisyOracleGuidance, OracleConfig};
    use duoquest_sql::QueryBuilder;

    fn db() -> Database {
        let mut s = Schema::new("m");
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        let mut d = Database::new(s).unwrap();
        d.insert("movies", vec![Value::int(1), Value::text("Forrest Gump"), Value::int(1994)])
            .unwrap();
        d.insert("movies", vec![Value::int(2), Value::text("Gravity"), Value::int(2013)]).unwrap();
        d.rebuild_index();
        d
    }

    fn setup(db: &Database) -> (duoquest_db::SelectSpec, Nlq, TableSketchQuery) {
        let gold = QueryBuilder::new(db.schema())
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        let nlq = Nlq::with_literals("movies before 1995", vec![Literal::number(1995.0)]);
        let tsq = TableSketchQuery::with_types(vec![DataType::Text])
            .with_tuple(vec![TsqCell::text("Forrest Gump")]);
        (gold, nlq, tsq)
    }

    #[test]
    fn nopq_still_finds_gold_but_does_more_work() {
        let db = db();
        let (gold, nlq, tsq) = setup(&db);
        let model = NoisyOracleGuidance::with_config(gold.clone(), 1, OracleConfig::perfect());
        let full = Duoquest::new(DuoquestConfig::fast()).synthesize(&db, &nlq, Some(&tsq), &model);
        let nopq = NoPq::new(DuoquestConfig::fast()).synthesize(&db, &nlq, Some(&tsq), &model);
        assert!(full.rank_of(&gold).is_some());
        assert!(nopq.rank_of(&gold).is_some());
        // Without partial pruning, the search generates at least as many states.
        assert!(nopq.stats.generated >= full.stats.generated);
    }

    #[test]
    fn noguide_finds_gold_with_pruning() {
        let db = db();
        let (gold, nlq, tsq) = setup(&db);
        let model = NoisyOracleGuidance::with_config(gold.clone(), 1, OracleConfig::perfect());
        let result = NoGuide::new(DuoquestConfig::fast()).synthesize(&db, &nlq, Some(&tsq), &model);
        assert!(result.rank_of(&gold).is_some());
    }
}
