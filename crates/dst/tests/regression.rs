//! The pinned regression corpus: every seed in `seeds.txt` replayed as its
//! own named test, so a regression points at a seed by name and can be
//! re-run in isolation (`cargo test -p duoquest-dst --test regression seed_42`).

use duoquest_dst::check_seed;

/// The corpus, mirrored from `seeds.txt` (a test below keeps them in sync).
const CORPUS: &[u64] = &[0, 1, 7, 13, 42, 99, 1337, 65537, 123456789, 987654321];

macro_rules! corpus_seed {
    ($($name:ident = $seed:expr;)*) => {
        $(
            #[test]
            fn $name() {
                if let Err(failure) = check_seed($seed) {
                    panic!("{failure}");
                }
            }
        )*

        /// The named tests above must cover exactly the seeds in the macro
        /// invocation (compile-time halves of the sync check).
        const NAMED: &[u64] = &[$($seed),*];
    };
}

corpus_seed! {
    seed_0 = 0;
    seed_1 = 1;
    seed_7 = 7;
    seed_13 = 13;
    seed_42 = 42;
    seed_99 = 99;
    seed_1337 = 1337;
    seed_65537 = 65537;
    seed_123456789 = 123456789;
    seed_987654321 = 987654321;
}

/// `seeds.txt` (the on-disk corpus the docs point contributors at), the
/// `CORPUS` constant, and the named tests must all agree — adding a seed in
/// one place only fails here, with instructions.
#[test]
fn corpus_file_and_named_tests_agree() {
    let file: Vec<u64> = include_str!("../seeds.txt")
        .lines()
        .map(|line| line.trim())
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| line.parse().expect("seeds.txt lines are seeds or # comments"))
        .collect();
    assert_eq!(
        file, CORPUS,
        "seeds.txt and the CORPUS constant diverged — add the seed to both, \
         plus a corpus_seed! entry"
    );
    assert_eq!(
        CORPUS, NAMED,
        "CORPUS and the corpus_seed! invocation diverged — add a named test for the seed"
    );
}
