//! Probe-cache churn under simulated byte-budget pressure, driven from DST
//! scenarios: the exactness bit of what the cache serves never downgrades
//! (outside eviction windows), hit/miss counters are conserved across
//! however many segment rotations the churn forces, and the whole
//! observation log is bit-for-bit reproducible.
//!
//! The contracts themselves live in the harness (`check_cache_plan`); these
//! tests pin the pressure patterns that most plausibly break them.

use duoquest_dst::{check_cache_plan, generate, CacheOp, CachePlan};

/// The generator's own cache plans — the exact churn the sweep replays —
/// hold every cache contract on a page of seeds, including plenty whose
/// `SetMaxBytes` ops squeeze the budget mid-plan.
#[test]
fn generated_cache_plans_hold_every_contract() {
    let mut squeezed = 0u32;
    for seed in 0..300u64 {
        let plan = generate(seed).cache;
        if plan.ops.iter().any(|op| matches!(op, CacheOp::SetMaxBytes { bytes } if *bytes < 1024)) {
            squeezed += 1;
        }
        if let Err(violation) = check_cache_plan(&plan) {
            panic!("seed {seed} cache plan violated: {violation}");
        }
    }
    assert!(squeezed > 10, "generator no longer exercises tight budgets ({squeezed} plans)");
}

/// Targeted rotation storm: a budget small enough that every insert forces
/// segment pressure, with get-hits interleaved so the exactness oracle has
/// observations on both sides of each rotation. Counters must balance at
/// the end no matter how many generations aged out.
#[test]
fn exactness_and_counters_survive_a_rotation_storm() {
    let mut ops = Vec::new();
    for round in 0..8u8 {
        ops.push(CacheOp::SetMaxBytes { bytes: 256 + 128 * u32::from(round % 3) });
        for spec in 0..6u8 {
            ops.push(CacheOp::Insert { spec, rows: 3, exact: true });
            ops.push(CacheOp::Get { spec, budget: None });
            ops.push(CacheOp::Insert { spec, rows: 1, exact: false });
            ops.push(CacheOp::Get { spec, budget: Some(1) });
        }
    }
    check_cache_plan(&CachePlan { ops }).unwrap();
}

/// Clears reset the exactness oracle but never the counters: lookups across
/// clears still reconcile with hits + misses.
#[test]
fn counters_are_conserved_across_clears() {
    let mut ops = Vec::new();
    for _ in 0..4 {
        for spec in 0..6u8 {
            ops.push(CacheOp::Insert { spec, rows: 3, exact: true });
            ops.push(CacheOp::Get { spec, budget: Some(2) });
        }
        ops.push(CacheOp::Clear);
        for spec in 0..6u8 {
            ops.push(CacheOp::Get { spec, budget: None });
        }
    }
    check_cache_plan(&CachePlan { ops }).unwrap();
}
