//! The seeded scenario sweep — the DST gate CI runs.
//!
//! Knobs (all environment variables):
//!
//! * `DST_SEEDS`  — seeds per round (default 200);
//! * `DST_ROUNDS` — rounds to run; round `r` covers seeds
//!   `r*DST_SEEDS .. (r+1)*DST_SEEDS` (default 1);
//! * `DST_REPLAY` — replay exactly one seed verbosely instead of sweeping.
//!
//! On a violation the failing scenario is shrunk and the panic message is a
//! full report: the violation, the minimized scenario, and the exact
//! `DST_REPLAY=<seed> ...` command to reproduce it.

use duoquest_dst::{check_seed, generate, replay_command};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(raw) => raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an unsigned integer, got {raw:?}")),
        Err(_) => default,
    }
}

#[test]
fn seeded_scenario_sweep_holds_every_oracle() {
    if let Ok(raw) = std::env::var("DST_REPLAY") {
        let seed: u64 = raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("DST_REPLAY must be an unsigned integer, got {raw:?}"));
        println!("replaying seed {seed}:\n{:#?}", generate(seed));
        match check_seed(seed) {
            Ok(()) => println!("seed {seed}: every oracle held"),
            Err(failure) => panic!("{failure}"),
        }
        return;
    }

    let seeds = env_u64("DST_SEEDS", 200);
    let rounds = env_u64("DST_ROUNDS", 1);
    let mut passed = 0u64;
    for round in 0..rounds {
        for seed in round * seeds..(round + 1) * seeds {
            if let Err(failure) = check_seed(seed) {
                panic!(
                    "sweep failed after {passed} clean seeds\n{failure}\n\
                     (sweep shape: DST_SEEDS={seeds} DST_ROUNDS={rounds})"
                );
            }
            passed += 1;
        }
    }
    println!("swept {passed} seeds ({seeds} per round x {rounds} rounds): every oracle held");
    assert!(passed >= seeds.min(200), "sweep ran no seeds");
}

/// The same seed must produce the same scenario and the same verdict on
/// every replay — the harness itself is deterministic.
#[test]
fn replay_token_is_stable() {
    for seed in [3u64, 17, 91] {
        assert_eq!(generate(seed), generate(seed));
        assert_eq!(check_seed(seed).is_ok(), check_seed(seed).is_ok());
    }
    assert!(replay_command(7).contains("DST_REPLAY=7"));
}
