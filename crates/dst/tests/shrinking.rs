//! Proof the harness catches what it claims to catch: deliberately break
//! the determinism contract and watch the oracles flag it and the shrinker
//! reduce the evidence to a minimal scenario.

use duoquest_dst::{
    check_scenario, shrink, CachePlan, CheckOptions, NetPlan, RequestPlan, Scenario, ServicePlan,
    Violation,
};

fn plain_request(submit_at_us: u64) -> RequestPlan {
    RequestPlan {
        task: 0,
        priority: 0,
        max_candidates: 4,
        submit_at_us,
        deadline_us: None,
        cancel_at_us: None,
        drop_ticket: false,
        panic_after: None,
    }
}

/// A busy hand-built scenario: mixed features around at least one plain
/// request that completes in both runs.
fn busy_scenario() -> Scenario {
    let requests = vec![
        RequestPlan { cancel_at_us: Some(700), ..plain_request(100) },
        RequestPlan { deadline_us: Some(1_500), ..plain_request(200) },
        plain_request(300),
        RequestPlan { panic_after: Some(3), ..plain_request(400) },
        RequestPlan { drop_ticket: true, ..plain_request(500) },
    ];
    Scenario {
        seed: 0,
        reference: ServicePlan { workers: 2, max_live: 4, max_queued: 4, index_access: true },
        alternate: ServicePlan { workers: 3, max_live: 2, max_queued: 4, index_access: false },
        final_advance_us: 2_000,
        requests,
        cache: CachePlan::default(),
        net: NetPlan::default(),
        any_k: true,
        single_flight: true,
    }
}

/// An intentionally-injected determinism break (the alternate run scores
/// with a different deterministic model) is caught by the emission oracles
/// and shrunk to a single plain request.
#[test]
fn injected_determinism_break_is_caught_and_shrunk_to_minimum() {
    let broken = CheckOptions { perturb_alternate: true };
    let scenario = busy_scenario();

    let violation = check_scenario(&scenario, &broken)
        .expect_err("a perturbed alternate run must violate an emission oracle");
    assert!(
        matches!(
            violation,
            Violation::EmissionMismatch { .. }
                | Violation::CrossRunMismatch { .. }
                | Violation::StrayCandidate { .. }
        ),
        "expected an emission violation, got: {violation}"
    );

    let shrunk = shrink(scenario, |candidate| check_scenario(candidate, &broken).is_err(), 400);
    assert_eq!(shrunk.requests.len(), 1, "not minimal: {shrunk:#?}");
    let survivor = &shrunk.requests[0];
    assert_eq!(survivor.cancel_at_us, None, "cancel noise survived: {shrunk:#?}");
    assert_eq!(survivor.panic_after, None, "panic noise survived: {shrunk:#?}");
    assert_eq!(survivor.deadline_us, None, "deadline noise survived: {shrunk:#?}");
    assert!(!survivor.drop_ticket, "drop noise survived: {shrunk:#?}");
    assert_eq!(survivor.submit_at_us, 0, "submit offset survived: {shrunk:#?}");
    assert!(shrunk.cache.ops.is_empty());
    // The minimal scenario must still fail, with an emission violation.
    let shrunk_violation =
        check_scenario(&shrunk, &broken).expect_err("the minimized scenario must still violate");
    assert!(
        matches!(
            shrunk_violation,
            Violation::EmissionMismatch { .. }
                | Violation::CrossRunMismatch { .. }
                | Violation::StrayCandidate { .. }
        ),
        "minimized scenario drifted to a different violation class: {shrunk_violation}"
    );
}

/// The same scenario with the fault switch off is clean — the break above
/// came from the injection, not the harness.
#[test]
fn unperturbed_busy_scenario_is_clean() {
    let scenario = busy_scenario();
    if let Err(violation) = check_scenario(&scenario, &CheckOptions::default()) {
        panic!("clean scenario flagged: {violation}");
    }
}
