//! What the oracles can catch, as typed, printable evidence.

use std::fmt;

/// Which of a scenario's two service runs an observation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLabel {
    /// The run shaped by [`Scenario::reference`](crate::Scenario::reference).
    Reference,
    /// The run shaped by [`Scenario::alternate`](crate::Scenario::alternate).
    Alternate,
}

impl fmt::Display for RunLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunLabel::Reference => write!(f, "reference"),
            RunLabel::Alternate => write!(f, "alternate"),
        }
    }
}

/// One oracle failure, with enough context to understand it without
/// re-running the scenario. `Display` renders a single diagnostic line;
/// the surrounding report adds the scenario and the replay command.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A completed request's emission differs from the solo single-worker
    /// reference emission for its task — the determinism contract is broken.
    EmissionMismatch {
        /// Which run emitted the divergent stream.
        run: RunLabel,
        /// Index of the request in [`Scenario::requests`](crate::Scenario::requests).
        request: usize,
        /// The run's rendered emission.
        got: Vec<String>,
        /// The solo reference emission.
        want: Vec<String>,
    },
    /// A cancelled/expired/poisoned request surfaced a candidate that the
    /// solo reference run never emits.
    StrayCandidate {
        /// Which run emitted it.
        run: RunLabel,
        /// Index of the request.
        request: usize,
        /// The rendered candidate with no reference counterpart.
        candidate: String,
    },
    /// A request completed in both runs with different emissions.
    CrossRunMismatch {
        /// Index of the request.
        request: usize,
        /// Emission under the reference service shape.
        reference: Vec<String>,
        /// Emission under the alternate service shape.
        alternate: Vec<String>,
    },
    /// Live or queued slots survived the drain: a session slot leaked.
    SlotLeak {
        /// Which run leaked.
        run: RunLabel,
        /// Live sessions still registered after every ticket resolved.
        live: usize,
        /// Requests still queued after every ticket resolved.
        queued: usize,
    },
    /// More sessions ran concurrently than admission control allows.
    AdmissionPeakExceeded {
        /// Which run overshot.
        run: RunLabel,
        /// Observed high-water mark of live sessions.
        peak: usize,
        /// The configured `max_live_sessions` bound.
        limit: usize,
    },
    /// Per-class lifecycle counters do not add up: every admitted request
    /// must end as exactly one of completed/cancelled/expired, or vanish
    /// with an observed poisoned session.
    CounterImbalance {
        /// Which run drifted.
        run: RunLabel,
        /// Priority-class label.
        class: &'static str,
        /// Requests admitted.
        submitted: u64,
        /// Requests that ran to completion.
        completed: u64,
        /// Requests cancelled.
        cancelled: u64,
        /// Requests expired at their deadline.
        expired: u64,
        /// Poisoned sessions observed via a panicking `Ticket::wait`.
        vanished: u64,
    },
    /// The shed counter disagrees with the number of submits the executor
    /// saw refused.
    ShedMismatch {
        /// Which run drifted.
        run: RunLabel,
        /// Priority-class label.
        class: &'static str,
        /// What the service counted.
        counted: u64,
        /// What the executor observed.
        observed: u64,
    },
    /// A deadline beyond the end of the virtual timeline fired anyway —
    /// real time leaked into what must be a fully simulated clock.
    DeadlineGhost {
        /// Which run fired it.
        run: RunLabel,
        /// Index of the request.
        request: usize,
        /// The deadline's position on the virtual timeline.
        deadline_us: u64,
        /// Where the virtual timeline ended.
        virtual_end_us: u64,
    },
    /// A reported latency exceeds the virtual timeline — the sample was
    /// taken from a real clock, not the simulated one.
    LatencyOffTimeline {
        /// Which run reported it.
        run: RunLabel,
        /// Index of the request.
        request: usize,
        /// Which latency (`"queue_wait"` or `"ttfc"`).
        which: &'static str,
        /// The reported value in microseconds.
        observed_us: u128,
        /// Virtual length of the run.
        virtual_end_us: u64,
    },
    /// The flight recorder retained a different number of traces than the
    /// number of submit attempts — a request resolved without leaving a
    /// trace, or left more than one.
    TraceConservation {
        /// Which run drifted.
        run: RunLabel,
        /// Submit attempts the executor made (admitted + shed).
        expected: usize,
        /// Traces the flight recorder retained after the drain.
        retained: usize,
    },
    /// A retained trace breaks the span model: not exactly one terminal
    /// event, an inverted span interval, a timestamp past the end of the
    /// virtual timeline, or a child span escaping the root `request`
    /// interval.
    TraceMalformed {
        /// Which run produced it.
        run: RunLabel,
        /// The offending trace's request id.
        trace: u64,
        /// Human-readable evidence.
        detail: String,
    },
    /// The run never drained: live/queued slots still held after the
    /// physical grace period.
    Quiescence {
        /// Which run hung.
        run: RunLabel,
        /// Live sessions at timeout.
        live: usize,
        /// Queued requests at timeout.
        queued: usize,
    },
    /// The cache plan produced different observation logs on two replays.
    CacheNondeterministic {
        /// First step at which the logs diverge.
        step: usize,
        /// First run's log line at that step.
        first: String,
        /// Second run's log line at that step.
        second: String,
    },
    /// A probe was served that cannot answer its row budget.
    CacheServesContract {
        /// Index of the offending cache op.
        step: usize,
        /// Human-readable evidence.
        detail: String,
    },
    /// A spec observed exact was later served truncated with no intervening
    /// rotation or clear that could have evicted the entry.
    CacheExactnessDowngrade {
        /// Index of the offending cache op.
        step: usize,
    },
    /// hits + misses drifted from the number of lookups issued.
    CacheCounterDrift {
        /// Hits counted by the cache.
        hits: u64,
        /// Misses counted by the cache.
        misses: u64,
        /// Lookups the plan issued.
        lookups: u64,
    },
    /// Resident bytes exceeded every byte budget in force since the last
    /// clear.
    CacheRetentionOverrun {
        /// Index of the offending cache op.
        step: usize,
        /// Resident bytes observed.
        bytes: u64,
        /// Largest budget in force.
        budget: u64,
    },
    /// The single-flight probe table's counters do not conserve: every
    /// lookup must resolve as exactly one of a hit (served by another
    /// probe's leader) or a leader election.
    SingleFlightImbalance {
        /// Which run drifted.
        run: RunLabel,
        /// In-flight-table lookups counted.
        lookups: u64,
        /// Lookups served by waiting on a leader.
        hits: u64,
        /// Lookups elected leader.
        leaders: u64,
    },
    /// A net-walk connection's stream broke the content contract: a
    /// completed stream was not byte-identical to the solo reference, an
    /// interrupted stream was not a strict prefix of it, or the stream's
    /// framing/terminal event was malformed.
    NetStreamDiverged {
        /// Index of the connection in [`NetPlan::connections`](crate::NetPlan::connections).
        connection: usize,
        /// Human-readable evidence.
        detail: String,
    },
    /// After the net walk, the front or the service failed to drain back
    /// to idle — a connection or admission slot leaked.
    NetNoQuiescence {
        /// Live sessions at timeout.
        live: usize,
        /// Queued requests at timeout.
        queued: usize,
        /// Connections the front still held open.
        open: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::EmissionMismatch { run, request, got, want } => write!(
                f,
                "emission mismatch: {run} run, request {request}: completed with {} candidates, \
                 reference emits {} (first divergence at index {})",
                got.len(),
                want.len(),
                got.iter().zip(want).position(|(g, w)| g != w).unwrap_or(got.len().min(want.len()))
            ),
            Violation::StrayCandidate { run, request, candidate } => write!(
                f,
                "stray candidate: {run} run, request {request} surfaced `{candidate}` which the \
                 reference run never emits"
            ),
            Violation::CrossRunMismatch { request, reference, alternate } => write!(
                f,
                "cross-run mismatch: request {request} completed in both runs but emitted {} vs \
                 {} candidates",
                reference.len(),
                alternate.len()
            ),
            Violation::SlotLeak { run, live, queued } => write!(
                f,
                "slot leak: {run} run still holds {live} live / {queued} queued after every \
                 ticket resolved"
            ),
            Violation::AdmissionPeakExceeded { run, peak, limit } => {
                write!(
                    f,
                    "admission peak exceeded: {run} run peaked at {peak} live (limit {limit})"
                )
            }
            Violation::CounterImbalance {
                run,
                class,
                submitted,
                completed,
                cancelled,
                expired,
                vanished,
            } => write!(
                f,
                "counter imbalance: {run} run, class {class}: submitted {submitted} != \
                 completed {completed} + cancelled {cancelled} + expired {expired} + \
                 vanished {vanished}"
            ),
            Violation::ShedMismatch { run, class, counted, observed } => write!(
                f,
                "shed mismatch: {run} run, class {class}: service counted {counted}, executor \
                 observed {observed}"
            ),
            Violation::DeadlineGhost { run, request, deadline_us, virtual_end_us } => write!(
                f,
                "deadline ghost: {run} run, request {request} expired at virtual {deadline_us}us \
                 but the timeline only reached {virtual_end_us}us — a real clock leaked in"
            ),
            Violation::LatencyOffTimeline { run, request, which, observed_us, virtual_end_us } => {
                write!(
                    f,
                    "latency off the timeline: {run} run, request {request} reported {which} of \
                     {observed_us}us on a {virtual_end_us}us virtual timeline"
                )
            }
            Violation::TraceConservation { run, expected, retained } => write!(
                f,
                "trace conservation broken: {run} run made {expected} submit attempts but the \
                 flight recorder retained {retained} traces"
            ),
            Violation::TraceMalformed { run, trace, detail } => {
                write!(f, "trace malformed: {run} run, request {trace}: {detail}")
            }
            Violation::Quiescence { run, live, queued } => write!(
                f,
                "no quiescence: {run} run still at {live} live / {queued} queued when the \
                 physical grace period expired"
            ),
            Violation::CacheNondeterministic { step, first, second } => write!(
                f,
                "cache nondeterminism at op {step}: `{first}` vs `{second}` on identical replays"
            ),
            Violation::CacheServesContract { step, detail } => {
                write!(f, "cache serves-contract broken at op {step}: {detail}")
            }
            Violation::CacheExactnessDowngrade { step } => write!(
                f,
                "cache exactness downgrade at op {step}: an exact entry was served truncated \
                 with no eviction in between"
            ),
            Violation::CacheCounterDrift { hits, misses, lookups } => {
                write!(f, "cache counter drift: {hits} hits + {misses} misses != {lookups} lookups")
            }
            Violation::CacheRetentionOverrun { step, bytes, budget } => write!(
                f,
                "cache retention overrun at op {step}: {bytes} resident bytes over the {budget} \
                 byte high-water budget"
            ),
            Violation::SingleFlightImbalance { run, lookups, hits, leaders } => write!(
                f,
                "single-flight imbalance: {run} run counted {lookups} lookups != {hits} hits + \
                 {leaders} leaders"
            ),
            Violation::NetStreamDiverged { connection, detail } => {
                write!(f, "net stream diverged: connection {connection}: {detail}")
            }
            Violation::NetNoQuiescence { live, queued, open } => write!(
                f,
                "net walk never drained: {live} live / {queued} queued sessions, {open} open \
                 connections after the grace period"
            ),
        }
    }
}
