//! The scenario model and its seeded generator.
//!
//! A [`Scenario`] is plain data: every choice the fuzzer makes is recorded
//! in the struct, so a failing scenario can be printed, shrunk field by
//! field, and replayed without re-deriving anything from the seed. The
//! generator ([`generate`]) is a pure function of the seed — same seed,
//! same scenario, forever — which is what makes a seed a replay token.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper bound on requests per generated scenario (the shrinker may go
/// lower, never higher).
pub const MAX_REQUESTS: usize = 6;

/// Number of distinct synthesis task fixtures scenarios draw from.
pub const TASK_COUNT: u8 = 3;

/// One complete randomized run description: service shapes for the two
/// runs, a submit/cancel schedule over the virtual timeline, and a
/// probe-cache churn plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The seed this scenario was generated from (0 for hand-built ones).
    pub seed: u64,
    /// Service shape of the reference run.
    pub reference: ServicePlan,
    /// Service shape of the alternate run — different pool size, admission
    /// limits and index-access toggle. Pool knobs must never change what a
    /// completed request emits.
    pub alternate: ServicePlan,
    /// Virtual time advanced after the last submit/cancel event, before the
    /// remaining tickets are drained. Deadlines beyond the end of the
    /// timeline must never fire.
    pub final_advance_us: u64,
    /// The request schedule, in submit order.
    pub requests: Vec<RequestPlan>,
    /// Deterministic probe-cache churn (byte-budget pressure) checked
    /// alongside the service runs.
    pub cache: CachePlan,
    /// Connection-lifecycle walk over the TCP front (connect, submit,
    /// stall, close, remote-cancel) checked alongside the service runs.
    pub net: NetPlan,
    /// Whether the **alternate** run uses any-k frontier emission (the
    /// reference always keeps the default round barrier). Emission policy
    /// must never change a completed request's candidate set or ranking —
    /// the cross-run oracle checks any-k against the barrier directly.
    pub any_k: bool,
    /// Whether the **alternate** run's database keeps single-flight probe
    /// sharing enabled (the reference always does). The toggle must never
    /// change results, only how many probe executions happen; the
    /// conservation oracle checks `hits + leaders == lookups` either way.
    pub single_flight: bool,
}

impl Scenario {
    /// Virtual length of the run: the last scheduled event plus the final
    /// advance. The executor never moves the clock past this point.
    pub fn virtual_end_us(&self) -> u64 {
        let last_event = self
            .requests
            .iter()
            .flat_map(|r| [Some(r.submit_at_us), r.cancel_at_us])
            .flatten()
            .max()
            .unwrap_or(0);
        last_event + self.final_advance_us
    }
}

/// The shape of one service instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServicePlan {
    /// Scheduler pool workers.
    pub workers: usize,
    /// Admission limit on concurrently live sessions.
    pub max_live: usize,
    /// Admission queue bound; beyond it requests are shed.
    pub max_queued: usize,
    /// Whether the database serves probes through its ordered secondary
    /// indexes (an access-path toggle that must never change results).
    pub index_access: bool,
}

/// One request in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestPlan {
    /// Which task fixture (database + NLQ + gold guidance) to submit.
    pub task: u8,
    /// Priority class index (0 interactive, 1 batch, 2 background).
    pub priority: u8,
    /// Engine candidate budget (kept small so scenarios stay fast).
    pub max_candidates: usize,
    /// Virtual submit time.
    pub submit_at_us: u64,
    /// Service deadline relative to submission, if any.
    pub deadline_us: Option<u64>,
    /// Virtual time at which the ticket is cancelled, if any.
    pub cancel_at_us: Option<u64>,
    /// Drop the ticket unwaited after the event walk (drop-cancels-work).
    pub drop_ticket: bool,
    /// Inject a guidance-model panic after this many score calls. Never
    /// combined with `drop_ticket` so the executor can observe the poisoned
    /// session through `Ticket::wait` and keep the books balanced.
    pub panic_after: Option<u32>,
}

/// A deterministic probe-cache churn schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CachePlan {
    /// Operations applied in order to one `ProbeCache`.
    pub ops: Vec<CacheOp>,
}

/// One probe-cache operation. Spec indexes address a fixed pool of distinct
/// probe specs; row counts are clamped to the fixture's result sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// Memoize a (possibly truncated) result for a spec.
    Insert {
        /// Index into the fixed spec pool.
        spec: u8,
        /// Number of result rows to retain (clamped to the full result).
        rows: u8,
        /// Whether the retained rows are claimed complete.
        exact: bool,
    },
    /// Look a spec up under a row budget (`None` = need the full result).
    Get {
        /// Index into the fixed spec pool.
        spec: u8,
        /// Row budget of the lookup.
        budget: Option<u8>,
    },
    /// Re-budget the cache mid-run (byte-budget churn).
    SetMaxBytes {
        /// New byte budget.
        bytes: u32,
    },
    /// Drop every entry.
    Clear,
}

/// A connection-lifecycle schedule against a real TCP front.
///
/// Unlike the service runs, the net walk cannot live on the virtual clock —
/// it drives real sockets — so its oracles are content and conservation
/// oracles only: completed streams are byte-identical to a solo run,
/// interrupted streams are a strict prefix, and the front plus service
/// always drain back to idle whatever the client did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetPlan {
    /// Connections driven sequentially against one server.
    pub connections: Vec<ConnectionPlan>,
}

/// One client connection of a [`NetPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionPlan {
    /// Which task fixture the submit frame names.
    pub task: u8,
    /// Candidate budget carried in the submit frame.
    pub max_candidates: usize,
    /// What the client does with the stream.
    pub action: ConnAction,
}

/// Client behaviour over one submitted stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnAction {
    /// Read the stream to its terminal event like a well-behaved client.
    ReadAll,
    /// Read until this many candidate lines arrived, then drop the socket
    /// mid-stream — the disconnect-reaps-the-session path.
    CloseAfter(u8),
    /// Read until this many candidate lines arrived, `POST /cancel` the
    /// request from a second connection, then drain to the terminal event.
    CancelThenDrain(u8),
    /// Submit, stall without reading while the run emits into the outbox
    /// and kernel buffers, then read everything — the slow-reader path.
    StallThenRead,
}

/// Generate the scenario for a seed. Pure: the only entropy source is the
/// seeded [`StdRng`], so the mapping seed → scenario is stable across runs,
/// processes and machines.
pub fn generate(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let reference = ServicePlan {
        workers: rng.gen_range(1..=3),
        max_live: rng.gen_range(1..=4),
        max_queued: rng.gen_range(0..=4),
        index_access: true,
    };
    let alternate = ServicePlan {
        workers: rng.gen_range(1..=4),
        max_live: rng.gen_range(1..=4),
        max_queued: rng.gen_range(0..=4),
        index_access: rng.gen_bool(0.5),
    };
    let request_count = rng.gen_range(1..=MAX_REQUESTS);
    let mut at = 0u64;
    let mut requests = Vec::with_capacity(request_count);
    for _ in 0..request_count {
        at += rng.gen_range(0..=400u64);
        let task = rng.gen_range(0..TASK_COUNT);
        let priority = rng.gen_range(0..3u8);
        let max_candidates = rng.gen_range(1..=8usize);
        let deadline_us = if rng.gen_bool(0.3) { Some(rng.gen_range(0..=2_500u64)) } else { None };
        let cancel_at_us =
            if rng.gen_bool(0.25) { Some(at + rng.gen_range(0..=1_500u64)) } else { None };
        let drop_ticket = rng.gen_bool(0.12);
        let panic_after =
            if !drop_ticket && rng.gen_bool(0.12) { Some(rng.gen_range(1..=40u32)) } else { None };
        requests.push(RequestPlan {
            task,
            priority,
            max_candidates,
            submit_at_us: at,
            deadline_us,
            cancel_at_us,
            drop_ticket,
            panic_after,
        });
    }
    let final_advance_us = rng.gen_range(0..=4_000u64);
    let cache = generate_cache_plan(&mut rng);
    // Drawn after the cache plan so pre-net seeds map to the same service
    // and cache choices they always did.
    let net = generate_net_plan(&mut rng);
    // Drawn after the net plan for the same reason: pre-existing seeds keep
    // their exact request, cache and net choices and only gain the toggles.
    let any_k = rng.gen_bool(0.5);
    let single_flight = rng.gen_bool(0.5);
    Scenario {
        seed,
        reference,
        alternate,
        final_advance_us,
        requests,
        cache,
        net,
        any_k,
        single_flight,
    }
}

fn generate_cache_plan(rng: &mut StdRng) -> CachePlan {
    let op_count = rng.gen_range(0..=48usize);
    let mut ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        let roll = rng.gen_range(0..100u32);
        ops.push(if roll < 45 {
            CacheOp::Insert {
                spec: rng.gen_range(0..6u8),
                rows: rng.gen_range(0..=3u8),
                exact: rng.gen_bool(0.5),
            }
        } else if roll < 85 {
            let budget = if rng.gen_bool(0.5) { Some(rng.gen_range(0..=3u8)) } else { None };
            CacheOp::Get { spec: rng.gen_range(0..6u8), budget }
        } else if roll < 96 {
            CacheOp::SetMaxBytes { bytes: rng.gen_range(64..=4_096u32) }
        } else {
            CacheOp::Clear
        });
    }
    CachePlan { ops }
}

fn generate_net_plan(rng: &mut StdRng) -> NetPlan {
    if !rng.gen_bool(0.4) {
        return NetPlan::default();
    }
    let connection_count = rng.gen_range(1..=3usize);
    let mut connections = Vec::with_capacity(connection_count);
    for _ in 0..connection_count {
        let task = rng.gen_range(0..TASK_COUNT);
        let max_candidates = rng.gen_range(1..=6usize);
        let roll = rng.gen_range(0..100u32);
        let action = if roll < 40 {
            ConnAction::ReadAll
        } else if roll < 65 {
            ConnAction::CloseAfter(rng.gen_range(0..=3u8))
        } else if roll < 85 {
            ConnAction::CancelThenDrain(rng.gen_range(0..=3u8))
        } else {
            ConnAction::StallThenRead
        };
        connections.push(ConnectionPlan { task, max_candidates, action });
    }
    NetPlan { connections }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        for seed in 0..50 {
            assert_eq!(generate(seed), generate(seed), "seed {seed} diverged");
        }
    }

    #[test]
    fn distinct_seeds_produce_distinct_scenarios() {
        let distinct = (0..50).map(generate).collect::<Vec<_>>();
        let all_equal = distinct.windows(2).all(|w| {
            w[0].requests == w[1].requests
                && w[0].reference == w[1].reference
                && w[0].alternate == w[1].alternate
        });
        assert!(!all_equal, "seeds 0..50 all mapped to the same scenario");
    }

    #[test]
    fn panic_injection_never_combines_with_dropped_tickets() {
        for seed in 0..500 {
            for request in &generate(seed).requests {
                assert!(
                    !(request.drop_ticket && request.panic_after.is_some()),
                    "seed {seed} generated an unobservable panic"
                );
            }
        }
    }

    #[test]
    fn net_plans_appear_and_cover_every_connection_action() {
        let mut with_connections = 0usize;
        let mut seen = [false; 4];
        for seed in 0..500 {
            let plan = generate(seed).net;
            if plan.connections.is_empty() {
                continue;
            }
            with_connections += 1;
            for connection in &plan.connections {
                seen[match connection.action {
                    ConnAction::ReadAll => 0,
                    ConnAction::CloseAfter(_) => 1,
                    ConnAction::CancelThenDrain(_) => 2,
                    ConnAction::StallThenRead => 3,
                }] = true;
            }
        }
        assert!(with_connections > 100, "only {with_connections} seeds drew a net walk");
        assert_eq!(seen, [true; 4], "some connection action is never generated");
    }

    #[test]
    fn virtual_end_covers_every_scheduled_event() {
        for seed in 0..100 {
            let scenario = generate(seed);
            let end = scenario.virtual_end_us();
            for request in &scenario.requests {
                assert!(request.submit_at_us <= end);
                if let Some(cancel) = request.cancel_at_us {
                    assert!(cancel <= end);
                }
            }
        }
    }
}
