//! The connection-lifecycle walk: a scenario's [`NetPlan`] driven against a
//! real TCP front.
//!
//! Real sockets cannot run on the virtual clock, so — unlike the service
//! runs — the net walk states no timeline oracles. What it can and does
//! hold the front to are the content and conservation contracts:
//!
//! * a stream whose terminal event says `completed` without shed is
//!   **byte-identical** to the solo single-worker reference emission;
//! * any interrupted stream (closed socket, remote cancel, overflow shed)
//!   surfaced a strict **prefix** of the reference — never an invented or
//!   reordered candidate;
//! * the terminal event's `candidates` count matches the lines actually
//!   streamed;
//! * whatever the client did — read everything, stall, vanish mid-stream,
//!   cancel from a second connection — the front and the service drain
//!   back to zero open connections, zero live and zero queued sessions.
//!
//! Connections run sequentially so the walk itself is deterministic up to
//! scheduling; every oracle above is schedule-independent.

use crate::scenario::{ConnAction, ConnectionPlan, NetPlan, TASK_COUNT};
use crate::violation::Violation;
use duoquest_core::SynthesisSession;
use duoquest_net::json::Json;
use duoquest_net::{client, wire, NetConfig, NetServer, TaskRegistry, TaskSpec};
use duoquest_service::{ServiceConfig, SynthesisService};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Patience for one connection's stream and for the post-walk drain (real
/// time: harness patience, not a timeline oracle).
const GRACE: Duration = Duration::from_secs(10);

/// The solo reference emission of a task, rendered through the same wire
/// renderer the front streams with. Cached per (task, budget) across the
/// sweep, like `exec::reference_emission`.
fn reference_lines(task: u8, max_candidates: usize) -> Arc<Vec<String>> {
    type ReferenceMap = HashMap<(u8, usize), Arc<Vec<String>>>;
    static REFERENCES: OnceLock<Mutex<ReferenceMap>> = OnceLock::new();
    let references = REFERENCES.get_or_init(Default::default);
    if let Some(found) =
        references.lock().expect("net reference cache poisoned").get(&(task, max_candidates))
    {
        return Arc::clone(found);
    }
    let db = crate::exec::fixture_db(true);
    let (nlq, model) = crate::exec::task_model(task);
    let result = SynthesisSession::new(Arc::clone(&db), nlq, model)
        .with_config(crate::exec::engine_config(max_candidates))
        .run();
    let lines = Arc::new(
        result
            .candidates
            .iter()
            .enumerate()
            .map(|(k, c)| wire::candidate_line(k, c, db.schema()).trim_end().to_string())
            .collect::<Vec<_>>(),
    );
    references
        .lock()
        .expect("net reference cache poisoned")
        .entry((task, max_candidates))
        .or_insert(lines)
        .clone()
}

/// Drive a scenario's net plan against a freshly bound front and judge it.
/// `Ok(())` for the empty plan without binding anything.
pub fn check_net_plan(plan: &NetPlan) -> Result<(), Violation> {
    if plan.connections.is_empty() {
        return Ok(());
    }
    let service = Arc::new(SynthesisService::new(ServiceConfig {
        workers: 2,
        max_live_sessions: 4,
        max_queued: 4,
        ..ServiceConfig::default()
    }));
    let mut registry = TaskRegistry::new();
    for task in 0..TASK_COUNT {
        let (nlq, model) = crate::exec::task_model(task);
        registry.register(
            format!("t{task}"),
            TaskSpec {
                db: crate::exec::fixture_db(true),
                nlq,
                model,
                tsq: None,
                config: crate::exec::engine_config(8),
            },
        );
    }
    let mut server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&service), registry, NetConfig::default())
            .map_err(|e| Violation::NetStreamDiverged {
                connection: 0,
                detail: format!("front failed to bind: {e}"),
            })?;

    for (index, connection) in plan.connections.iter().enumerate() {
        run_connection(server.addr(), index, connection)?;
    }

    // Conservation: everything the walk touched must drain — no leaked
    // admission slot, no connection held open by a vanished client.
    let deadline = Instant::now() + GRACE;
    loop {
        let stats = service.stats();
        if stats.live_sessions == 0 && stats.queued_requests == 0 && server.open_connections() == 0
        {
            break;
        }
        if Instant::now() > deadline {
            return Err(Violation::NetNoQuiescence {
                live: stats.live_sessions,
                queued: stats.queued_requests,
                open: server.open_connections(),
            });
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    server.shutdown(Duration::from_secs(5));
    Ok(())
}

/// An incrementally read stream on a blocking socket with a read timeout.
struct StreamReader {
    socket: TcpStream,
    decoder: client::ResponseDecoder,
    lines: Vec<String>,
}

impl StreamReader {
    fn submit(
        addr: SocketAddr,
        connection: usize,
        frame: &wire::SubmitWire,
    ) -> Result<Self, Violation> {
        let fail = |detail: String| Violation::NetStreamDiverged { connection, detail };
        let mut socket =
            TcpStream::connect(addr).map_err(|e| fail(format!("connect failed: {e}")))?;
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(|e| fail(format!("socket setup failed: {e}")))?;
        client::send_request(&mut socket, "POST", "/submit", Some(&frame.to_json()))
            .map_err(|e| fail(format!("submit write failed: {e}")))?;
        Ok(StreamReader { socket, decoder: client::ResponseDecoder::new(), lines: Vec::new() })
    }

    /// Read until `enough(lines, done)` holds or the stream ends. Timeouts
    /// inside the per-connection grace window just retry.
    fn read_until(
        &mut self,
        connection: usize,
        mut enough: impl FnMut(&[String], bool) -> bool,
    ) -> Result<(), Violation> {
        let deadline = Instant::now() + GRACE;
        let mut buf = [0u8; 4096];
        loop {
            if enough(&self.lines, self.decoder.is_done()) || self.decoder.is_done() {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(Violation::NetStreamDiverged {
                    connection,
                    detail: format!(
                        "stream stalled: {} lines after the grace period",
                        self.lines.len()
                    ),
                });
            }
            match self.socket.read(&mut buf) {
                Ok(0) => {
                    // EOF: the decoder either saw the terminal chunk (done,
                    // caught next iteration) or the framing broke.
                    if !self.decoder.is_done() {
                        return Err(Violation::NetStreamDiverged {
                            connection,
                            detail: "connection closed mid-stream by the server".into(),
                        });
                    }
                }
                Ok(n) => {
                    self.decoder.feed(&buf[..n]);
                    self.lines.extend(self.decoder.take_lines());
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => {
                    return Err(Violation::NetStreamDiverged {
                        connection,
                        detail: format!("stream read failed: {e}"),
                    });
                }
            }
        }
    }
}

fn candidate_count(lines: &[String]) -> usize {
    lines.iter().filter(|l| l.contains("\"event\":\"candidate\"")).count()
}

fn run_connection(addr: SocketAddr, index: usize, plan: &ConnectionPlan) -> Result<(), Violation> {
    let task = plan.task % TASK_COUNT;
    let budget = plan.max_candidates.max(1);
    let reference = reference_lines(task, budget);
    let mut frame = wire::SubmitWire::task(format!("t{task}"));
    frame.max_candidates = Some(budget);

    match plan.action {
        ConnAction::ReadAll => {
            let mut reader = StreamReader::submit(addr, index, &frame)?;
            reader.read_until(index, |_, done| done)?;
            judge_stream(index, &reader.lines, &reference)
        }
        ConnAction::StallThenRead => {
            let mut reader = StreamReader::submit(addr, index, &frame)?;
            // Let the run emit into the outbox and kernel buffers while the
            // client reads nothing, then drain late.
            std::thread::sleep(Duration::from_millis(30));
            reader.read_until(index, |_, done| done)?;
            judge_stream(index, &reader.lines, &reference)
        }
        ConnAction::CloseAfter(k) => {
            let mut reader = StreamReader::submit(addr, index, &frame)?;
            reader.read_until(index, |lines, _| candidate_count(lines) >= k as usize)?;
            if reader.decoder.is_done() {
                // The run finished before the close could interrupt it.
                return judge_stream(index, &reader.lines, &reference);
            }
            // Drop the socket mid-stream; what was seen must already be a
            // clean prefix. The post-walk drain check proves the reap.
            let seen: Vec<&String> =
                reader.lines.iter().filter(|l| l.contains("\"event\":\"candidate\"")).collect();
            for (k, line) in seen.iter().enumerate() {
                if reference.get(k) != Some(*line) {
                    return Err(Violation::NetStreamDiverged {
                        connection: index,
                        detail: format!("pre-close candidate {k} is not the reference's: {line}"),
                    });
                }
            }
            Ok(())
        }
        ConnAction::CancelThenDrain(k) => {
            let mut reader = StreamReader::submit(addr, index, &frame)?;
            reader.read_until(index, |lines, _| {
                !lines.is_empty() && candidate_count(lines) >= k as usize
            })?;
            let id = reader
                .lines
                .first()
                .and_then(|l| Json::parse(l).ok())
                .and_then(|j| j.get("id").and_then(Json::as_u64))
                .ok_or_else(|| Violation::NetStreamDiverged {
                    connection: index,
                    detail: format!("no accepted id in first line {:?}", reader.lines.first()),
                })?;
            // Cancel from a second connection, then drain this stream to its
            // terminal event (which may still be `completed` if the run won
            // the race — judge_stream accepts either).
            client::request(addr, "POST", "/cancel", Some(&format!("{{\"id\":{id}}}")), GRACE)
                .map_err(|e| Violation::NetStreamDiverged {
                    connection: index,
                    detail: format!("cancel request failed: {e}"),
                })?;
            reader.read_until(index, |_, done| done)?;
            judge_stream(index, &reader.lines, &reference)
        }
    }
}

/// Judge one fully read stream: framing, terminal accounting, and the
/// prefix/byte-identity content contract.
fn judge_stream(index: usize, lines: &[String], reference: &[String]) -> Result<(), Violation> {
    let fail = |detail: String| Err(Violation::NetStreamDiverged { connection: index, detail });
    if lines.len() < 2 {
        return fail(format!("stream too short: {lines:?}"));
    }
    if !lines[0].contains("\"event\":\"accepted\"") {
        return fail(format!("first event is not accepted: {}", lines[0]));
    }
    let done = match Json::parse(lines.last().expect("len checked")) {
        Ok(done) => done,
        Err(e) => return fail(format!("unparseable terminal event: {e}")),
    };
    if done.get("event").and_then(Json::as_str) != Some("done") {
        return fail(format!("terminal event is not done: {}", lines[lines.len() - 1]));
    }
    let candidates = &lines[1..lines.len() - 1];
    if done.get("candidates").and_then(Json::as_u64) != Some(candidates.len() as u64) {
        return fail(format!(
            "terminal event counts {:?} candidates but {} were streamed",
            done.get("candidates").and_then(Json::as_u64),
            candidates.len()
        ));
    }
    for (k, line) in candidates.iter().enumerate() {
        if reference.get(k) != Some(line) {
            return fail(format!("candidate {k} is not the reference's: {line}"));
        }
    }
    let status = done.get("status").and_then(Json::as_str).unwrap_or("?");
    let shed = done.get("shed").and_then(Json::as_bool).unwrap_or(false);
    if status == "completed" && !shed && candidates.len() != reference.len() {
        return fail(format!(
            "completed unshed stream emitted {} of the reference's {} candidates",
            candidates.len(),
            reference.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ConnectionPlan;

    fn plan(connections: Vec<ConnectionPlan>) -> NetPlan {
        NetPlan { connections }
    }

    #[test]
    fn every_connection_action_checks_clean() {
        for action in [
            ConnAction::ReadAll,
            ConnAction::StallThenRead,
            ConnAction::CloseAfter(1),
            ConnAction::CancelThenDrain(0),
        ] {
            let result =
                check_net_plan(&plan(vec![ConnectionPlan { task: 0, max_candidates: 4, action }]));
            assert!(result.is_ok(), "{action:?}: {}", result.unwrap_err());
        }
    }

    #[test]
    fn a_mixed_walk_checks_clean() {
        let result = check_net_plan(&plan(vec![
            ConnectionPlan { task: 0, max_candidates: 3, action: ConnAction::ReadAll },
            ConnectionPlan { task: 1, max_candidates: 5, action: ConnAction::CloseAfter(0) },
            ConnectionPlan { task: 2, max_candidates: 2, action: ConnAction::CancelThenDrain(1) },
            ConnectionPlan { task: 1, max_candidates: 6, action: ConnAction::StallThenRead },
        ]));
        assert!(result.is_ok(), "{}", result.unwrap_err());
    }

    #[test]
    fn the_empty_plan_is_trivially_clean() {
        assert!(check_net_plan(&NetPlan::default()).is_ok());
    }
}
