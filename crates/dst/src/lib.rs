//! Deterministic simulation testing (DST) for the Duoquest serving stack.
//!
//! The whole stack — engine, scheduler pool, serving layer — reads time
//! through the [`Clock`](duoquest_core::Clock) trait, so this crate can run
//! fully randomized multi-tenant workloads on a
//! [`SimClock`](duoquest_core::SimClock) (manual-advance virtual time) and
//! hold them to oracles that real-clock
//! tests cannot state, let alone check:
//!
//! * deadlines beyond the end of the virtual timeline **never** fire, and
//!   no reported latency exceeds the timeline — real time cannot leak in;
//! * completed requests emit **byte-identically** to a solo single-worker
//!   run, whatever the pool size, priorities, admission pressure, cancel
//!   storms, injected panics or index-access toggles around them;
//! * the service always drains back to zero live/queued slots and its
//!   lifecycle counters balance exactly.
//!
//! The pieces:
//!
//! * [`generate`] maps a `u64` seed to a [`Scenario`] — a pure function, so
//!   a seed is a complete replay token;
//! * [`check_scenario`] executes a scenario twice (reference vs alternate
//!   service shape) plus a deterministic probe-cache churn plan and a
//!   connection-lifecycle walk over the real TCP front (a [`NetPlan`]:
//!   connect / submit / stall / close / remote-cancel, held to content
//!   and conservation oracles), and returns the first [`Violation`];
//! * [`shrink`] delta-debugs a failing scenario down to a minimal one that
//!   still fails;
//! * [`check_seed`] / [`sweep`] wrap the above for the test suites: on
//!   failure they produce a [`Failure`] whose `Display` is a full report —
//!   violation, minimized scenario, and the exact replay command.
//!
//! The sweep entry point is `tests/sweep.rs`; knobs:
//!
//! * `DST_SEEDS` — seeds per round (default 200);
//! * `DST_ROUNDS` — rounds; round `r` covers seeds `r*DST_SEEDS ..`;
//! * `DST_REPLAY` — run exactly one seed, verbosely.

#![warn(missing_docs)]

mod cache;
mod exec;
mod netwalk;
mod scenario;
mod shrink;
mod violation;

pub use cache::check_cache_plan;
pub use exec::{check_scenario, CheckOptions, Observed, RunRecord};
pub use netwalk::check_net_plan;
pub use scenario::{
    generate, CacheOp, CachePlan, ConnAction, ConnectionPlan, NetPlan, RequestPlan, Scenario,
    ServicePlan, MAX_REQUESTS, TASK_COUNT,
};
pub use shrink::shrink;
pub use violation::{RunLabel, Violation};

use std::fmt;

/// Evaluation budget handed to the shrinker by [`check_seed`] — enough for
/// a fixpoint on [`MAX_REQUESTS`]-sized scenarios, small enough to keep a
/// failing sweep's runtime bounded.
pub const SHRINK_BUDGET: usize = 400;

/// A seed whose scenario violated an oracle, minimized and ready to print.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The seed that produced the failing scenario.
    pub seed: u64,
    /// The violation the *original* scenario produced.
    pub violation: Violation,
    /// The scenario as generated from the seed.
    pub scenario: Scenario,
    /// The minimized scenario (equal to `scenario` if nothing smaller
    /// still failed).
    pub shrunk: Scenario,
    /// The violation the minimized scenario produces.
    pub shrunk_violation: Violation,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DST oracle violation at seed {}", self.seed)?;
        writeln!(f, "  {}", self.violation)?;
        writeln!(
            f,
            "minimized ({} of {} requests):",
            self.shrunk.requests.len(),
            self.scenario.requests.len()
        )?;
        writeln!(f, "  {}", self.shrunk_violation)?;
        writeln!(f, "{:#?}", self.shrunk)?;
        writeln!(f, "replay: {}", replay_command(self.seed))
    }
}

/// The shell command that replays one seed verbosely.
pub fn replay_command(seed: u64) -> String {
    format!("DST_REPLAY={seed} cargo test -p duoquest-dst --test sweep -- --nocapture")
}

/// Generate, check, and — on violation — shrink one seed's scenario.
pub fn check_seed(seed: u64) -> Result<(), Box<Failure>> {
    check_seed_with(seed, &CheckOptions::default())
}

/// [`check_seed`] with explicit options (fault-injection switches).
pub fn check_seed_with(seed: u64, options: &CheckOptions) -> Result<(), Box<Failure>> {
    let scenario = generate(seed);
    let Err(violation) = check_scenario(&scenario, options) else {
        return Ok(());
    };
    let shrunk = shrink(
        scenario.clone(),
        |candidate| check_scenario(candidate, options).is_err(),
        SHRINK_BUDGET,
    );
    let shrunk_violation =
        check_scenario(&shrunk, options).err().unwrap_or_else(|| violation.clone());
    Err(Box::new(Failure { seed, violation, scenario, shrunk, shrunk_violation }))
}

/// Check a range of seeds, stopping at the first failure. Returns the
/// number of seeds that passed.
pub fn sweep(seeds: impl IntoIterator<Item = u64>) -> Result<usize, Box<Failure>> {
    let mut passed = 0;
    for seed in seeds {
        check_seed(seed)?;
        passed += 1;
    }
    Ok(passed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_command_embeds_the_seed() {
        assert!(replay_command(42).contains("DST_REPLAY=42"));
        assert!(replay_command(42).contains("duoquest-dst"));
    }

    #[test]
    fn a_single_seed_checks_clean() {
        assert!(check_seed(0).is_ok(), "{}", check_seed(0).unwrap_err());
    }
}
