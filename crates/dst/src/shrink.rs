//! Delta-debugging minimization of failing scenarios.
//!
//! Given a scenario that fails and a predicate that re-checks failure, the
//! shrinker greedily removes requests (largest chunks first, ddmin-style),
//! then simplifies each surviving request field by field (drop the cancel,
//! the panic, the deadline, the drop-flag; zero the submit time; shrink the
//! candidate budget), then simplifies the net walk (remove connections,
//! tame each surviving connection's action to a plain read), then
//! normalizes the scenario (collapse the alternate service shape onto the
//! reference, shrink the pools, drop the cache and net plans). Every
//! candidate mutation is kept only if the scenario *still fails*; the loop
//! runs to a fixpoint, bounded by an evaluation budget so a flaky failure
//! cannot spin forever.

use crate::scenario::{CachePlan, ConnAction, NetPlan, Scenario, ServicePlan};

/// Shrink `scenario` while `still_fails` holds, evaluating the predicate at
/// most `max_evaluations` times. Returns the smallest failing scenario
/// found (the input itself if nothing smaller still fails).
pub fn shrink<F>(scenario: Scenario, still_fails: F, max_evaluations: usize) -> Scenario
where
    F: Fn(&Scenario) -> bool,
{
    let mut best = scenario;
    let mut evaluations = 0usize;
    let accept = |candidate: &Scenario, best: &mut Scenario, evaluations: &mut usize| {
        if *evaluations >= max_evaluations || *candidate == *best {
            return false;
        }
        *evaluations += 1;
        if still_fails(candidate) {
            *best = candidate.clone();
            true
        } else {
            false
        }
    };

    loop {
        let mut progressed = false;

        // Phase 1: remove requests, halving the chunk size down to single
        // requests. Removing a chunk keeps indexes of later requests moving,
        // so retry from the same position after a successful cut.
        let mut chunk = best.requests.len().max(1).div_ceil(2);
        while chunk >= 1 {
            let mut start = 0;
            while start < best.requests.len() {
                let end = (start + chunk).min(best.requests.len());
                let mut candidate = best.clone();
                candidate.requests.drain(start..end);
                if accept(&candidate, &mut best, &mut evaluations) {
                    progressed = true;
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Phase 2: per-request field simplification.
        for index in 0..best.requests.len() {
            type FieldEdit = fn(&mut crate::scenario::RequestPlan);
            const EDITS: &[FieldEdit] = &[
                |r| r.cancel_at_us = None,
                |r| r.panic_after = None,
                |r| r.deadline_us = None,
                |r| r.drop_ticket = false,
                |r| r.submit_at_us = 0,
                |r| r.priority = 0,
                |r| r.task = 0,
                |r| r.max_candidates = 1,
            ];
            for edit in EDITS {
                let mut candidate = best.clone();
                edit(&mut candidate.requests[index]);
                if accept(&candidate, &mut best, &mut evaluations) {
                    progressed = true;
                }
            }
        }

        // Phase 2b: net-walk simplification — remove connections one at a
        // time, then tame surviving actions to a plain read.
        let mut index = 0;
        while index < best.net.connections.len() {
            let mut candidate = best.clone();
            candidate.net.connections.remove(index);
            if accept(&candidate, &mut best, &mut evaluations) {
                progressed = true;
            } else {
                index += 1;
            }
        }
        for index in 0..best.net.connections.len() {
            let mut candidate = best.clone();
            candidate.net.connections[index].action = ConnAction::ReadAll;
            if accept(&candidate, &mut best, &mut evaluations) {
                progressed = true;
            }
        }

        // Phase 3: scenario-level normalization.
        type ScenarioEdit = fn(&mut Scenario);
        const EDITS: &[ScenarioEdit] = &[
            |s| s.cache = CachePlan::default(),
            |s| s.net = NetPlan::default(),
            |s| s.final_advance_us = 0,
            |s| s.alternate = s.reference,
            |s| {
                s.reference = ServicePlan {
                    workers: 1,
                    max_live: s.requests.len().max(1),
                    max_queued: s.requests.len(),
                    index_access: true,
                }
            },
            |s| s.alternate.workers = 1,
            |s| s.alternate.index_access = true,
            |s| s.any_k = false,
            |s| s.single_flight = true,
        ];
        for edit in EDITS {
            let mut candidate = best.clone();
            edit(&mut candidate);
            if accept(&candidate, &mut best, &mut evaluations) {
                progressed = true;
            }
        }

        if !progressed || evaluations >= max_evaluations {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::generate;

    /// A synthetic predicate: "fails" whenever any request has a cancel
    /// scheduled. The shrinker must converge on exactly one request whose
    /// only surviving feature is the cancel.
    #[test]
    fn converges_on_the_single_triggering_feature() {
        let mut scenario = (0..)
            .map(generate)
            .find(|s| s.requests.len() >= 4 && s.requests.iter().any(|r| r.cancel_at_us.is_some()))
            .expect("some small seed generates a multi-request scenario with a cancel");
        scenario.seed = 0;
        let fails = |s: &Scenario| s.requests.iter().any(|r| r.cancel_at_us.is_some());
        let shrunk = shrink(scenario, fails, 10_000);
        assert_eq!(shrunk.requests.len(), 1, "shrunk to {:#?}", shrunk);
        let survivor = &shrunk.requests[0];
        assert!(survivor.cancel_at_us.is_some(), "the triggering feature must survive");
        assert_eq!(survivor.panic_after, None);
        assert_eq!(survivor.deadline_us, None);
        assert!(!survivor.drop_ticket);
        assert_eq!(survivor.submit_at_us, 0);
        assert!(shrunk.cache.ops.is_empty(), "the cache plan must shrink away");
        assert_eq!(shrunk.alternate, shrunk.reference, "the alternate shape must collapse");
    }

    /// A predicate that never fails leaves the scenario untouched.
    #[test]
    fn passing_scenarios_do_not_shrink() {
        let scenario = generate(17);
        let shrunk = shrink(scenario.clone(), |_| false, 1_000);
        assert_eq!(shrunk, scenario);
    }
}
