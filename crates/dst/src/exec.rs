//! Scenario execution on a virtual clock, and the oracles that judge it.
//!
//! A scenario runs **twice**, against two differently shaped services
//! (pool size, admission limits, index-access toggle), both on a
//! [`SimClock`] that only moves when the executor advances it. Worker
//! threads are real, so *which* requests complete versus get cancelled or
//! expired can race — the oracles are therefore status-conditional:
//!
//! * a **completed** request must emit byte-for-byte what a solo
//!   single-worker run of the same task emits (the determinism contract:
//!   pool shape, priorities, concurrency and index access paths never
//!   change results);
//! * a cancelled/expired/poisoned request must only surface candidates the
//!   reference run emits (no invented or corrupted candidates);
//! * a request completed in **both** runs must emit identically in both;
//! * after every ticket resolves, the service must drain to zero live and
//!   zero queued slots, the live high-water mark must respect admission
//!   control, and per-class lifecycle counters must balance:
//!   `submitted == completed + cancelled + expired + vanished`
//!   (vanished = poisoned sessions observed via a panicking wait);
//! * deadlines and latency samples must live on the virtual timeline: a
//!   deadline past the end of the timeline must never fire, and no
//!   reported queue wait or TTFC can exceed the timeline's length — either
//!   failing means a real clock leaked into the service;
//! * **trace conservation**: every submit attempt (admitted or shed) must
//!   leave exactly one trace in the flight recorder, each trace must carry
//!   exactly one terminal event, every span interval must be well-formed
//!   and contained in the root `request` span, and — because traces anchor
//!   at service construction, which is virtual zero here — every recorded
//!   timestamp must sit on the virtual timeline.

use crate::scenario::{RequestPlan, Scenario, ServicePlan, TASK_COUNT};
use crate::violation::{RunLabel, Violation};
use duoquest_core::{SimClock, SynthesisSession};
use duoquest_db::{CmpOp, Database, Value};
use duoquest_nlq::{
    Choice, GuidanceContext, GuidanceModel, Literal, Nlq, NoisyOracleGuidance, OracleConfig,
};
use duoquest_obs::{Trace, ROOT_SPAN, TERMINAL_EVENT};
use duoquest_service::{
    PriorityClass, RequestStatus, ServiceConfig, SynthesisRequest, SynthesisService, Ticket,
};
use duoquest_sql::QueryBuilder;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

/// How executing a scenario may deviate from the straight check, used to
/// prove the harness catches what it claims to catch.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckOptions {
    /// Deliberately break determinism: the alternate run's guidance models
    /// are replaced with a different (still deterministic) scorer, so its
    /// completed requests emit something the reference never would. The
    /// oracles must flag this, and the shrinker must reduce it to a single
    /// plain request.
    pub perturb_alternate: bool,
}

/// What the executor observed for one request of one run.
#[derive(Debug, Clone, PartialEq)]
pub enum Observed {
    /// `submit` refused the request at admission.
    Shed,
    /// The ticket was dropped unwaited; the outcome was never read.
    Dropped,
    /// `Ticket::wait` panicked: the session was poisoned by an injected
    /// guidance panic and delivered no outcome.
    Vanished,
    /// The ticket resolved normally.
    Resolved {
        /// Final status of the request.
        status: RequestStatus,
        /// Rendered candidate emission (spec debug + confidence bits).
        emission: Vec<String>,
        /// Reported queue wait, in microseconds.
        queue_wait_us: u128,
        /// Reported time to first candidate, in microseconds.
        ttfc_us: Option<u128>,
    },
}

/// One service run's full observation record.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Which of the scenario's two shapes this run used.
    pub label: RunLabel,
    /// Per-request observations, indexed like `Scenario::requests`.
    pub observed: Vec<Observed>,
    /// Live high-water mark reported by the service.
    pub live_peak: usize,
    /// Per-class (submitted, completed, cancelled, expired, shed) counters.
    pub counters: [(u64, u64, u64, u64, u64); 3],
    /// Every trace the flight recorder retained after the drain, oldest
    /// first. The trace-conservation oracle judges these.
    pub traces: Vec<Arc<Trace>>,
}

/// Run every oracle over a scenario. `Ok(())` means both service runs and
/// the cache plan were clean; the first violation found is returned.
pub fn check_scenario(scenario: &Scenario, options: &CheckOptions) -> Result<(), Violation> {
    quiet_injected_panics();
    crate::cache::check_cache_plan(&scenario.cache)?;
    crate::netwalk::check_net_plan(&scenario.net)?;
    let reference = run_service(scenario, &scenario.reference, RunLabel::Reference, false)?;
    let alternate =
        run_service(scenario, &scenario.alternate, RunLabel::Alternate, options.perturb_alternate)?;
    check_run(scenario, &reference)?;
    check_run(scenario, &alternate)?;
    for (index, (a, b)) in reference.observed.iter().zip(&alternate.observed).enumerate() {
        if let (
            Observed::Resolved { status: RequestStatus::Completed, emission: ref_emission, .. },
            Observed::Resolved { status: RequestStatus::Completed, emission: alt_emission, .. },
        ) = (a, b)
        {
            if ref_emission != alt_emission {
                return Err(Violation::CrossRunMismatch {
                    request: index,
                    reference: ref_emission.clone(),
                    alternate: alt_emission.clone(),
                });
            }
        }
    }
    Ok(())
}

/// The fixture database every task runs against: three movies, indexed,
/// with the index access path toggled per service plan.
pub(crate) fn fixture_db(index_access: bool) -> Arc<Database> {
    use duoquest_db::{ColumnDef, Schema, TableDef};
    let mut schema = Schema::new("dst-movies");
    schema.add_table(TableDef::new(
        "movies",
        vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
        Some(0),
    ));
    let mut db = Database::new(schema).expect("fixture schema must build");
    db.insert_all(
        "movies",
        vec![
            vec![Value::int(1), Value::text("Heat"), Value::int(1995)],
            vec![Value::int(2), Value::text("Forrest Gump"), Value::int(1994)],
            vec![Value::int(3), Value::text("Up"), Value::int(2009)],
        ],
    )
    .expect("fixture rows must insert");
    db.rebuild_index();
    db.set_index_access(index_access);
    db.into_shared()
}

/// The NLQ and gold-guided model of one task fixture.
pub(crate) fn task_model(task: u8) -> (Nlq, Arc<dyn GuidanceModel>) {
    let db = fixture_db(true);
    let schema = db.schema();
    let (gold, text, literals) = match task % TASK_COUNT {
        0 => (
            QueryBuilder::new(schema)
                .select("movies.name")
                .filter("movies.year", CmpOp::Lt, 1995)
                .build()
                .expect("task 0 gold must build"),
            "names of movies before 1995",
            vec![Literal::number(1995.0)],
        ),
        1 => (
            QueryBuilder::new(schema)
                .select("movies.name")
                .filter("movies.year", CmpOp::Gt, 2000)
                .build()
                .expect("task 1 gold must build"),
            "movies released after 2000",
            vec![Literal::number(2000.0)],
        ),
        _ => (
            QueryBuilder::new(schema)
                .select("movies.year")
                .build()
                .expect("task 2 gold must build"),
            "the years movies came out",
            vec![],
        ),
    };
    let nlq = Nlq::with_literals(text, literals);
    let model: Arc<dyn GuidanceModel> =
        Arc::new(NoisyOracleGuidance::with_config(gold, 3, OracleConfig::perfect()));
    (nlq, model)
}

pub(crate) fn engine_config(max_candidates: usize) -> duoquest_core::DuoquestConfig {
    let mut config = duoquest_core::DuoquestConfig::fast();
    config.max_candidates = max_candidates;
    config.time_budget = None;
    config.workers = 1;
    config
}

fn render(candidates: &[duoquest_core::Candidate]) -> Vec<String> {
    candidates.iter().map(|c| format!("{:?}~{:016x}", c.spec, c.confidence.to_bits())).collect()
}

/// The emission of a solo, single-worker, clockless run of a task — the
/// ground truth every service run is compared against. Cached per
/// (task, candidate budget) across the whole sweep.
fn reference_emission(task: u8, max_candidates: usize) -> Arc<Vec<String>> {
    type ReferenceMap = HashMap<(u8, usize), Arc<Vec<String>>>;
    static REFERENCES: OnceLock<Mutex<ReferenceMap>> = OnceLock::new();
    let references = REFERENCES.get_or_init(Default::default);
    if let Some(found) =
        references.lock().expect("reference cache poisoned").get(&(task, max_candidates))
    {
        return Arc::clone(found);
    }
    let (nlq, model) = task_model(task);
    let result = SynthesisSession::new(fixture_db(true), nlq, model)
        .with_config(engine_config(max_candidates))
        .run();
    let emission = Arc::new(render(&result.candidates));
    references
        .lock()
        .expect("reference cache poisoned")
        .entry((task, max_candidates))
        .or_insert(emission)
        .clone()
}

/// A guidance model that panics after a budget of score calls — the
/// mid-chunk fault injection. The panic message is matched by the quiet
/// panic hook so sweeps stay readable.
struct PanicAfter {
    inner: Arc<dyn GuidanceModel>,
    remaining: AtomicI64,
}

impl GuidanceModel for PanicAfter {
    fn score(&self, ctx: &GuidanceContext<'_>, candidates: &[Choice]) -> Vec<f64> {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) <= 0 {
            panic!("dst-injected guidance panic");
        }
        self.inner.score(ctx, candidates)
    }

    fn name(&self) -> &str {
        "dst-panic-after"
    }
}

/// A deterministic scorer that disagrees with the oracle guidance: scores
/// grow with candidate position, flipping every preference. Used only when
/// [`CheckOptions::perturb_alternate`] deliberately breaks determinism.
struct PerturbGuidance;

impl GuidanceModel for PerturbGuidance {
    fn score(&self, _ctx: &GuidanceContext<'_>, candidates: &[Choice]) -> Vec<f64> {
        (0..candidates.len()).map(|i| 1.0 + i as f64).collect()
    }

    fn name(&self) -> &str {
        "dst-perturb"
    }
}

/// Suppress the panic-hook output of the two panics the harness *expects*
/// (the injected guidance panic and the poisoned-session wait), so a
/// 200-seed sweep with fault injection doesn't bury real failures in noise.
/// Everything else still reaches the previous hook.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if message.contains("dst-injected") || message.contains("service driver vanished") {
                return;
            }
            previous(info);
        }));
    });
}

fn build_request(
    db: &Arc<Database>,
    plan: &RequestPlan,
    perturb: bool,
    any_k: bool,
) -> SynthesisRequest {
    let (nlq, mut model) = task_model(plan.task);
    if perturb {
        model = Arc::new(PerturbGuidance);
    }
    if let Some(budget) = plan.panic_after {
        model = Arc::new(PanicAfter { inner: model, remaining: AtomicI64::new(budget as i64) });
    }
    let mut request = SynthesisRequest::new(Arc::clone(db), nlq, model)
        .with_config(engine_config(plan.max_candidates))
        .with_priority(PriorityClass::ALL[plan.priority as usize % 3]);
    if any_k {
        request = request.with_emission_policy(duoquest_core::EmissionPolicy::AnyK);
    }
    if let Some(deadline) = plan.deadline_us {
        request = request.with_deadline(Duration::from_micros(deadline));
    }
    request
}

enum Event {
    Submit(usize),
    Cancel(usize),
}

/// Execute one service run of the scenario entirely on a [`SimClock`]:
/// walk the submit/cancel schedule advancing virtual time between events,
/// apply the final advance, drop the to-be-dropped tickets, wait the rest
/// (catching poisoned-session panics), then hold until the service drains
/// and its counters balance.
fn run_service(
    scenario: &Scenario,
    plan: &ServicePlan,
    label: RunLabel,
    perturb: bool,
) -> Result<RunRecord, Violation> {
    let clock = Arc::new(SimClock::new());
    let service = SynthesisService::with_clock(
        ServiceConfig {
            workers: plan.workers,
            max_live_sessions: plan.max_live,
            max_queued: plan.max_queued,
            // Conservation needs every request's trace retained: size the
            // flight ring so nothing is evicted during the run.
            flight_capacity: scenario.requests.len().max(1),
            ..ServiceConfig::default()
        },
        Arc::clone(&clock) as duoquest_core::SharedClock,
    );
    let db = fixture_db(plan.index_access);
    // The emission-policy and single-flight toggles ride on the alternate
    // run only: the reference stays at the defaults, so the cross-run
    // oracle tests any-k (and single-flight off) against the round barrier
    // directly whenever a request completes in both runs.
    let alternate_run = label == RunLabel::Alternate;
    let any_k = alternate_run && scenario.any_k;
    if alternate_run {
        db.set_single_flight(scenario.single_flight);
    }

    let mut events: Vec<(u64, Event)> = Vec::new();
    for (index, request) in scenario.requests.iter().enumerate() {
        events.push((request.submit_at_us, Event::Submit(index)));
    }
    for (index, request) in scenario.requests.iter().enumerate() {
        if let Some(cancel_at) = request.cancel_at_us {
            events.push((cancel_at.max(request.submit_at_us), Event::Cancel(index)));
        }
    }
    // Stable by time: same-instant submits run before same-instant cancels,
    // each in request order — the schedule is fully deterministic.
    events.sort_by_key(|(at, _)| *at);

    let mut tickets: Vec<Option<Ticket>> = scenario.requests.iter().map(|_| None).collect();
    let mut observed: Vec<Option<Observed>> = scenario.requests.iter().map(|_| None).collect();
    let mut now_us = 0u64;
    for (at, event) in events {
        if at > now_us {
            clock.advance(Duration::from_micros(at - now_us));
            now_us = at;
        }
        match event {
            Event::Submit(index) => {
                let request = build_request(&db, &scenario.requests[index], perturb, any_k);
                match service.submit(request) {
                    Ok(ticket) => tickets[index] = Some(ticket),
                    Err(_) => observed[index] = Some(Observed::Shed),
                }
            }
            Event::Cancel(index) => {
                if let Some(ticket) = &tickets[index] {
                    ticket.cancel();
                }
            }
        }
    }
    if scenario.final_advance_us > 0 {
        clock.advance(Duration::from_micros(scenario.final_advance_us));
    }

    for (index, request) in scenario.requests.iter().enumerate() {
        if request.drop_ticket {
            if let Some(ticket) = tickets[index].take() {
                drop(ticket);
                observed[index] = Some(Observed::Dropped);
            }
        }
    }

    for (index, slot) in tickets.iter_mut().enumerate() {
        if let Some(ticket) = slot.take() {
            observed[index] = Some(match catch_unwind(AssertUnwindSafe(move || ticket.wait())) {
                Ok(outcome) => Observed::Resolved {
                    status: outcome.status,
                    emission: render(&outcome.result.candidates),
                    queue_wait_us: outcome.queue_wait.as_micros(),
                    ttfc_us: outcome.time_to_first_candidate.map(|d| d.as_micros()),
                },
                Err(_) => Observed::Vanished,
            });
        }
    }
    let observed: Vec<Observed> = observed
        .into_iter()
        .map(|o| o.expect("every request is shed, dropped or waited"))
        .collect();

    // Per-class vanished counts: poisoned sessions bump no lifecycle
    // counter, so they are the balancing term of the conservation oracle.
    let mut vanished = [0u64; 3];
    for (request, obs) in scenario.requests.iter().zip(&observed) {
        if matches!(obs, Observed::Vanished) {
            vanished[request.priority as usize % 3] += 1;
        }
    }

    // Dropped tickets resolve asynchronously on pool workers: hold (in real
    // time — this is harness patience, not service time) until the service
    // drains and every class's books balance.
    let grace_ends = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = service.stats();
        let drained = stats.live_sessions == 0 && stats.queued_requests == 0;
        let balanced = stats.classes.iter().enumerate().all(|(class, c)| {
            c.submitted == c.completed + c.cancelled + c.expired + vanished[class]
        });
        if drained && balanced {
            break stats;
        }
        if Instant::now() > grace_ends {
            if !drained {
                return Err(Violation::Quiescence {
                    run: label,
                    live: stats.live_sessions,
                    queued: stats.queued_requests,
                });
            }
            let (class, c) = stats
                .classes
                .iter()
                .enumerate()
                .find(|(class, c)| {
                    c.submitted != c.completed + c.cancelled + c.expired + vanished[*class]
                })
                .expect("not drained-and-balanced implies an unbalanced class");
            return Err(Violation::CounterImbalance {
                run: label,
                class: PriorityClass::ALL[class].label(),
                submitted: c.submitted,
                completed: c.completed,
                cancelled: c.cancelled,
                expired: c.expired,
                vanished: vanished[class],
            });
        }
        std::thread::sleep(Duration::from_micros(500));
    };

    let counters = std::array::from_fn(|class| {
        let c = &stats.classes[class];
        (c.submitted, c.completed, c.cancelled, c.expired, c.shed)
    });

    // The lifecycle counter bumps and the flight-recorder push happen a few
    // instructions apart on a pool worker, so "balanced" can be observed a
    // hair before the final trace lands: give the push its own short grace
    // window before snapshotting. The conservation oracle judges the count.
    let trace_grace_ends = Instant::now() + Duration::from_secs(10);
    let traces = loop {
        let ids = service.trace_ids();
        if ids.len() >= scenario.requests.len() || Instant::now() > trace_grace_ends {
            break ids.into_iter().filter_map(|id| service.trace(id)).collect::<Vec<_>>();
        }
        std::thread::sleep(Duration::from_micros(500));
    };

    // Single-flight conservation: every in-flight-table lookup resolves as
    // exactly one of a hit (served by another probe's leader) or a leader
    // election — on every path, including abandoned-leader succession. Read
    // from the run's own database, so the two runs are judged separately.
    let cache_stats = db.cache_stats();
    if cache_stats.single_flight_lookups
        != cache_stats.single_flight_hits + cache_stats.single_flight_leaders
    {
        return Err(Violation::SingleFlightImbalance {
            run: label,
            lookups: cache_stats.single_flight_lookups,
            hits: cache_stats.single_flight_hits,
            leaders: cache_stats.single_flight_leaders,
        });
    }

    Ok(RunRecord { label, observed, live_peak: stats.live_sessions_peak, counters, traces })
}

/// Judge one run's record against the scenario: emission determinism,
/// admission peak, shed accounting, and virtual-timeline containment.
fn check_run(scenario: &Scenario, record: &RunRecord) -> Result<(), Violation> {
    let virtual_end_us = scenario.virtual_end_us();
    let plan = match record.label {
        RunLabel::Reference => &scenario.reference,
        RunLabel::Alternate => &scenario.alternate,
    };

    if record.live_peak > plan.max_live.max(1) {
        return Err(Violation::AdmissionPeakExceeded {
            run: record.label,
            peak: record.live_peak,
            limit: plan.max_live.max(1),
        });
    }

    let mut shed_observed = [0u64; 3];
    for (request, obs) in scenario.requests.iter().zip(&record.observed) {
        if matches!(obs, Observed::Shed) {
            shed_observed[request.priority as usize % 3] += 1;
        }
    }
    for (class, &observed) in shed_observed.iter().enumerate() {
        let counted = record.counters[class].4;
        if counted != observed {
            return Err(Violation::ShedMismatch {
                run: record.label,
                class: PriorityClass::ALL[class].label(),
                counted,
                observed,
            });
        }
    }

    check_traces(scenario, record, virtual_end_us)?;

    for (index, (request, obs)) in scenario.requests.iter().zip(&record.observed).enumerate() {
        let Observed::Resolved { status, emission, queue_wait_us, ttfc_us } = obs else {
            continue;
        };
        if *status == RequestStatus::DeadlineExceeded {
            let ghost = match request.deadline_us {
                None => true,
                Some(deadline) => request.submit_at_us + deadline > virtual_end_us,
            };
            if ghost {
                return Err(Violation::DeadlineGhost {
                    run: record.label,
                    request: index,
                    deadline_us: request
                        .deadline_us
                        .map(|d| request.submit_at_us + d)
                        .unwrap_or(u64::MAX),
                    virtual_end_us,
                });
            }
        }
        if *queue_wait_us > u128::from(virtual_end_us) {
            return Err(Violation::LatencyOffTimeline {
                run: record.label,
                request: index,
                which: "queue_wait",
                observed_us: *queue_wait_us,
                virtual_end_us,
            });
        }
        if let Some(ttfc) = ttfc_us {
            if *ttfc > u128::from(virtual_end_us) {
                return Err(Violation::LatencyOffTimeline {
                    run: record.label,
                    request: index,
                    which: "ttfc",
                    observed_us: *ttfc,
                    virtual_end_us,
                });
            }
        }
        let reference = reference_emission(request.task, request.max_candidates);
        if *status == RequestStatus::Completed {
            if emission != reference.as_ref() {
                return Err(Violation::EmissionMismatch {
                    run: record.label,
                    request: index,
                    got: emission.clone(),
                    want: reference.as_ref().clone(),
                });
            }
        } else {
            for candidate in emission {
                if !reference.contains(candidate) {
                    return Err(Violation::StrayCandidate {
                        run: record.label,
                        request: index,
                        candidate: candidate.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// The trace-conservation oracle: every submit attempt (admitted or shed)
/// leaves exactly one retained trace, each trace carries exactly one
/// terminal event, every span interval is well-formed and nested inside the
/// root `request` span, and every recorded timestamp sits on the virtual
/// timeline — traces anchor at service construction, which under the run's
/// fresh [`SimClock`] is virtual zero, so a trace offset past the
/// timeline's end means a real clock leaked into the span recorder.
fn check_traces(
    scenario: &Scenario,
    record: &RunRecord,
    virtual_end_us: u64,
) -> Result<(), Violation> {
    if record.traces.len() != scenario.requests.len() {
        return Err(Violation::TraceConservation {
            run: record.label,
            expected: scenario.requests.len(),
            retained: record.traces.len(),
        });
    }
    for trace in &record.traces {
        let malformed = |detail: String| Violation::TraceMalformed {
            run: record.label,
            trace: trace.id(),
            detail,
        };
        let terminals = trace.terminal_count();
        if terminals != 1 {
            return Err(malformed(format!(
                "expected exactly one terminal event, found {terminals}"
            )));
        }
        let spans = trace.spans();
        let events = trace.events();
        for span in &spans {
            if span.start_us > span.end_us {
                return Err(malformed(format!(
                    "span `{}` is inverted: starts at {}us, ends at {}us",
                    span.name, span.start_us, span.end_us
                )));
            }
            if span.end_us > virtual_end_us {
                return Err(malformed(format!(
                    "span `{}` ends at {}us, past the {}us virtual timeline",
                    span.name, span.end_us, virtual_end_us
                )));
            }
        }
        for event in &events {
            if event.at_us > virtual_end_us {
                return Err(malformed(format!(
                    "event `{}` at {}us, past the {}us virtual timeline",
                    event.name, event.at_us, virtual_end_us
                )));
            }
        }
        match spans.iter().find(|span| span.name == ROOT_SPAN) {
            Some(root) => {
                for span in &spans {
                    if span.name != ROOT_SPAN
                        && (span.start_us < root.start_us || span.end_us > root.end_us)
                    {
                        return Err(malformed(format!(
                            "span `{}` [{}, {}]us escapes the root request interval [{}, {}]us",
                            span.name, span.start_us, span.end_us, root.start_us, root.end_us
                        )));
                    }
                }
            }
            None => {
                // Only a shed request legitimately resolves without a root
                // span (it never held a request interval); a saturated
                // trace buffer may also have dropped spans.
                let shed = events
                    .iter()
                    .any(|e| e.name == TERMINAL_EVENT && e.detail.as_deref() == Some("shed"));
                if !shed && trace.dropped() == 0 {
                    return Err(malformed("no root request span recorded".to_string()));
                }
            }
        }
    }
    Ok(())
}
