//! Deterministic probe-cache churn: replay a [`CachePlan`] against a real
//! [`ProbeCache`] under byte-budget pressure and check its contracts.
//!
//! The cache side of a scenario is single-threaded and touches no clock, so
//! unlike the service runs its *entire observation log* must be reproducible
//! bit for bit — the plan is executed twice and the logs compared. On top of
//! determinism, every returned probe is checked against the cache's
//! documented contracts:
//!
//! * **serves-contract** — a probe returned under a row budget either
//!   carries the exact bit or covers the budget;
//! * **exactness never downgrades** — once a lookup served a spec exact,
//!   later lookups of it stay exact until a rotation or clear can have
//!   evicted the entry (retained entries are only ever replaced by
//!   at-least-as-strong ones; *insert returns* are exempt, because an entry
//!   too large for its budget slice is handed back uncached);
//! * **counters conserved** — hits + misses equals the number of lookups
//!   issued, across however many segment rotations the churn forced;
//! * **retention bounded** — resident bytes never exceed the largest byte
//!   budget in force since the last clear.

use crate::scenario::{CacheOp, CachePlan};
use crate::violation::Violation;
use duoquest_db::query::SelectSpec;
use duoquest_db::{execute, CmpOp, Database, ProbeCache, ResultSet};
use std::sync::OnceLock;

/// The fixed pool of distinct probe specs cache ops index into, with each
/// spec's full (exact) result against the fixture database.
fn spec_pool() -> &'static [(SelectSpec, ResultSet)] {
    static POOL: OnceLock<Vec<(SelectSpec, ResultSet)>> = OnceLock::new();
    POOL.get_or_init(|| {
        let db = crate::exec::fixture_db(true);
        spec_pool_for(&db)
    })
}

fn spec_pool_for(db: &Database) -> Vec<(SelectSpec, ResultSet)> {
    use duoquest_sql::QueryBuilder;
    let mut pool = Vec::new();
    for year in [1990i64, 1994, 1995, 2000, 2009, 2010] {
        let spec = QueryBuilder::new(db.schema())
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, year)
            .build()
            .expect("fixture spec must build");
        let full = execute(db, &spec).expect("fixture spec must execute");
        pool.push((spec, full));
    }
    pool
}

/// Per-spec strength tracking for the exactness oracle.
#[derive(Clone, Copy, Default)]
struct SpecObservation {
    exact: bool,
    /// Rotation count at the time of the observation; a later rotation can
    /// legitimately have evicted the entry, which resets the oracle.
    rotations: u64,
    clears: u64,
    seen: bool,
}

/// Execute the plan twice and check every contract plus log determinism.
pub fn check_cache_plan(plan: &CachePlan) -> Result<(), Violation> {
    if plan.ops.is_empty() {
        return Ok(());
    }
    let first = run_once(plan)?;
    let second = run_once(plan)?;
    if first != second {
        let step = first.iter().zip(&second).position(|(a, b)| a != b).unwrap_or(first.len());
        return Err(Violation::CacheNondeterministic {
            step,
            first: first.get(step).cloned().unwrap_or_default(),
            second: second.get(step).cloned().unwrap_or_default(),
        });
    }
    Ok(())
}

fn run_once(plan: &CachePlan) -> Result<Vec<String>, Violation> {
    const INITIAL_BUDGET: u64 = 4_096;
    let pool = spec_pool();
    let cache = ProbeCache::with_max_bytes(INITIAL_BUDGET);
    let mut log = Vec::with_capacity(plan.ops.len());
    let mut lookups = 0u64;
    let mut budget_high_water = INITIAL_BUDGET;
    let mut clears = 0u64;
    let mut observed = vec![SpecObservation::default(); pool.len()];

    for (step, op) in plan.ops.iter().enumerate() {
        let rotations_before = cache.stats().rotations;
        match *op {
            CacheOp::Insert { spec, rows, exact } => {
                let (spec_key, full) = &pool[spec as usize % pool.len()];
                let keep = (rows as usize).min(full.rows.len());
                // The exact bit is a *claim of completeness*; asserting it on
                // a truncated result would lie to the cache, which would then
                // faithfully serve the lie. A complete insert with the bit
                // clear stays clear — a prefix probe that happens to cover
                // everything is still just a prefix probe to the cache.
                let exact = exact && keep == full.rows.len();
                let mut result = full.clone();
                result.rows.truncate(keep);
                let served = cache.insert_budgeted(spec_key, result, exact);
                // Insert returns are NOT strength observations: an entry too
                // large for its shard's budget slice is handed back uncached,
                // so the return can be weaker than a retained entry — only
                // get-hits observe what the cache actually serves.
                if served.exact && !exact && served.rows.len() != full.rows.len() {
                    return Err(Violation::CacheServesContract {
                        step,
                        detail: format!(
                            "insert returned an exact probe with {} of {} rows",
                            served.rows.len(),
                            full.rows.len()
                        ),
                    });
                }
                budget_high_water = budget_high_water.max(cache.max_bytes());
                log.push(format!(
                    "insert s{spec} rows={keep} exact={exact} -> exact={} rows={}",
                    served.exact,
                    served.rows.len()
                ));
            }
            CacheOp::Get { spec, budget } => {
                let (spec_key, full) = &pool[spec as usize % pool.len()];
                let budget_rows = budget.map(|b| (b as usize).min(full.rows.len()));
                lookups += 1;
                match cache.get_budgeted(spec_key, budget_rows) {
                    None => log.push(format!("get s{spec} b={budget_rows:?} -> miss")),
                    Some(probe) => {
                        if !probe.exact && budget_rows.is_none_or(|b| probe.rows.len() < b) {
                            return Err(Violation::CacheServesContract {
                                step,
                                detail: format!(
                                    "budget {budget_rows:?} answered by a truncated probe \
                                     of {} rows",
                                    probe.rows.len()
                                ),
                            });
                        }
                        check_exactness(
                            &mut observed[spec as usize % pool.len()],
                            probe.exact,
                            rotations_before,
                            clears,
                            step,
                        )?;
                        log.push(format!(
                            "get s{spec} b={budget_rows:?} -> hit exact={} rows={}",
                            probe.exact,
                            probe.rows.len()
                        ));
                    }
                }
            }
            CacheOp::SetMaxBytes { bytes } => {
                cache.set_max_bytes(bytes as u64);
                budget_high_water = budget_high_water.max(bytes as u64);
                log.push(format!("budget {bytes}"));
            }
            CacheOp::Clear => {
                cache.clear();
                clears += 1;
                budget_high_water = cache.max_bytes();
                observed.iter_mut().for_each(|o| *o = SpecObservation::default());
                log.push("clear".to_string());
            }
        }
        let stats = cache.stats();
        if stats.bytes > budget_high_water {
            return Err(Violation::CacheRetentionOverrun {
                step,
                bytes: stats.bytes,
                budget: budget_high_water,
            });
        }
        log.push(format!(
            "stats hits={} misses={} bytes={} entries={} rotations={}",
            stats.hits, stats.misses, stats.bytes, stats.entries, stats.rotations
        ));
    }

    let stats = cache.stats();
    if stats.hits + stats.misses != lookups {
        return Err(Violation::CacheCounterDrift {
            hits: stats.hits,
            misses: stats.misses,
            lookups,
        });
    }
    Ok(log)
}

/// The exactness bit of a spec's served probes is monotone between points
/// where eviction (rotation or clear) can have removed the entry.
fn check_exactness(
    observation: &mut SpecObservation,
    exact: bool,
    rotations: u64,
    clears: u64,
    step: usize,
) -> Result<(), Violation> {
    if observation.seen
        && observation.rotations == rotations
        && observation.clears == clears
        && observation.exact
        && !exact
    {
        return Err(Violation::CacheExactnessDowngrade { step });
    }
    *observation = SpecObservation { exact, rotations, clears, seen: true };
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_trivially_clean() {
        assert!(check_cache_plan(&CachePlan::default()).is_ok());
    }

    #[test]
    fn exact_insert_survives_weaker_reinsertion() {
        let plan = CachePlan {
            ops: vec![
                CacheOp::Insert { spec: 4, rows: 3, exact: true },
                CacheOp::Insert { spec: 4, rows: 1, exact: false },
                CacheOp::Get { spec: 4, budget: None },
            ],
        };
        check_cache_plan(&plan).unwrap();
    }

    #[test]
    fn churn_under_tiny_budgets_stays_clean() {
        let plan = CachePlan {
            ops: (0..6u8)
                .flat_map(|s| {
                    [
                        CacheOp::SetMaxBytes { bytes: 64 + 96 * s as u32 },
                        CacheOp::Insert { spec: s, rows: 3, exact: true },
                        CacheOp::Get { spec: s, budget: Some(2) },
                        CacheOp::Insert { spec: s, rows: 1, exact: false },
                        CacheOp::Get { spec: s, budget: None },
                    ]
                })
                .collect(),
        };
        check_cache_plan(&plan).unwrap();
    }
}
