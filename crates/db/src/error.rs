//! Error types for the in-memory relational engine.

use std::fmt;

/// Errors produced by schema construction, data loading and query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// A table name was referenced that does not exist in the schema.
    UnknownTable(String),
    /// A column name was referenced that does not exist on the given table.
    UnknownColumn {
        /// The table whose columns were searched.
        table: String,
        /// The unresolved column name.
        column: String,
    },
    /// A row was inserted whose arity does not match the table definition.
    ArityMismatch {
        /// The table the row was inserted into.
        table: String,
        /// Number of columns the table defines.
        expected: usize,
        /// Number of values the row carried.
        got: usize,
    },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        /// The table the value was inserted into.
        table: String,
        /// The column whose declared type was violated.
        column: String,
        /// The column's declared type.
        expected: String,
        /// The offending value's type.
        got: String,
    },
    /// A foreign key references a column pair with incompatible types.
    InvalidForeignKey(String),
    /// The query specification is not executable (e.g. empty join tree,
    /// aggregate predicate without grouping context, order key not computable).
    InvalidQuery(String),
    /// A join tree references tables that are not connected in the schema graph.
    DisconnectedJoin(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{table}`.`{column}`")
            }
            DbError::ArityMismatch { table, expected, got } => {
                write!(f, "row arity mismatch on `{table}`: expected {expected} values, got {got}")
            }
            DbError::TypeMismatch { table, column, expected, got } => {
                write!(f, "type mismatch on `{table}`.`{column}`: expected {expected}, got {got}")
            }
            DbError::InvalidForeignKey(msg) => write!(f, "invalid foreign key: {msg}"),
            DbError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            DbError::DisconnectedJoin(msg) => write!(f, "disconnected join: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenient result alias used throughout the crate.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_table() {
        let e = DbError::UnknownTable("movies".into());
        assert_eq!(e.to_string(), "unknown table `movies`");
    }

    #[test]
    fn display_type_mismatch() {
        let e = DbError::TypeMismatch {
            table: "actor".into(),
            column: "birth_yr".into(),
            expected: "number".into(),
            got: "text".into(),
        };
        assert!(e.to_string().contains("actor"));
        assert!(e.to_string().contains("birth_yr"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DbError::UnknownTable("a".into()), DbError::UnknownTable("a".into()));
        assert_ne!(DbError::UnknownTable("a".into()), DbError::UnknownTable("b".into()));
    }
}
